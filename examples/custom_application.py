#!/usr/bin/env python3
"""Writing your own rank programs: the full API tour.

A small "solver" that exercises most of the supported MPI surface —
derived communicators, non-blocking halo exchange with Waitall,
wildcard master/worker messaging, probes, and rooted collectives —
executed on the virtual runtime and certified deadlock-free by the
distributed detector. Then a one-line change (a dropped send) turns it
into a deadlocking program, and the tool pinpoints the wait-for chain.

Run:  python examples/custom_application.py
"""
from repro import ANY_SOURCE
from repro.core import analyze_trace, detect_deadlocks_distributed
from repro.runtime import run_programs

P = 8


def solver(drop_send: bool):
    def program(rank):
        # Split world into two working groups.
        team = yield rank.comm_split(color=rank.rank % 2)
        # Neighbour exchange inside the team (non-blocking + Waitall).
        me = team.local_rank(rank.rank)
        left = team.world_rank((me - 1) % team.size)
        right = team.world_rank((me + 1) % team.size)
        for it in range(3):
            reqs = [
                (yield rank.isend(right, tag=it, comm=team)),
                (yield rank.irecv(source=left, tag=it, comm=team)),
            ]
            yield rank.waitall(reqs)
            yield rank.allreduce(comm=team)
        # Master/worker over the world: everyone reports to rank 0.
        if rank.rank == 0:
            for _ in range(rank.size - 1):
                status = yield rank.probe(source=ANY_SOURCE, tag=7)
                yield rank.recv(source=status.source, tag=7)
            for dest in range(1, rank.size):
                yield rank.send(dest=dest, tag=8)
        else:
            if not (drop_send and rank.rank == 3):
                yield rank.send(dest=0, tag=7)
            yield rank.recv(source=0, tag=8)
        yield rank.reduce(root=0)
        yield rank.finalize()

    return [program] * P


def main() -> None:
    print("healthy run:")
    result = run_programs(solver(drop_send=False), seed=11)
    print(f"  hung: {result.deadlocked}; "
          f"ops traced: {result.trace.total_ops()}")
    outcome = detect_deadlocks_distributed(result.matched, fan_in=4)
    print(f"  detector verdict: deadlocked ranks {outcome.deadlocked}")

    print("\nbroken run (rank 3 forgets its report to rank 0):")
    result = run_programs(solver(drop_send=True), seed=11)
    print(f"  hung: {result.deadlocked}")
    analysis = analyze_trace(result.matched)
    print(f"  deadlocked ranks: {analysis.deadlocked}")
    for rank, cond in analysis.conditions.items():
        targets = sorted(cond.target_ranks())
        print(f"    rank {rank}: {cond.op_description} -> waits for "
              f"{targets}")


if __name__ == "__main__":
    main()
