#!/usr/bin/env python3
"""Offline analysis workflow: record -> save -> load -> triage.

Traces captured on one machine (here: the virtual runtime; in a real
deployment, any interception layer producing the same JSON schema) can
be analyzed elsewhere. The triage combines:

* the non-deadlock correctness checks (argument validation, request
  leaks, lost messages);
* the semantics-adaptation loop, which distinguishes *manifest*
  deadlocks, *unsafe* programs (masked by buffering — the lammps
  verdict), adaptation artifacts, and clean traces.

Run:  python examples/offline_workflow.py
"""
import tempfile
from pathlib import Path

from repro import BlockingSemantics
from repro.runtime import run_programs
from repro.checks import Severity, run_all_checks
from repro.core.adaptation import analyze_with_adaptation
from repro.mpi.serialize import load_trace, save_trace
from repro.workloads import (
    fig2b_programs,
    lammps_skeleton_programs,
    master_worker_programs,
)

SCENARIOS = {
    "master-worker (healthy)": master_worker_programs(5),
    "fig2b (send-send behind wildcards)": fig2b_programs(),
    "lammps proxy (potential deadlock)": lammps_skeleton_programs(6),
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-traces-"))
    print(f"trace directory: {workdir}\n")

    for name, programs in SCENARIOS.items():
        print(f"=== {name}")
        result = run_programs(
            programs, semantics=BlockingSemantics.relaxed(), seed=3
        )
        path = workdir / (name.split()[0] + ".json")
        save_trace(result.matched, str(path))
        print(f"  recorded {result.trace.total_ops()} ops -> {path.name} "
              f"({path.stat().st_size:,} bytes)")

        matched = load_trace(str(path))

        findings = run_all_checks(matched)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        print(f"  checks: {len(findings)} finding(s), "
              f"{len(errors)} error(s)")
        for finding in findings[:3]:
            print(f"    {finding.render()}")

        triage = analyze_with_adaptation(matched)
        print("  " + triage.summary().replace("\n", "\n  "))
        if triage.final.has_deadlock:
            cycle = triage.final.detection.witness_cycle
            if cycle:
                chain = " -> ".join(map(str, cycle))
                print(f"  dependency cycle: {chain} -> {cycle[0]}")
        print()


if __name__ == "__main__":
    main()
