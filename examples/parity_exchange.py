#!/usr/bin/env python3
"""A parity-split neighbour exchange that is deadlock-free for ALL p.

Even ranks send right then receive left; odd ranks receive left then
send right. Because every world of size >= 2 contains an odd rank, the
blocking-send cycle is always broken and the exchange completes for
every process count — a fact no per-size run can establish, but the
parameterized prover can:

    python -m repro prove examples/parity_exchange.py -v

certifies ``PROVED-ALL-P``: every size in the certificate window is
confirmed through the linear wildcard-free matcher, the channel
equations (``dst = (rank+1) % size`` against ``src = (rank-1) %
size`` under the ``rank % 2`` role split) classify every site as
always-matched, and the behavior is verified periodic in ``size`` so
the verdict extrapolates to all ``p >= 2``.

Run:  python examples/parity_exchange.py
"""

#: World size `repro lint`/`repro verify` use for the module-level
#: program below (any size works — that is the point).
LINT_RANKS = 6


def parity_exchange(rank):
    """Odd/even-split blocking ring exchange, safe at every size."""
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    if rank.rank % 2 == 0:
        yield rank.send(dest=right, tag=0)
        yield rank.recv(source=left, tag=0)
    else:
        yield rank.recv(source=left, tag=0)
        yield rank.send(dest=right, tag=0)
    yield rank.allreduce(nbytes=8)
    yield rank.finalize()


def main() -> None:
    from repro.analysis.symbolic import prove_path

    for result in prove_path(__file__):
        print(f"{result.name}: {result.verdict.value}")
        print(f"  {result.reason}")
        if result.certificate is not None:
            for channel in result.certificate.channels.channels:
                print(
                    f"  {channel.classification:>15}  {channel.site}"
                )


if __name__ == "__main__":
    main()
