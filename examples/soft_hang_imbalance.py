#!/usr/bin/env python3
"""A stalled-but-live run under the live health monitor.

Eight ranks exchange with rank 7 each round, but rank 7 "computes"
(a long iprobe loop) before servicing anyone — so for most of the run
seven ranks sit parked in RECV on the same peer. Post-mortem this is
indistinguishable from the opening of a deadlock; live triage is the
point: ``repro watch examples/soft_hang_imbalance.py`` streams health
windows that grade the run SOFT-HANG (suspects: the waiting ranks,
each attributed to rank 7) and the final verdict — backed by the
runtime wait-for graph — stays short of DEADLOCK-CONFIRMED, because
there is no cycle. Exit code 0/1, never 2.

Run:  python examples/soft_hang_imbalance.py
      python -m repro watch examples/soft_hang_imbalance.py
"""
from repro import Session
from repro.workloads import soft_hang_imbalance_programs

LINT_PROGRAMS = soft_hang_imbalance_programs(8, rounds=3, straggler_ops=96)


def main() -> None:
    session = Session(live=True, live_every_steps=64)
    session.record(LINT_PROGRAMS)
    session.analyze()
    verdict = session.finalize_live()
    assert verdict is not None
    soft_windows = sum(
        1
        for doc in session.live.snapshots
        if doc["health"]["state"] == "SOFT-HANG"
    )
    print(
        f"{len(session.live.snapshots)} windows, "
        f"{soft_windows} graded SOFT-HANG"
    )
    print(f"final verdict: {verdict.state}")
    for reason in verdict.reasons:
        print(f"  {reason}")
    assert verdict.state != "DEADLOCK-CONFIRMED"


if __name__ == "__main__":
    main()
