#!/usr/bin/env python3
"""A wildcard deadlock that hides from single-schedule analysis.

Rank 0 posts ``MPI_Recv(MPI_ANY_SOURCE)`` and then a receive directed
at rank 1; ranks 1 and 2 each send one message to rank 0. Whether the
program completes depends on a single wildcard matching decision:

* wildcard takes rank 2's message -> the directed receive pairs with
  rank 1, everything completes;
* wildcard takes rank 1's message -> rank 1 has nothing left to send,
  rank 0 blocks forever in ``Recv(source=1)`` and rank 2's rendezvous
  send never pairs.

A single run (or ``repro lint``'s deterministic sequential matching)
cannot decide this —  lint reports `wildcard-unsupported` and defers.
``repro verify`` explores both matchings, classifies the program
`deadlock-possible`, and emits a witness schedule that replays to a
real runtime deadlock:

    python -m repro verify examples/wildcard_master_worker.py --replay

Run directly (python examples/wildcard_master_worker.py) to see the
exploration, the witness, and its replay end to end.
"""
from repro.analysis import Verdict, verify_path
from repro.workloads import wildcard_master_worker_programs

#: Program set ``repro lint`` / ``repro verify`` analyze for this
#: module (the ranks run different programs, so a plain module-level
#: program + LINT_RANKS would not describe it).
LINT_PROGRAMS = wildcard_master_worker_programs()


def main() -> None:
    report = verify_path(__file__, replay=True)
    for prog in report.programs:
        result = prog.result
        print(f"{prog.label}: {prog.verdict_name}")
        if result is None:
            print(f"  skipped: {prog.skipped_reason}")
            continue
        stats = result.stats
        print(
            f"  explored {stats.states_explored} states "
            f"({stats.states_pruned} pruned, {stats.memo_hits} memo hits)"
        )
        if result.verdict is not Verdict.DEADLOCK_POSSIBLE:
            continue
        witness = prog.witness
        print(f"  deadlocked ranks: {sorted(result.deadlocked)}")
        print(f"  witness schedule: {witness.schedule}")
        for (rank, ts), src in sorted(witness.pinnings.items()):
            print(
                f"  wildcard pinning: recv at rank {rank} ts {ts} "
                f"must take the message from rank {src}"
            )
        replay = prog.replay
        if replay is not None:
            verdictword = "confirmed" if replay.confirmed else "NOT confirmed"
            print(f"  replay: {verdictword} runtime deadlock")
            if replay.analysis is not None:
                print(
                    "  runtime analysis blames ranks "
                    f"{sorted(replay.runtime_deadlocked)}"
                )


if __name__ == "__main__":
    main()
