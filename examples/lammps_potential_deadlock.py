#!/usr/bin/env python3
"""The 126.lammps scenario (paper Section 6, Figure 11).

SPEC MPI2007's 126.lammps contains a potential send-send deadlock that
never manifests on buffering MPI implementations. This example runs
the structural proxy on the virtual runtime with buffering *enabled*
(the run completes normally), then lets the distributed tool analyze
the trace under the strict blocking semantics — which detects the
potential deadlock and produces the HTML + DOT report MUST would log.

The rank program is defined at module level so the static analyzer
finds it too:  ``python -m repro lint examples/lammps_potential_deadlock.py``
reports the same send-send cycle before anything runs.

Run:  python examples/lammps_potential_deadlock.py
Artifacts: lammps_report.html, lammps_wfg.dot (current directory).
"""
from pathlib import Path

from repro import BlockingSemantics
from repro.core import detect_deadlocks_distributed
from repro.runtime import run_programs

#: World size ``repro lint`` uses when extracting this program.
LINT_RANKS = 12

HEALTHY_ITERATIONS = 3


def lammps_halo_shift(rank):
    """126.lammps proxy: healthy halo exchanges, then an unsafe shift.

    Healthy iterations use Isend/Irecv/Waitall; the final forward
    neighbour shift uses blocking standard sends on every rank before
    any receive — a send cycle around the ring that only buffering
    saves.
    """
    right = (rank.rank + 1) % rank.size
    left = (rank.rank - 1) % rank.size
    for it in range(HEALTHY_ITERATIONS):
        sreq = yield rank.isend(right, tag=it, nbytes=2048)
        rreq = yield rank.irecv(source=left, tag=it, nbytes=2048)
        yield rank.waitall([sreq, rreq])
        if it % 2 == 1:
            yield rank.allreduce(nbytes=8)
    # The unsafe forward shift: blocking send before receive.
    yield rank.send(dest=right, tag=99, nbytes=4096)
    yield rank.recv(source=left, tag=99, nbytes=4096)
    yield rank.finalize()


def main() -> None:
    p = LINT_RANKS
    print(f"running the lammps proxy on {p} ranks (buffered sends)...")
    result = run_programs(
        [lammps_halo_shift] * p,
        semantics=BlockingSemantics.relaxed(),
        seed=7,
    )
    print(f"  execution completed: {not result.deadlocked}")
    print(f"  operations traced:   {result.trace.total_ops()}")

    print("analyzing with the distributed tool (fan-in 4, strict b)...")
    outcome = detect_deadlocks_distributed(result.matched, fan_in=4)
    record = outcome.detection
    print(f"  potential deadlock:  ranks {outcome.deadlocked}")
    cycle = record.result.witness_cycle
    print(f"  dependency cycle:    {' -> '.join(map(str, cycle))} -> "
          f"{cycle[0]}")
    for rank in outcome.deadlocked[:4]:
        op = result.trace.op((rank, outcome.stable_state[rank]))
        print(f"  rank {rank} would block in: {op.describe()}")

    print("\ndetection-time breakdown (paper Figure 11(b) groups):")
    for phase, seconds in record.timers.breakdown().items():
        print(f"  {phase:20s} {seconds * 1e3:9.3f} ms")

    Path("lammps_report.html").write_text(record.html_report)
    Path("lammps_wfg.dot").write_text(record.dot_text)
    print("\nwrote lammps_report.html and lammps_wfg.dot")


if __name__ == "__main__":
    main()
