#!/usr/bin/env python3
"""Quickstart: detect the paper's Figure 2 deadlocks.

Runs the two introductory examples on the virtual MPI runtime and
analyzes their traces with both the centralized baseline and the
distributed tool:

* Figure 2(a) — a recv-recv deadlock that manifests under any MPI;
* Figure 2(b) — a send-send deadlock masked by message buffering:
  the execution *completes*, yet the strict wait state analysis
  proves the program can deadlock.

Run:  python examples/quickstart.py
"""
from repro import BlockingSemantics
from repro.core import analyze_trace, detect_deadlocks_distributed
from repro.runtime import run_programs
from repro.workloads import fig2a_programs, fig2b_programs


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    banner("Figure 2(a): recv-recv deadlock")
    result = run_programs(fig2a_programs())
    print(f"execution hung: {result.deadlocked}")
    print("stuck calls:   ", ", ".join(result.hung_descriptions()))

    analysis = analyze_trace(result.matched)
    print(f"centralized verdict: deadlocked ranks {analysis.deadlocked}")
    cycle = analysis.detection.witness_cycle
    print(f"dependency cycle:    {' -> '.join(map(str, cycle))} -> {cycle[0]}")

    outcome = detect_deadlocks_distributed(result.matched, fan_in=2)
    print(f"distributed verdict: deadlocked ranks {outcome.deadlocked}")
    print(f"tool messages used:  {outcome.messages_sent}")

    banner("Figure 2(b): send-send deadlock hidden by buffering")
    result = run_programs(
        fig2b_programs(), semantics=BlockingSemantics.relaxed(), seed=3
    )
    print(f"execution hung: {result.deadlocked}   (buffering masked it)")

    analysis = analyze_trace(result.matched)
    print(f"strict analysis verdict: deadlocked ranks {analysis.deadlocked}")
    print(f"terminal state (paper Fig. 3): {analysis.terminal_state}")
    for rank, cond in analysis.conditions.items():
        targets = ", ".join(
            str(t.rank) for clause in cond.clauses for t in clause
        )
        print(f"  rank {rank}: {cond.op_description} waits for {targets}")

    print("\nwait-for graph (DOT):")
    print(analysis.dot_text)


if __name__ == "__main__":
    main()
