#!/usr/bin/env python3
"""The synthetic stress test and the Figure 9 overhead model.

First the cyclic-exchange stress test (Isend right / Recv left / Wait,
barrier every 10th iteration) runs end to end through the distributed
tool at a small scale to show the machinery: message counts per type,
peak trace-window size, and the quiescence detection finding no
deadlock. Then the calibrated cost model prints the full Figure 9
series — distributed slowdowns for fan-ins 2/4/8 and the centralized
baseline with its ~8,000x projection at 4,096 processes.

Run:  python examples/stress_overhead.py
"""
from repro.core.detector import DistributedDeadlockDetector
from repro.perf import stress_sweep
from repro.workloads import build_stress_trace


def main() -> None:
    p, iterations = 16, 30
    print(f"stress test: {p} ranks x {iterations} iterations "
          "(barrier every 10th)")
    matched = build_stress_trace(p, iterations=iterations)
    detector = DistributedDeadlockDetector(matched, fan_in=4, seed=1)
    outcome = detector.run()
    print(f"  deadlock reported:   {outcome.has_deadlock}")
    print(f"  stable state:        all ranks at timestamp "
          f"{outcome.stable_state[0]}")
    print(f"  tool messages:       {outcome.messages_sent:,} "
          f"({outcome.bytes_sent:,} bytes)")
    print(f"  peak trace window:   {outcome.peak_window} operations")
    totals = {}
    for stats in outcome.node_stats.values():
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    for key in sorted(totals):
        print(f"    {key:25s} {totals[key]:7,}")

    print("\nFigure 9 model: stress-test slowdowns (tool time / ref time)")
    ps = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
    data = stress_sweep(ps)
    header = f"{'procs':>6} | " + " | ".join(
        f"{k:>12}" for k in data if k != "p"
    )
    print(header)
    print("-" * len(header))
    for i, p in enumerate(ps):
        cells = []
        for key, series in data.items():
            if key == "p":
                continue
            v = series[i]
            cells.append(f"{v:12.0f}" if v == v else f"{'—':>12}")
        print(f"{p:6d} | " + " | ".join(cells))
    print("\n(centralized measured only to 512, as in the paper; the "
          "projected column extends the model)")


if __name__ == "__main__":
    main()
