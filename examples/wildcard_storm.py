#!/usr/bin/env python3
"""The wildcard-deadlock stress case (paper Figure 10) and the
graph-simplification extension (the paper's proposed future work).

Every rank posts MPI_Recv(MPI_ANY_SOURCE) with no sends anywhere: the
wait-for graph reaches its maximal size, p*(p-1) arcs, every process
OR-waiting on every other. The plain DOT output scales quadratically;
the aggregated writer collapses the whole pattern to one class node.

The rank program is defined at module level so the static layers see
it too: ``repro lint`` reports the wildcard receives (honestly
UNDECIDABLE for the symbolic classifier/prover), and ``repro verify``
explores the match-set — with no sends anywhere every matching blocks,
so the verdict is deadlock-possible and the witness replays.

Run:  python examples/wildcard_storm.py [p]
"""
import sys
import time

from repro.core import detect_deadlocks_distributed
from repro.mpi.constants import ANY_SOURCE
from repro.wfg.simplify import render_aggregated_dot, simplify
from repro.workloads import build_wildcard_trace

#: World size ``repro lint``/``repro verify`` use for the module-level
#: storm program below (the live demo takes p on the command line).
LINT_RANKS = 4


def wildcard_storm(rank):
    """Every rank posts one wildcard receive; nobody ever sends."""
    yield rank.recv(source=ANY_SOURCE, tag=0)
    yield rank.finalize()


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    print(f"building the hung trace: {p} pending wildcard receives")
    matched = build_wildcard_trace(p)

    outcome = detect_deadlocks_distributed(matched, fan_in=4)
    record = outcome.detection
    graph = record.graph
    print(f"deadlocked ranks: {len(outcome.deadlocked)} of {p}")
    print(f"wait-for graph:   {len(graph.nodes)} nodes, "
          f"{graph.arc_count()} arcs (p*(p-1) = {p * (p - 1)})")

    print("\ndetection-time breakdown (Figure 10(b) groups):")
    total = record.timers.total()
    for phase, seconds in record.timers.breakdown().items():
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {phase:20s} {seconds * 1e3:9.3f} ms  ({share:4.1f}%)")

    t0 = time.perf_counter()
    plain_dot = record.dot_text
    agg = simplify(graph)
    agg_dot = render_aggregated_dot(agg)
    t1 = time.perf_counter()
    print(f"\nplain DOT:      {len(plain_dot):>10,} bytes, "
          f"{plain_dot.count('->'):,} arcs")
    print(f"aggregated DOT: {len(agg_dot):>10,} bytes, "
          f"{agg_dot.count('->'):,} arc(s)  "
          f"(simplification took {1e3 * (t1 - t0):.2f} ms)")
    print("\naggregated graph:")
    print(agg_dot)


if __name__ == "__main__":
    main()
