"""Matching engines: centralized reference and distributed node-local."""
from repro.matching.collective import match_collectives, match_trace
from repro.matching.distributed_p2p import MatchEvent, NodeP2PMatcher
from repro.matching.p2p import match_point_to_point

__all__ = [
    "MatchEvent",
    "NodeP2PMatcher",
    "match_collectives",
    "match_point_to_point",
    "match_trace",
]
