"""Distributed point-to-point matching at a first-layer node [13].

Matching is receiver-located: send information travels (as
:class:`~repro.core.messages.PassSend`, intralayer) to the node that
hosts the destination rank; that node pairs sends with its hosted
receives. Wildcard receives are resolved with the matching decision
the MPI implementation made at runtime (``observed_peer`` on the
operation — the "additional status update" of Section 4.1); a wildcard
receive that never completed in the application run stays unmatched.

MPI's non-overtaking rule is preserved: per (communicator, source,
destination) channel, sends are consumed in send order by the
tag-compatible receives in their posted order.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.messages import PassSend
from repro.mpi.constants import ANY_TAG
from repro.mpi.ops import Operation, OpRef


@dataclass
class _StoredSend:
    info: PassSend
    consumed: bool = False


@dataclass
class _PostedRecv:
    ref: OpRef
    comm_id: int
    #: Resolved source: explicit peer or the runtime-observed wildcard
    #: decision; None when the wildcard never resolved (unmatchable).
    source: Optional[int]
    tag: int
    is_probe: bool
    matched: bool = False


@dataclass(frozen=True)
class MatchEvent:
    """A pairing produced by the matcher."""

    recv_ref: OpRef
    send: PassSend
    is_probe: bool


class NodeP2PMatcher:
    """Receiver-side matching structures of one first-layer node."""

    def __init__(self) -> None:
        #: (comm, src, dst) -> sends in arrival order.
        self._sends: Dict[Tuple[int, int, int], List[_StoredSend]] = {}
        #: (comm, dst) -> posted receives/probes in issue order.
        self._recvs: Dict[Tuple[int, int], List[_PostedRecv]] = {}

    # -- receives -----------------------------------------------------------

    def post_receive(self, op: Operation) -> Optional[MatchEvent]:
        """Register a hosted receive/probe; return its match if found."""
        source = op.effective_source()
        posted = _PostedRecv(
            ref=op.ref,
            comm_id=op.comm_id,
            source=source,
            tag=op.tag,
            is_probe=op.is_probe(),
        )
        event = self._match_posted(posted)
        if event is None or posted.is_probe:
            # Probes stay posted only if unmatched; matched probes are
            # complete (they never consume), unmatched directed probes
            # wait for a send to arrive.
            if event is None:
                self._recvs.setdefault(
                    (op.comm_id, op.rank), []
                ).append(posted)
        return event

    def _match_posted(self, posted: _PostedRecv) -> Optional[MatchEvent]:
        if posted.source is None:
            return None  # unresolved wildcard: never matches
        key = (posted.comm_id, posted.source, posted.ref[0])
        for stored in self._sends.get(key, ()):
            if stored.consumed:
                continue
            if posted.tag != ANY_TAG and posted.tag != stored.info.tag:
                continue
            if not posted.is_probe:
                stored.consumed = True
            posted.matched = True
            return MatchEvent(
                recv_ref=posted.ref, send=stored.info, is_probe=posted.is_probe
            )
        return None

    # -- sends ----------------------------------------------------------------

    def store_send(self, info: PassSend) -> List[MatchEvent]:
        """handlePassSend: match against posted receives, else store.

        Returns all pairings this arrival produces (possibly several
        probes plus one consuming receive).
        """
        events: List[MatchEvent] = []
        stored = _StoredSend(info=info)
        posted_list = self._recvs.get((info.comm_id, info.dest), [])
        for posted in posted_list:
            if posted.matched or posted.source != info.send_rank:
                continue
            if posted.tag != ANY_TAG and posted.tag != info.tag:
                continue
            posted.matched = True
            events.append(
                MatchEvent(
                    recv_ref=posted.ref, send=info, is_probe=posted.is_probe
                )
            )
            if not posted.is_probe:
                stored.consumed = True
                break  # the message is consumed; later receives wait
        key = (info.comm_id, info.send_rank, info.dest)
        self._sends.setdefault(key, []).append(stored)
        if len(posted_list) > 32:
            self._recvs[(info.comm_id, info.dest)] = [
                p for p in posted_list if not p.matched
            ]
        return events

    def pending_receive_count(self) -> int:
        return sum(
            1 for lst in self._recvs.values() for p in lst if not p.matched
        )

    def stored_send_count(self) -> int:
        return sum(
            1 for lst in self._sends.values() for s in lst if not s.consumed
        )

    def stats(self) -> Dict[str, int]:
        """Residual matcher state, for per-shard gauges at join."""
        return {
            "pending_receives": self.pending_receive_count(),
            "stored_sends": self.stored_send_count(),
        }
