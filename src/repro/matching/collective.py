"""Centralized collective matching (``CollectiveMatch`` in Figure 1(a)).

MPI orders collective calls per communicator: the *w*-th collective
call of every group member on one communicator belongs to the same
matching wave. The matcher assigns wave indices per (rank, comm) in
issue order, verifies the MUST consistency checks (same operation
kind, same root across a wave), and emits complete waves as
:class:`~repro.mpi.trace.CollectiveMatch` and incomplete ones as
:class:`~repro.mpi.trace.PendingCollective`.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

from repro.mpi.communicator import CommRegistry
from repro.mpi.trace import (
    CollectiveMatch,
    MatchedTrace,
    PendingCollective,
    Trace,
)
from repro.util.errors import CollectiveMismatchError


class _Wave:
    __slots__ = ("kind", "root", "arrived")

    def __init__(self) -> None:
        self.kind = None
        self.root = None
        self.arrived: Dict[int, int] = {}


def match_collectives(
    trace: Trace, comms: CommRegistry
) -> Tuple[List[CollectiveMatch], List[PendingCollective]]:
    """Group collective operations into complete/pending waves."""
    waves: Dict[int, List[_Wave]] = {}
    counters: Dict[Tuple[int, int], int] = {}
    for rank in range(trace.num_processes):
        for op in trace.sequence(rank):
            if not op.is_collective():
                continue
            key = (rank, op.comm_id)
            index = counters.get(key, 0)
            counters[key] = index + 1
            comm_waves = waves.setdefault(op.comm_id, [])
            while len(comm_waves) <= index:
                comm_waves.append(_Wave())
            wave = comm_waves[index]
            if wave.kind is None:
                wave.kind = op.kind
                wave.root = op.root
            elif wave.kind is not op.kind:
                raise CollectiveMismatchError(
                    f"wave {index} on comm {op.comm_id}: {op.describe()} "
                    f"arrives where {wave.kind.value} expected"
                )
            elif wave.root != op.root:
                raise CollectiveMismatchError(
                    f"wave {index} on comm {op.comm_id}: root mismatch "
                    f"({op.root} vs {wave.root})"
                )
            if rank in wave.arrived:
                raise CollectiveMismatchError(
                    f"rank {rank} participates twice in wave {index} on "
                    f"comm {op.comm_id}"
                )
            wave.arrived[rank] = op.ts
    complete: List[CollectiveMatch] = []
    pending: List[PendingCollective] = []
    for comm_id, comm_waves in waves.items():
        group = comms.get(comm_id).group
        for index, wave in enumerate(comm_waves):
            if set(wave.arrived) == set(group):
                complete.append(
                    CollectiveMatch(
                        comm_id=comm_id,
                        members=frozenset(
                            (r, ts) for r, ts in wave.arrived.items()
                        ),
                    )
                )
            else:
                extra = set(wave.arrived) - set(group)
                if extra:
                    raise CollectiveMismatchError(
                        f"ranks {sorted(extra)} joined wave {index} on comm "
                        f"{comm_id} without being group members"
                    )
                pending.append(
                    PendingCollective(
                        comm_id=comm_id,
                        index=index,
                        arrived={
                            r: (r, ts) for r, ts in wave.arrived.items()
                        },
                    )
                )
    return complete, pending


def match_trace(trace: Trace, comms: CommRegistry) -> MatchedTrace:
    """Full centralized matching: p2p + collectives + request table.

    Produces the :class:`~repro.mpi.trace.MatchedTrace` the wait state
    analysis consumes, from a raw trace alone.
    """
    from repro.matching.p2p import match_point_to_point

    matched = MatchedTrace(trace, comms)
    send_of, probe_match = match_point_to_point(trace)
    for recv_ref, send_ref in send_of.items():
        matched.add_p2p_match(send_ref, recv_ref)
    for probe_ref, send_ref in probe_match.items():
        matched.add_probe_match(probe_ref, send_ref)
    complete, pending = match_collectives(trace, comms)
    for match in complete:
        matched.add_collective_match(match)
    for pend in pending:
        matched.add_pending_collective(pend)
    for op in trace:
        if op.request is not None:
            matched.register_request(op.rank, op.request, op.ref)
    return matched
