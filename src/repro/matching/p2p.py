"""Centralized point-to-point matching (``P2PMatch`` in Figure 1(a)).

Reconstructs the send/receive pairing from a raw trace: per
(communicator, source, destination) channel, sends are consumed in
issue order by tag-compatible receives in their issue order; wildcard
receives resolve their source from the runtime-observed decision
(``observed_peer``). Probes match without consuming.

This is the reference matcher — the distributed, receiver-located
matcher of :mod:`repro.matching.distributed_p2p` must produce the
identical pairing for any delivery schedule, which the property suite
checks.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mpi.constants import ANY_TAG, PROC_NULL
from repro.mpi.ops import Operation, OpRef
from repro.mpi.trace import Trace
from repro.util.errors import TraceError


class _Channel:
    """Unconsumed sends of one (comm, src, dst) channel, in order."""

    def __init__(self) -> None:
        self.sends: List[Operation] = []
        self.next_unconsumed = 0

    def add(self, op: Operation) -> None:
        self.sends.append(op)

    def take(self, tag: int) -> Optional[Operation]:
        """Consume the earliest send compatible with ``tag``."""
        for idx in range(self.next_unconsumed, len(self.sends)):
            send = self.sends[idx]
            if send is None:
                continue
            if tag == ANY_TAG or tag == send.tag:
                self.sends[idx] = None  # type: ignore[call-overload]
                while (
                    self.next_unconsumed < len(self.sends)
                    and self.sends[self.next_unconsumed] is None
                ):
                    self.next_unconsumed += 1
                return send
        return None

    def peek(self, tag: int) -> Optional[Operation]:
        for idx in range(self.next_unconsumed, len(self.sends)):
            send = self.sends[idx]
            if send is None:
                continue
            if tag == ANY_TAG or tag == send.tag:
                return send
        return None


def match_point_to_point(
    trace: Trace,
) -> Tuple[Dict[OpRef, OpRef], Dict[OpRef, OpRef]]:
    """Compute ``(send_of_recv, probe_match)`` for a raw trace.

    Operations are replayed in a global order consistent with each
    process's issue order (round-robin interleaving); because channel
    consumption is commutative across different channels and ordered
    within one, any such order yields the same pairing.
    """
    channels: Dict[Tuple[int, int, int], _Channel] = {}
    send_of: Dict[OpRef, OpRef] = {}
    probe_match: Dict[OpRef, OpRef] = {}
    deferred: List[Operation] = []

    def channel(comm: int, src: int, dst: int) -> _Channel:
        key = (comm, src, dst)
        ch = channels.get(key)
        if ch is None:
            ch = _Channel()
            channels[key] = ch
        return ch

    # Pass 1: enqueue all sends (their availability for matching does
    # not depend on receive order — only consumption order does).
    for op in trace:
        if op.is_send() and op.peer is not None and op.peer >= 0:
            channel(op.comm_id, op.rank, op.peer).add(op)

    # Pass 2: resolve receives/probes per process in issue order. Within
    # one (src, dst, comm) channel the receive order equals issue order
    # of the destination process, so per-process sequential resolution
    # is exact.
    for rank in range(trace.num_processes):
        for op in trace.sequence(rank):
            if not (op.is_recv() or op.is_probe()):
                continue
            if op.peer == PROC_NULL:
                continue
            source = op.effective_source()
            if source is None:
                continue  # unresolved wildcard: stays unmatched
            ch = channel(op.comm_id, source, op.rank)
            if op.is_probe():
                send = ch.peek(op.tag)
                if send is not None:
                    probe_match[op.ref] = send.ref
                continue
            send = ch.take(op.tag)
            if send is None:
                raise TraceError(
                    f"{op.describe()} observed source {source} but no "
                    "unconsumed matching send exists in the trace"
                )
            send_of[op.ref] = send.ref
    del deferred
    return send_of, probe_match
