"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``record``   run a named workload on the virtual runtime and save its
             matched trace as JSON;
``analyze``  run deadlock detection on a saved trace (distributed tool
             by default; ``--centralized`` for the baseline,
             ``--adapt`` for the unexpected-match adaptation loop) and
             optionally write the HTML/DOT reports;
``demo``     record + analyze a named workload in one step;
``lint``     statically analyze rank-program files or recorded traces
             without running the engine;
``classify`` label every rank program by decidable fragment
             (`SEQ-DETERMINISTIC` / `SEQ-WILDCARD-FREE-LOOPS` /
             `UNDECIDABLE`) via the interprocedural symbolic
             extractor, with role-split and loop provenance
             (``-v`` prints the symbolic term tree); exit 1 when any
             program is undecidable;
``prove``    parameterized deadlock-freedom certification: decide
             deadlock-freedom for **all** process counts ``p >= 2``
             (`PROVED-ALL-P` with a channel certificate) or report the
             minimal failing ``p`` (`REFUTED`) with a replayable
             witness — without enumerating instantiations; exit 1 on
             any refutation, 2 when any program stays open
             (`UNKNOWN`/`UNDECIDABLE`);
``verify``   bounded wildcard-aware verification: explore every
             feasible match-set of a rank-program file, classify it
             `deadlock-free` / `deadlock-possible` / `bound-exceeded`,
             and optionally replay the deadlock witness through the
             engine (``--replay``); ``--prove`` additionally runs the
             parameterized prover per file;
``stats``    print the observability summary of a run recorded with
             ``--obs-trace`` (per-message-type traffic, five-phase
             detection-time breakdown, exploration counters, unified
             timeline) or of a raw JSONL event stream;
``blame``    wait-state blame analysis: reconstruct per-rank blocked
             intervals from a recorded run (or run a rank-program file
             live), attribute blocked time to root-cause ranks, and
             print the blame chain + critical path;
``profile``  render the BSP round profile of a sharded run recorded
             with ``--obs-trace`` (per-shard round sections, critical-
             shard timeline, codec breakdown; ``--out`` writes the
             ``repro-profile/1`` JSON document);
``watch``    follow a run's live health feed: a rank-program file or
             named workload runs under the
             :class:`~repro.obs.live.LiveMonitor`, streaming health
             windows (PROGRESSING / SOFT-HANG with suspect ranks /
             final DEADLOCK-CONFIRMED backed by the runtime WFG) as
             they are evaluated; a recorded ``repro-live/1`` feed
             replays as the health timeline; ``--openmetrics FILE``
             writes the final metrics scrape in OpenMetrics text
             format;
``figures``  print the Figure 9 / Figure 12 model tables.

Named workloads: fig2a, fig2b, fig4, stress, wildcard, lammps,
gapgeofem, halo2d, persistent-ring, soft-hang, straggler.

Unified output: every subcommand takes ``--out PATH`` and ``--format
{json,jsonl,html,dot}`` for its primary artifact — the deadlock report
(``analyze``/``demo``: ``json``, ``html``, or ``dot``), the findings /
verdict / blame / stats document (``lint``/``verify``/``blame``/
``stats``: ``json``), the model tables (``figures``: ``json``), the
recorded trace (``record``: ``json``) — and ``--format jsonl`` selects
the raw observability event stream where a run happens. Backends:
``--backend {inline,sharded}`` and ``--shards N`` choose how the
distributed analysis executes (single simulated network vs. first-layer
nodes across worker processes; identical verdicts either way).

Observability: ``--obs`` instruments the run (engine + TBON + the
distributed protocol) and prints a stats summary; ``--obs-trace FILE``
additionally writes a Chrome ``trace_event`` file (open it in
``chrome://tracing`` or Perfetto) embedding the metrics snapshot.
The pre-1.1 spellings were removed in 1.2 after their one-release
deprecation window: passing one is a hard usage error (exit 2) whose
message names the ``--out``/``--format``/``--obs-trace`` replacement.

Exit codes: 0 — clean; 1 — a deadlock was detected (``analyze``,
``demo``, and ``stats`` when the analyzed run recorded one, ``blame``
when root causes were found), an error-severity finding reported
(``lint``), a `deadlock-possible` verdict (``verify``), or a
`REFUTED` program (``prove``, ``classify --prove``); 2 — usage error
(unknown workload, unreadable / malformed / truncated input —
``stats`` and ``blame`` diagnose the offending line or record) or,
for ``verify``, no deadlock but at least one program without a
definite verdict (`bound-exceeded` / skipped) — `bound-exceeded` is
NOT `deadlock-free` — and, for ``prove``, no refutation but at least
one program left `UNKNOWN`/`UNDECIDABLE`. ``watch`` maps its final
health verdict instead: 0 — PROGRESSING, 1 — SOFT-HANG, 2 —
DEADLOCK-CONFIRMED (live, WFG-backed; usage errors also exit 2).
"""
from __future__ import annotations

import argparse
import math
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.backend import DEFAULT_SHARDS, make_backend
from repro.core.adaptation import analyze_with_adaptation
from repro.core.waitstate import analyze_trace
from repro.docs import REGISTRY, doc_header, sniff_path, supported_line
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.serialize import load_trace, save_trace
from repro.mpi.trace import MatchedTrace
from repro.obs import (
    NULL_OBSERVER,
    Observer,
    make_observer,
    render_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.runtime import run_programs
from repro.util.errors import TraceError
from repro.wfg.report import render_json_report
from repro.wfg.simplify import render_aggregated_dot, simplify


def _persistent_ring_programs(p: int):
    def ring(r):
        right = (r.rank + 1) % r.size
        left = (r.rank - 1) % r.size
        sreq = yield r.send_init(right, tag=1)
        rreq = yield r.recv_init(left, tag=1)
        for _ in range(5):
            yield from r.startall([sreq, rreq])
            yield r.waitall([sreq, rreq])
        yield r.request_free(sreq)
        yield r.request_free(rreq)
        yield r.finalize()

    return [ring] * p


def _workloads() -> Dict[str, Callable[[int], list]]:
    from repro.workloads import (
        fig2a_programs,
        fig2b_programs,
        fig4_programs,
        gapgeofem_skeleton_programs,
        halo2d_programs,
        lammps_skeleton_programs,
        soft_hang_imbalance_programs,
        straggler_collective_programs,
        stress_programs,
        wildcard_deadlock_programs,
    )

    return {
        "fig2a": lambda p: fig2a_programs(),
        "fig2b": lambda p: fig2b_programs(),
        "fig4": lambda p: fig4_programs(),
        "stress": lambda p: stress_programs(p, iterations=20),
        "wildcard": wildcard_deadlock_programs,
        "lammps": lammps_skeleton_programs,
        "gapgeofem": lambda p: gapgeofem_skeleton_programs(p, iterations=50),
        "halo2d": lambda p: halo2d_programs(
            max(2, int(math.sqrt(p))), max(2, int(math.sqrt(p)))
        ),
        "persistent-ring": _persistent_ring_programs,
        "soft-hang": soft_hang_imbalance_programs,
        "straggler": straggler_collective_programs,
    }


#: Formats ``--out`` understands, per subcommand. ``json`` is the
#: primary machine-readable artifact everywhere; ``jsonl`` selects the
#: raw observability event stream where a run happens; ``html``/``dot``
#: are the rendered deadlock reports of ``analyze``/``demo``.
#: Default TCP port of the ``repro serve`` daemon.
DEFAULT_SERVE_PORT = 7587

_FORMATS: Dict[str, Tuple[str, ...]] = {
    "record": ("json", "jsonl"),
    "analyze": ("json", "jsonl", "html", "dot"),
    "demo": ("json", "jsonl", "html", "dot"),
    "lint": ("json",),
    "classify": ("json",),
    "prove": ("json",),
    "verify": ("json", "jsonl"),
    "stats": ("json",),
    "blame": ("json",),
    "profile": ("json",),
    "watch": ("json", "jsonl"),
    "figures": ("json",),
    "submit": ("json",),
    "jobs": ("json",),
}


def _add_common_flags(
    parser: argparse.ArgumentParser, command: str
) -> None:
    """The unified ``--out/--format/--backend/--shards`` quartet."""
    formats = _FORMATS[command]
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the command's primary artifact here (see --format)",
    )
    parser.add_argument(
        "--format", choices=formats, default="json",
        help="artifact format for --out "
        f"(this command supports: {', '.join(formats)}; default json)",
    )
    parser.add_argument(
        "--backend", choices=("inline", "sharded"), default="inline",
        help="execution backend wherever a distributed analysis runs "
        "(default inline)",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="worker processes for --backend sharded "
        f"(default {DEFAULT_SHARDS})",
    )


#: CLI spellings removed in 1.2 (deprecated aliases since 1.1) and the
#: v1 replacement the hard error names. Checked against raw argv
#: before parsing so the diagnosis beats argparse's generic
#: "unrecognized arguments".
REMOVED_CLI_FLAGS = {
    "--json-out": "--out FILE --format json",
    "--obs-out": "--obs-trace FILE",
    "--obs-jsonl": "--out FILE --format jsonl",
}


def _reject_removed_flags(argv: Sequence[str]) -> Optional[int]:
    """Exit 2 with the replacement spelling for removed aliases."""
    for token in argv:
        flag = token.split("=", 1)[0]
        replacement = REMOVED_CLI_FLAGS.get(flag)
        if replacement is not None:
            print(
                f"error: {flag} was removed in 1.2 (deprecated since "
                f"1.1); use {replacement}",
                file=sys.stderr,
            )
            return 2
    return None


def _normalize_args(args: argparse.Namespace) -> Optional[int]:
    """Route ``--out``/``--format`` onto the writer attributes.

    Returns an exit code for usage errors, None to proceed.
    """
    out = getattr(args, "out", None)
    if out:
        fmt = getattr(args, "format", "json")
        if fmt == "jsonl":
            args.obs_jsonl = out
        elif fmt == "html":
            args.report = out
        elif fmt == "dot":
            args.dot = out
        elif fmt == "json" and hasattr(args, "json_out"):
            args.json_out = out
        # json for record/lint/stats/figures is read by the command
        # itself via _out_path.
    if args.command == "record":
        if not getattr(args, "output", None):
            args.output = _out_path(args, "json")
        if not args.output:
            print(
                "record: an output path is required "
                "(-o FILE or --out FILE --format json)",
                file=sys.stderr,
            )
            return 2
    return None


def _make_observer(args: argparse.Namespace) -> Observer:
    """A live observer when any ``--obs*`` flag was given, else null."""
    wanted = bool(
        getattr(args, "obs", False)
        or getattr(args, "obs_trace", None)
        or getattr(args, "obs_jsonl", None)
    )
    return make_observer(wanted)


def _out_path(args: argparse.Namespace, fmt: str) -> Optional[str]:
    """``--out`` when ``--format`` selects ``fmt``, else None."""
    if getattr(args, "out", None) and getattr(args, "format", "json") == fmt:
        return args.out
    return None


def _make_backend(args: argparse.Namespace):
    return make_backend(
        getattr(args, "backend", "inline"),
        shards=getattr(args, "shards", DEFAULT_SHARDS),
    )


def _finish_obs(
    observer: Observer,
    args: argparse.Namespace,
    *,
    workload: Optional[str],
    deadlocked: bool,
    ranks: Optional[int] = None,
    profile: Optional[dict] = None,
) -> None:
    """Export trace artifacts and print the stats summary."""
    if not observer.enabled:
        return
    snapshot = observer.metrics.snapshot()
    metadata = {
        "workload": workload,
        "deadlocked": bool(deadlocked),
        "ranks": ranks,
        "metrics": snapshot,
    }
    if profile is not None:
        metadata["profile"] = profile
    out = getattr(args, "obs_trace", None)
    if out:
        write_chrome_trace(out, observer.tracer, metadata=metadata)
        print(f"wrote {out} (open in chrome://tracing or Perfetto)")
        if profile is not None:
            print(f"profile embedded: `repro profile {out}` renders it")
    jsonl = getattr(args, "obs_jsonl", None)
    if jsonl:
        write_jsonl(jsonl, observer.tracer)
        print(f"wrote {jsonl}")
    print("\nobservability summary")
    for line in render_summary(snapshot):
        print(line)


def _run_workload(
    name: str, ranks: int, seed: int, observer: Observer = NULL_OBSERVER
) -> MatchedTrace:
    factory = _workloads().get(name)
    if factory is None:
        print(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(_workloads()))}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    programs = factory(ranks)
    result = run_programs(
        programs,
        semantics=BlockingSemantics.relaxed(),
        seed=seed,
        observer=observer,
    )
    state = "hung" if result.deadlocked else "completed"
    print(
        f"executed {name!r} on {len(programs)} virtual ranks: {state}, "
        f"{result.trace.total_ops()} operations traced"
    )
    return result.matched


def _analyze(
    matched: MatchedTrace,
    args: argparse.Namespace,
    observer: Observer = NULL_OBSERVER,
) -> int:
    if getattr(args, "checks", False):
        from repro.checks import run_all_checks

        findings = run_all_checks(matched)
        if findings:
            print(f"correctness checks: {len(findings)} finding(s)")
            for finding in findings:
                print("  " + finding.render())
        else:
            print("correctness checks: clean")
    json_doc: Optional[dict] = None
    profile: Optional[dict] = None
    if args.adapt:
        adaptive = analyze_with_adaptation(matched, generate_outputs=True)
        print(adaptive.summary())
        analysis = adaptive.final
        dot_text = analysis.dot_text
        html = analysis.html_report
        deadlocked = analysis.deadlocked
        graph = analysis.graph
        if graph is not None and analysis.detection is not None:
            json_doc = render_json_report(
                graph, analysis.detection, analysis.conditions
            )
    elif args.centralized:
        analysis = analyze_trace(matched)
        deadlocked = analysis.deadlocked
        dot_text = analysis.dot_text
        html = analysis.html_report
        graph = analysis.graph
        if graph is not None and analysis.detection is not None:
            json_doc = render_json_report(
                graph, analysis.detection, analysis.conditions
            )
        print(f"centralized verdict: deadlocked ranks {deadlocked or '()'}")
    else:
        backend = _make_backend(args)
        outcome = backend.run(
            matched, fan_in=args.fan_in, seed=args.seed, observer=observer
        )
        profile = getattr(backend, "last_profile", None)
        record = outcome.detection
        deadlocked = outcome.deadlocked
        dot_text = record.dot_text
        html = record.html_report
        graph = record.graph
        json_doc = record.json_report
        if json_doc is None and graph is not None and record.result is not None:
            json_doc = render_json_report(
                graph,
                record.result,
                record.conditions,
                flight_tails=record.flight_tails,
                blame=record.blame,
            )
        print(
            f"distributed verdict (fan-in {args.fan_in}, backend "
            f"{backend.describe()}): deadlocked "
            f"ranks {deadlocked or '()'}"
        )
        print(
            f"tool messages: {outcome.messages_sent:,}; peak trace "
            f"window: {outcome.peak_window}"
        )
        for phase, seconds in record.timers.breakdown().items():
            print(f"  {phase:20s} {seconds * 1e3:9.3f} ms")
    if deadlocked and graph is not None:
        print(f"wait-for graph: {len(graph.nodes)} nodes, "
              f"{graph.arc_count()} arcs")
    if args.report and html:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(html)
        print(f"wrote {args.report}")
    if args.dot and dot_text:
        text = dot_text
        if args.simplify and graph is not None:
            text = render_aggregated_dot(simplify(graph))
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.dot}")
    if getattr(args, "json_out", None) and json_doc is not None:
        import json

        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(json_doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    _finish_obs(
        observer,
        args,
        workload=getattr(args, "workload", None),
        deadlocked=bool(deadlocked),
        ranks=matched.trace.num_processes,
        profile=profile,
    )
    return 1 if deadlocked else 0


def _cmd_record(args: argparse.Namespace) -> int:
    observer = _make_observer(args)
    matched = _run_workload(args.workload, args.ranks, args.seed, observer)
    save_trace(matched, args.output)
    print(f"wrote {args.output}")
    _finish_obs(
        observer,
        args,
        workload=args.workload,
        deadlocked=False,
        ranks=matched.trace.num_processes,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    try:
        matched = load_trace(args.trace)
    except (OSError, TraceError) as exc:
        print(f"cannot load trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    print(
        f"loaded trace: {matched.trace.num_processes} processes, "
        f"{matched.trace.total_ops()} operations"
    )
    return _analyze(matched, args, _make_observer(args))


def _write_json(path: str, payload: dict) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import lint_path

    any_errors = False
    doc: Dict[str, list] = {}
    for path in args.paths:
        try:
            report = lint_path(path, ranks=args.ranks)
        except (OSError, TraceError) as exc:
            print(f"lint: cannot analyze {path}: {exc}", file=sys.stderr)
            return 2
        doc[path] = [
            {
                "check": f.check,
                "severity": f.severity.value,
                "rank": f.rank,
                "message": f.message,
            }
            for f in report.findings
        ]
        if report.findings:
            errors = len(report.errors())
            warnings = len(report.findings) - errors
            print(
                f"{path}: {errors} error(s), {warnings} warning(s)/"
                "note(s)"
            )
            for finding in report.findings:
                print("  " + finding.render())
        else:
            print(f"{path}: clean")
        if args.verbose:
            for note in report.notes:
                print(f"  note: {note}")
        any_errors = any_errors or report.has_errors
    out = _out_path(args, "json")
    if out:
        _write_json(out, {**doc_header("lint"), "findings": doc})
    return 1 if any_errors else 0


def _describe_prove(result) -> str:
    """One-line human rendering of a ProveResult."""
    from repro.analysis.symbolic import ProveVerdict

    line = result.verdict.value
    if result.verdict is ProveVerdict.REFUTED:
        ranks = ", ".join(str(r) for r in result.deadlocked)
        line += (
            f" — minimal failing p={result.min_p} "
            f"(deadlocked ranks {{{ranks}}})"
        )
        if result.predicted:
            line += " [predicted by channel residues]"
    elif result.verdict is ProveVerdict.PROVED_ALL_P:
        cert = result.certificate
        assert cert is not None
        line += (
            f" — deadlock-free for all p >= 2 "
            f"(sizes [2, {cert.window_hi}) confirmed, "
            f"modulus lcm {cert.modulus_lcm})"
        )
    elif result.reason:
        line += f" — {result.reason}"
    return line


def _print_certificate(result, indent: str = "    ") -> None:
    """The per-channel certificate table (verbose prove output)."""
    if result.certificate is None:
        return
    channels = result.certificate.channels.channels
    if not channels:
        return
    print(f"{indent}channel certificate:")
    for channel in channels:
        line = (
            f"{indent}  {channel.classification:>15}  "
            f"{channel.site}  [line {channel.lineno}]"
        )
        if channel.classification != "always-matched":
            line += f"  unmatched: {channel.unmatched.render()}"
        print(line)


def _cmd_prove(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.symbolic import ProveVerdict, prove_source

    observer = _make_observer(args)
    if args.witness_dir:
        os.makedirs(args.witness_dir, exist_ok=True)
    doc: Dict[str, list] = {}
    any_refuted = False
    any_open = False
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"prove: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        try:
            results = prove_source(
                source, path, metrics=observer.metrics
            )
        except SyntaxError as exc:
            print(
                f"prove: {path}:{exc.lineno or 1}: source does not "
                f"parse: {exc.msg}",
                file=sys.stderr,
            )
            return 2
        doc[path] = []
        print(f"{path}:")
        if not results:
            print("  (no rank programs found)")
        for result in results:
            if result.verdict is ProveVerdict.REFUTED:
                any_refuted = True
            elif result.verdict is not ProveVerdict.PROVED_ALL_P:
                any_open = True
            print(f"  {result.name}: {_describe_prove(result)}")
            if args.verbose:
                _print_certificate(result)
            if result.witness is not None and args.witness_dir:
                stem = os.path.splitext(os.path.basename(path))[0]
                wpath = os.path.join(
                    args.witness_dir,
                    f"{stem}__{result.name}.witness.json",
                )
                result.witness.save(wpath)
                print(f"    wrote witness {wpath}")
            doc[path].append(result.to_json_dict())
    out = _out_path(args, "json")
    if out:
        _write_json(out, {**doc_header("prove"), "results": doc})
    _finish_obs(observer, args, workload=None, deadlocked=any_refuted)
    if any_refuted:
        return 1
    if any_open:
        return 2
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.analysis.symbolic import classify_source

    doc: Dict[str, list] = {}
    worst = 0
    for path in args.paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"classify: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        try:
            classifications = classify_source(source, path)
        except SyntaxError as exc:
            print(
                f"classify: {path}:{exc.lineno or 1}: source does not "
                f"parse: {exc.msg}",
                file=sys.stderr,
            )
            return 2
        doc[path] = []
        print(f"{path}:")
        if not classifications:
            print("  (no rank programs found)")
        for cl in classifications:
            line = f"  {cl.name}: {cl.fragment.value}"
            if cl.reason:
                line += f" — {cl.reason}"
                if cl.reason_line is not None:
                    line += f" ({cl.location})"
            print(line)
            for cond, lineno in cl.role_splits:
                print(f"    role split: {cond}  [{path}:{lineno}]")
            for count, lineno in cl.loops:
                print(
                    f"    symbolic loop: repeat {count} times  "
                    f"[{path}:{lineno}]"
                )
            if args.verbose and cl.rendering:
                print("    term tree:")
                for rline in cl.rendering:
                    print(f"      {rline}")
            if not cl.fragment.decidable:
                worst = 1
            entry = {
                "program": cl.name,
                "fragment": cl.fragment.value,
                "reason": cl.reason,
                "line": cl.reason_line,
                "role_splits": [
                    {"condition": cond, "line": lineno}
                    for cond, lineno in cl.role_splits
                ],
                "loops": [
                    {"count": count, "line": lineno}
                    for count, lineno in cl.loops
                ],
                "terms": list(cl.rendering),
            }
            if args.prove and cl.summary is not None:
                from repro.analysis.symbolic import (
                    ProveVerdict,
                    prove_summary,
                )

                proof = prove_summary(cl.summary)
                print(f"    prove: {_describe_prove(proof)}")
                if args.verbose:
                    _print_certificate(proof, indent="      ")
                entry["prove"] = proof.to_json_dict()
                if proof.verdict is ProveVerdict.REFUTED:
                    worst = max(worst, 1)
            doc[path].append(entry)
    out = _out_path(args, "json")
    if out:
        _write_json(
            out, {**doc_header("classify"), "programs": doc}
        )
    return worst


def _cmd_verify(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.analysis import verify_path
    from repro.util.errors import ReproError

    observer = _make_observer(args)
    if args.witness_dir:
        os.makedirs(args.witness_dir, exist_ok=True)

    doc: Dict[str, Dict[str, Dict[str, object]]] = {}
    any_deadlock = False
    any_error = False
    any_inconclusive = False
    for path in args.paths:
        try:
            report = verify_path(
                path,
                ranks=args.ranks,
                max_states=args.max_states,
                max_depth=args.max_depth,
                por=not args.no_por,
                replay=args.replay,
                fastpath=not args.no_fastpath,
                metrics=observer.metrics,
            )
        except (OSError, ReproError) as exc:
            print(f"verify: cannot analyze {path}: {exc}", file=sys.stderr)
            return 2
        doc[path] = {}
        print(f"{path}:")
        if not report.programs:
            print("  (no rank programs found)")
        for prog in report.programs:
            entry: Dict[str, object] = {"verdict": prog.verdict_name}
            result = prog.result
            detail = ""
            if result is None:
                detail = f" — {prog.skipped_reason}"
            elif result.has_deadlock:
                any_deadlock = True
                ranks = ", ".join(str(r) for r in result.deadlocked)
                detail = f" — feasible deadlock of ranks {{{ranks}}}"
                entry["deadlocked"] = list(result.deadlocked)
                entry["witness_cycle"] = list(result.witness_cycle)
            elif result.fragment:
                detail = (
                    f" (fast path: {result.fragment}, "
                    f"{result.stats.transitions} ops linearly matched, "
                    "no state graph)"
                )
            else:
                detail = (
                    f" ({result.stats.states_explored} states, "
                    f"{result.stats.states_pruned} pruned)"
                )
                if result.verdict.value == "bound-exceeded":
                    detail += f" — {result.reason}"
            if result is not None and result.fragment:
                entry["fragment"] = result.fragment
            print(f"  {prog.label}: {prog.verdict_name}{detail}")
            for finding in prog.findings:
                print("    " + finding.render())
            if prog.witness is not None and args.witness_dir:
                stem = os.path.splitext(os.path.basename(path))[0]
                wpath = os.path.join(
                    args.witness_dir,
                    f"{stem}__{prog.label}.witness.json",
                )
                prog.witness.save(wpath)
                print(f"    wrote witness {wpath}")
            if prog.replay is not None:
                entry["replay_confirmed"] = prog.replay.confirmed
                entry["replay_cycles_match"] = prog.replay.cycles_match
                if prog.replay.confirmed:
                    cyc = (
                        "matching WFG cycle"
                        if prog.replay.cycles_match
                        else "cycle differs"
                    )
                    print(
                        "    replay: confirmed runtime deadlock "
                        f"({cyc})"
                    )
                else:
                    print(
                        "    replay: NOT confirmed — "
                        f"{prog.replay.reason}"
                    )
                    any_error = True
            doc[path][prog.label] = entry
        if getattr(args, "prove", False):
            from repro.analysis.symbolic import ProveVerdict, prove_path

            for presult in prove_path(path, metrics=observer.metrics):
                print(
                    f"  prove {presult.name}: "
                    f"{_describe_prove(presult)}"
                )
                doc[path].setdefault(presult.name, {})["prove"] = (
                    presult.to_json_dict()
                )
                if presult.verdict is ProveVerdict.REFUTED:
                    any_deadlock = True
        for note in report.notes:
            print(f"  note: {note}")
        if report.errors():
            any_error = True
        if report.inconclusive:
            any_inconclusive = True

    if args.json_out:
        payload = {**doc_header("verify"), "results": doc}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    _finish_obs(observer, args, workload=None, deadlocked=any_deadlock)
    if any_deadlock or any_error:
        return 1
    if any_inconclusive:
        return 2
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    observer = _make_observer(args)
    matched = _run_workload(args.workload, args.ranks, args.seed, observer)
    return _analyze(matched, args, observer)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.blame import load_events
    from repro.obs.live import is_live_artifact
    from repro.obs.stats import render_timeline_table
    from repro.obs.timeline import UnifiedTimeline

    sniffed = sniff_path(args.run)
    if sniffed is not None:
        # The input announces a repro-*/N format: route or diagnose it
        # here, before a shape-blind loader misparses the feed.
        name, version, lineno = sniffed
        family = REGISTRY.get(name)
        if family is None:
            print(
                f"{args.run}:{lineno}: unknown document family "
                f"repro-{name}/{version} (known: "
                f"{', '.join(sorted(REGISTRY))})",
                file=sys.stderr,
            )
            return 2
        if version not in family.versions:
            print(
                f"{args.run}:{lineno}: unsupported repro-{name}/"
                f"{version} version ({supported_line(name)})",
                file=sys.stderr,
            )
            return 2
    if is_live_artifact(args.run):
        # A repro-live/1 feed is a first-class stats input: render the
        # health timeline instead of bouncing off the event loader.
        return _stats_live_feed(args)
    try:
        events, meta = load_events(args.run)
    except (OSError, TraceError) as exc:
        print(f"cannot load run {args.run}: {exc}", file=sys.stderr)
        return 2
    timeline = UnifiedTimeline(events)
    out = _out_path(args, "json")
    if meta is None:
        # Raw JSONL event stream: no metrics snapshot to summarize.
        print(f"run: {len(events)} trace events (raw JSONL stream)")
        lines = render_timeline_table(timeline)
        if lines:
            print("\n-- unified timeline --")
            for line in lines:
                print(line)
        if out:
            _write_json(
                out,
                {**doc_header("stats"), "events": len(events)},
            )
        return 0
    workload = meta.get("workload")
    deadlocked = bool(meta.get("deadlocked"))
    print(
        f"run: workload={workload or '?'}, "
        f"{len(events)} trace events, "
        f"verdict: {'deadlock' if deadlocked else 'clean'}"
    )
    if meta.get("dropped_events"):
        print(f"note: {meta['dropped_events']} events dropped (limit)")
    for line in render_summary(meta["metrics"]):
        print(line)
    lines = render_timeline_table(timeline)
    if lines:
        print("\n-- unified timeline --")
        for line in lines:
            print(line)
    if out:
        _write_json(
            out,
            {
                **doc_header("stats"),
                "workload": workload,
                "deadlocked": deadlocked,
                "events": len(events),
                "metrics": meta["metrics"],
            },
        )
    return 1 if deadlocked else 0


def _stats_live_feed(args: argparse.Namespace) -> int:
    """``repro stats`` on a ``repro-live/1`` feed: the health timeline."""
    from repro.obs.live import load_live_feed, render_health_timeline

    try:
        header, snapshots, final = load_live_feed(args.run)
    except (OSError, TraceError) as exc:
        print(f"cannot load run {args.run}: {exc}", file=sys.stderr)
        return 2
    ranks = header.get("ranks")
    print(
        f"run: repro-live/1 feed, {len(snapshots)} snapshot window(s)"
        + (f", {ranks} ranks" if ranks else "")
    )
    for line in render_health_timeline(snapshots, final):
        print(line)
    verdict = (final or {}).get("verdict") or {}
    out = _out_path(args, "json")
    if out:
        _write_json(
            out,
            {
                **doc_header("stats"),
                "live": True,
                "windows": len(snapshots),
                "verdict": verdict or None,
            },
        )
    return 1 if verdict.get("state") == "DEADLOCK-CONFIRMED" else 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.api import Session
    from repro.obs.live import (
        EXIT_CODE_OF,
        feed_exit_code,
        load_live_feed,
        render_health_table,
        render_health_timeline,
    )

    target = args.target
    if not target.endswith(".py") and target not in _workloads():
        # Replay mode: a recorded repro-live/1 feed.
        try:
            header, snapshots, final = load_live_feed(target)
        except (OSError, TraceError) as exc:
            print(f"cannot load live feed {target}: {exc}", file=sys.stderr)
            return 2
        for line in render_health_timeline(snapshots, final):
            print(line)
        out = _out_path(args, "json")
        if out:
            _write_json(
                out,
                {
                    **doc_header("live"),
                    "kind": "summary",
                    "target": target,
                    "windows": len(snapshots),
                    "verdict": (final or {}).get("verdict"),
                },
            )
        return feed_exit_code(final)

    if target.endswith(".py"):
        from repro.obs.blame import load_programs

        try:
            programs = load_programs(target, args.ranks)
        except TraceError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    else:
        programs = _workloads()[target](args.ranks)

    def on_snapshot(doc: dict) -> None:
        for line in render_health_table(doc):
            print(line)

    session = Session(
        backend=args.backend,
        shards=args.shards,
        seed=args.seed,
        live=True,
        live_every_steps=args.every,
        live_every_rounds=args.every_rounds,
        live_out=_out_path(args, "jsonl"),
        on_snapshot=on_snapshot,
    )
    run = session.record(programs)
    session.analyze(run)
    verdict = session.finalize_live()
    assert verdict is not None and session.live is not None
    if args.openmetrics:
        from repro.obs.exporters import write_openmetrics

        write_openmetrics(
            args.openmetrics,
            session.metrics_snapshot(),
            extra_gauges={
                "health_state": float(verdict.code),
                "health_windows": float(session.live.health.windows),
            },
        )
        print(f"wrote {args.openmetrics}")
    out = _out_path(args, "json")
    if out:
        _write_json(
            out,
            {
                **doc_header("live"),
                "kind": "summary",
                "target": target,
                "windows": len(session.live.snapshots),
                "verdict": verdict.to_json(),
            },
        )
    return EXIT_CODE_OF.get(verdict.state, 0)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.exporters import load_run
    from repro.obs.prof import render_profile

    try:
        doc = load_run(args.run)
    except (OSError, TraceError) as exc:
        print(f"cannot load run {args.run}: {exc}", file=sys.stderr)
        return 2
    profile = doc["repro"].get("profile")
    if not profile:
        print(
            f"{args.run}: no profile data -- profiles are recorded by "
            "sharded runs with observability on (e.g. `repro demo stress "
            "--backend sharded --obs-trace run.json`)",
            file=sys.stderr,
        )
        return 2
    for line in render_profile(profile):
        print(line)
    out = _out_path(args, "json")
    if out:
        _write_json(out, profile)
    return 0


def _cmd_blame(args: argparse.Namespace) -> int:
    import json

    from repro.obs.blame import (
        blame_artifact,
        blame_document,
        blame_live,
        check_agreement,
        render_blame,
    )
    from repro.util.errors import ReproError

    source = args.run
    outcome = None
    try:
        if source.endswith(".py"):
            report, outcome = blame_live(
                source,
                ranks=args.ranks,
                seed=args.seed,
                fan_in=args.fan_in,
                backend=_make_backend(args),
            )
        else:
            report = blame_artifact(source)
    except (OSError, ReproError) as exc:
        print(f"blame: cannot analyze {source}: {exc}", file=sys.stderr)
        return 2
    roots = tuple(report.root_causes)
    if roots:
        print(f"blame verdict: deadlock rooted at ranks {roots}")
    else:
        print("blame verdict: no deadlock (no root-cause ranks)")
    if outcome is not None:
        if check_agreement(report, outcome.deadlocked):
            print(
                "runtime WFG agreement: blame root causes match the "
                "runtime deadlocked set"
            )
        else:
            print(
                "runtime WFG agreement: MISMATCH -- runtime reported "
                f"ranks {tuple(outcome.deadlocked)}"
            )
    print()
    for line in render_blame(report):
        print(line)
    if args.json_out:
        doc = blame_document(report, source=source)
        if outcome is not None:
            doc["runtime_deadlocked"] = list(outcome.deadlocked)
            doc["runtime_agreement"] = check_agreement(
                report, outcome.deadlocked
            )
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    return 1 if roots else 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.perf import spec_slowdown, stress_sweep
    from repro.workloads.specmpi import (
        EXCLUDED_FROM_AVERAGE,
        SPEC_PROFILES,
    )

    ps = [16, 64, 256, 1024, 4096]
    data = stress_sweep(ps)
    print("Figure 9 — stress-test slowdown model")
    keys = [k for k in data if k != "p"]
    print(f"{'procs':>6} " + " ".join(f"{k:>22}" for k in keys))
    for i, p in enumerate(ps):
        cells = []
        for k in keys:
            v = data[k][i]
            cells.append(f"{v:22.1f}" if v == v else f"{'-':>22}")
        print(f"{p:6d} " + " ".join(cells))

    print("\nFigure 12 — SPEC MPI2007 slowdown model (fan-in 4)")
    scales = [128, 512, 2048]
    print(f"{'application':>16} " + " ".join(f"p={p:>5}" for p in scales))
    included = []
    for name, profile in sorted(SPEC_PROFILES.items()):
        series = [spec_slowdown(profile, p) for p in scales]
        print(f"{name:>16} " + " ".join(f"{v:7.2f}" for v in series))
        if name not in EXCLUDED_FROM_AVERAGE:
            included.append(series[-1])
    print(
        f"\naverage at 2048 (excl. {', '.join(EXCLUDED_FROM_AVERAGE)}): "
        f"{sum(included) / len(included):.2f}x (paper: 1.34x)"
    )
    out = _out_path(args, "json")
    if out:
        _write_json(
            out,
            {
                **doc_header("figures"),
                "figure9": {"p": ps, **{k: data[k] for k in keys}},
                "figure12": {
                    name: {
                        str(p): spec_slowdown(profile, p) for p in scales
                    }
                    for name, profile in sorted(SPEC_PROFILES.items())
                },
                "figure12_average_at_2048": (
                    sum(included) / len(included)
                ),
            },
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeSettings
    from repro.serve.service import serve_forever

    if args.port is None and args.unix is None:
        print("serve needs --port and/or --unix", file=sys.stderr)
        return 2
    settings = ServeSettings(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        workers=args.workers,
        queue_limit=args.queue_limit,
        quota=args.quota,
        backend=args.backend or "inline",
        shards=args.shards or 2,
    )
    try:
        asyncio.run(serve_forever(settings))
    except KeyboardInterrupt:
        pass
    return 0


def _connect_serve(args: argparse.Namespace):
    from repro.serve import ServeClient

    try:
        return ServeClient(args.server, timeout=args.timeout)
    except (OSError, ValueError) as exc:
        print(
            f"error: cannot connect to {args.server}: {exc}",
            file=sys.stderr,
        )
        return None


def _describe_serve_error(exc) -> str:
    message = f"error: {exc.code}: {exc}"
    if exc.retryable:
        hint = (
            f" (retryable; retry after {exc.retry_after:.1f}s)"
            if exc.retry_after is not None
            else " (retryable)"
        )
        message += hint
    return message


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeError

    client = _connect_serve(args)
    if client is None:
        return 2
    with client:
        try:
            if args.target.endswith(".py"):
                with open(args.target, "r", encoding="utf-8") as handle:
                    source = handle.read()
                job_id = client.submit(
                    tenant=args.tenant,
                    source=source,
                    op=args.analysis,
                    ranks=args.ranks,
                )
            elif args.target.endswith(".json"):
                with open(args.target, "r", encoding="utf-8") as handle:
                    trace = json.load(handle)
                job_id = client.submit(tenant=args.tenant, trace=trace)
            else:
                job_id = client.submit(
                    tenant=args.tenant,
                    workload=args.target,
                    ranks=args.ranks,
                )
        except ServeError as exc:
            print(_describe_serve_error(exc), file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot read {args.target}: {exc}", file=sys.stderr)
            return 2
        print(f"submitted {job_id} (tenant {args.tenant})")
        if args.no_wait:
            return 0
        if args.watch:
            final = None
            for item in client.watch(job_id):
                if "final" in item:
                    final = item["final"]
                    break
                print(json.dumps(item, sort_keys=True))
            result = (final or {}).get("result", {})
        else:
            try:
                doc = client.result(
                    job_id, wait=True, timeout=args.timeout
                )
            except ServeError as exc:
                print(_describe_serve_error(exc), file=sys.stderr)
                return 1 if exc.code == "job-failed" else 2
            result = doc.get("result", {})
        verdict = result.get("verdict", "unknown")
        print(f"{job_id}: {verdict}")
        if result.get("deadlocked"):
            ranks = ", ".join(map(str, result["deadlocked"]))
            print(f"  deadlocked ranks: {ranks}")
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(result, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json_out}")
        return int(result.get("exit_code", 0))


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import ServeError

    client = _connect_serve(args)
    if client is None:
        return 2
    with client:
        try:
            if args.metrics:
                print(client.metrics(), end="")
                return 0
            stats = client.stats()
            doc = client.jobs(tenant=args.tenant)
        except ServeError as exc:
            print(_describe_serve_error(exc), file=sys.stderr)
            return 2
        print(
            f"queue depth {stats['queue_depth']}, "
            f"running {stats['running']}/{stats['workers']} workers, "
            f"quota {stats['quota']}/tenant"
            + (" (draining)" if stats["draining"] else "")
        )
        for job in doc["jobs"]:
            line = (
                f"  {job['job']}  {job['state']:<9}  "
                f"{job['tenant']:<10}  {job['spec']}"
            )
            if job.get("error"):
                line += f"  ({job['error']})"
            print(line)
        counts = ", ".join(
            f"{state}={count}"
            for state, count in sorted(doc["counts"].items())
            if count
        )
        if counts:
            print(f"  totals: {counts}")
        if args.json_out:
            payload = {"stats": stats, **doc}
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.json_out}")
        return 0


def _add_analysis_flags(
    parser: argparse.ArgumentParser, command: str
) -> None:
    parser.add_argument("--fan-in", type=int, default=4,
                        help="TBON fan-in (default 4)")
    parser.add_argument("--centralized", action="store_true",
                        help="use the centralized baseline")
    parser.add_argument("--adapt", action="store_true",
                        help="run the unexpected-match adaptation loop")
    parser.add_argument("--report", metavar="FILE",
                        help="write the HTML report here")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the wait-for graph in DOT here")
    parser.add_argument("--simplify", action="store_true",
                        help="write the aggregated (simplified) DOT")
    parser.add_argument("--checks", action="store_true",
                        help="also run the non-deadlock correctness checks")
    parser.add_argument("--seed", type=int, default=0)
    _add_common_flags(parser, command)
    _add_obs_flags(parser)


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs", action="store_true",
        help="instrument the run and print an observability summary",
    )
    parser.add_argument(
        "--obs-trace", metavar="FILE",
        help="write a Chrome trace_event file (Perfetto-compatible) "
        "with the metrics snapshot embedded; implies --obs",
    )
    # Internal routing attributes: --out FILE --format jsonl lands on
    # obs_jsonl, --out FILE --format json on json_out (the pre-1.1
    # option spellings were removed in 1.2 — see REMOVED_CLI_FLAGS).
    parser.set_defaults(obs_jsonl=None, json_out=None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Runtime MPI deadlock detection with distributed "
        "wait state tracking (SC '13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a workload, save its trace")
    rec.add_argument("workload")
    rec.add_argument(
        "-o", "--output",
        help="trace output path (or --out FILE --format json)",
    )
    rec.add_argument("-n", "--ranks", type=int, default=8)
    rec.add_argument("--seed", type=int, default=0)
    _add_common_flags(rec, "record")
    _add_obs_flags(rec)
    rec.set_defaults(func=_cmd_record)

    ana = sub.add_parser("analyze", help="detect deadlocks in a trace")
    ana.add_argument("trace")
    _add_analysis_flags(ana, "analyze")
    ana.set_defaults(func=_cmd_analyze)

    demo = sub.add_parser("demo", help="record + analyze a workload")
    demo.add_argument("workload")
    demo.add_argument("-n", "--ranks", type=int, default=8)
    _add_analysis_flags(demo, "demo")
    demo.set_defaults(func=_cmd_demo)

    lint = sub.add_parser(
        "lint",
        help="statically analyze rank programs or traces (no engine)",
    )
    lint.add_argument(
        "paths", nargs="+",
        help="Python rank-program files or recorded .json traces",
    )
    lint.add_argument(
        "-n", "--ranks", type=int, default=4,
        help="virtual world size for extracted programs (default 4; "
        "a module-level LINT_RANKS overrides it)",
    )
    lint.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print analysis notes (skipped passes etc.)",
    )
    _add_common_flags(lint, "lint")
    lint.set_defaults(func=_cmd_lint)

    classify = sub.add_parser(
        "classify",
        help="label rank programs by decidable fragment "
        "(SEQ-DETERMINISTIC / SEQ-WILDCARD-FREE-LOOPS / UNDECIDABLE)",
    )
    classify.add_argument(
        "paths", nargs="+",
        help="Python rank-program files (as for `repro lint`)",
    )
    classify.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print the extracted symbolic term tree",
    )
    classify.add_argument(
        "--prove", action="store_true",
        help="also run the parameterized prover on each decidable "
        "program (PROVED-ALL-P / REFUTED with minimal p); a "
        "refutation folds into exit code 1",
    )
    _add_common_flags(classify, "classify")
    classify.set_defaults(func=_cmd_classify)

    prove = sub.add_parser(
        "prove",
        help="parameterized deadlock-freedom certification: "
        "PROVED-ALL-P for every p >= 2, or the minimal failing p "
        "with a replayable witness",
    )
    prove.add_argument(
        "paths", nargs="+",
        help="Python rank-program files (as for `repro lint`)",
    )
    prove.add_argument(
        "-v", "--verbose", action="store_true",
        help="also print the per-channel certificate table",
    )
    prove.add_argument(
        "--witness-dir", metavar="DIR",
        help="save each refutation witness as JSON into this "
        "directory",
    )
    _add_common_flags(prove, "prove")
    _add_obs_flags(prove)
    prove.set_defaults(func=_cmd_prove)

    verify = sub.add_parser(
        "verify",
        help="bounded wildcard-aware deadlock verification with "
        "replayable witnesses",
    )
    verify.add_argument(
        "paths", nargs="+",
        help="Python rank-program files (as for `repro lint`)",
    )
    verify.add_argument(
        "-n", "--ranks", type=int, default=4,
        help="virtual world size for extracted programs (default 4; "
        "a module-level LINT_RANKS overrides it)",
    )
    verify.add_argument(
        "--max-states", type=int, default=200_000,
        help="state budget before bailing out with bound-exceeded "
        "(default 200000)",
    )
    verify.add_argument(
        "--max-depth", type=int, default=1_000_000,
        help="schedule-depth budget before bound-exceeded "
        "(default 1000000)",
    )
    verify.add_argument(
        "--replay", action="store_true",
        help="replay each deadlock witness through the runtime engine "
        "to confirm it dynamically",
    )
    verify.add_argument(
        "--no-por", action="store_true",
        help="disable the partial-order reduction (naive enumeration; "
        "for debugging and benchmarks)",
    )
    verify.add_argument(
        "--no-fastpath", action="store_true",
        help="disable the decidable-fragment linear fast path and "
        "always explore the match-set state graph",
    )
    verify.add_argument(
        "--witness-dir", metavar="DIR",
        help="save every deadlock witness as JSON into this directory",
    )
    verify.add_argument(
        "--prove", action="store_true",
        help="also run the parameterized prover on each file; a "
        "REFUTED program counts as a deadlock (exit 1)",
    )
    _add_common_flags(verify, "verify")
    _add_obs_flags(verify)
    verify.set_defaults(func=_cmd_verify)

    stats = sub.add_parser(
        "stats",
        help="summarize an observability run recorded with "
        "--obs-trace, a raw jsonl event stream, or a repro-live/1 "
        "feed",
    )
    stats.add_argument(
        "run",
        help="a Chrome trace file written by --obs-trace, or a raw "
        ".jsonl stream written by --out FILE --format jsonl",
    )
    _add_common_flags(stats, "stats")
    stats.set_defaults(func=_cmd_stats)

    prof = sub.add_parser(
        "profile",
        help="render the BSP round profile of a sharded --obs-trace run "
        "(per-shard sections, critical-shard timeline, codec breakdown)",
    )
    prof.add_argument(
        "run",
        help="a Chrome trace file written by --obs-trace on a run with "
        "--backend sharded",
    )
    _add_common_flags(prof, "profile")
    prof.set_defaults(func=_cmd_profile)

    blame = sub.add_parser(
        "blame",
        help="wait-state blame analysis: root causes, blocked-time "
        "attribution, blame chain, critical path",
    )
    blame.add_argument(
        "run",
        help="a Chrome trace written by --obs-trace, a raw .jsonl "
        "event stream, or a Python rank-program file to run live "
        "(repro lint conventions)",
    )
    blame.add_argument(
        "-n", "--ranks", type=int, default=4,
        help="virtual world size for live mode (default 4; a "
        "module-level LINT_RANKS overrides it)",
    )
    blame.add_argument("--seed", type=int, default=0)
    blame.add_argument(
        "--fan-in", type=int, default=4,
        help="TBON fan-in for live mode (default 4)",
    )
    blame.set_defaults(json_out=None)
    _add_common_flags(blame, "blame")
    blame.set_defaults(func=_cmd_blame)

    watch = sub.add_parser(
        "watch",
        help="follow a run's live health feed: PROGRESSING / SOFT-HANG "
        "/ DEADLOCK-CONFIRMED triage (exit code = verdict)",
    )
    watch.add_argument(
        "target",
        help="a Python rank-program file (repro lint conventions), a "
        "named workload, or a recorded repro-live/1 .jsonl feed to "
        "replay",
    )
    watch.add_argument(
        "-n", "--ranks", type=int, default=8,
        help="virtual world size for rank-program/workload targets "
        "(default 8; a module-level LINT_RANKS overrides it)",
    )
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument(
        "--every", type=int, default=256, metavar="STEPS",
        help="engine steps between live snapshots (default 256)",
    )
    watch.add_argument(
        "--every-rounds", type=int, default=8, metavar="N",
        help="BSP rounds between backend snapshots for --backend "
        "sharded (default 8)",
    )
    watch.add_argument(
        "--openmetrics", metavar="FILE",
        help="also write the final metrics snapshot in OpenMetrics "
        "text exposition format (health verdict as a gauge)",
    )
    _add_common_flags(watch, "watch")
    watch.set_defaults(func=_cmd_watch)

    serve = sub.add_parser(
        "serve",
        help="run the persistent analysis daemon (NDJSON over TCP/Unix)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_SERVE_PORT,
        help=f"TCP listen port (default {DEFAULT_SERVE_PORT}; 0 = "
        "ephemeral; use --no-tcp to disable)",
    )
    serve.add_argument(
        "--no-tcp", dest="port", action="store_const", const=None,
        help="no TCP listener (serve only on --unix)",
    )
    serve.add_argument(
        "--unix", metavar="PATH", default=None,
        help="also (or only) listen on this Unix socket path",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="analysis worker threads (default 2)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32,
        help="max queued jobs before queue-full rejections (default 32)",
    )
    serve.add_argument(
        "--quota", type=int, default=4,
        help="max in-flight jobs per tenant (default 4)",
    )
    serve.add_argument(
        "--backend", choices=("inline", "sharded"), default="inline",
        help="analysis backend the workers use (default inline)",
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit one job to a running repro serve daemon",
    )
    submit.add_argument(
        "target",
        help="a workload name, a rank-program .py file, or a matched "
        "trace .json file",
    )
    submit.add_argument(
        "--server", default=f"127.0.0.1:{DEFAULT_SERVE_PORT}",
        help="daemon address: host:port or a Unix socket path "
        f"(default 127.0.0.1:{DEFAULT_SERVE_PORT})",
    )
    submit.add_argument("--tenant", default="default")
    submit.add_argument("-n", "--ranks", type=int, default=4)
    submit.add_argument(
        "--analysis", choices=("analyze", "verify", "blame"),
        default="analyze",
        help="analysis for .py submissions (default analyze)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="return after submission without waiting for the verdict",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stream the job's repro-live/1 windows while waiting",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="connect/wait timeout in seconds (default 300)",
    )
    _add_common_flags(submit, "submit")
    submit.set_defaults(func=_cmd_submit, json_out=None)

    jobs = sub.add_parser(
        "jobs",
        help="list jobs and stats of a running repro serve daemon",
    )
    jobs.add_argument(
        "--server", default=f"127.0.0.1:{DEFAULT_SERVE_PORT}",
        help="daemon address: host:port or a Unix socket path",
    )
    jobs.add_argument(
        "--tenant", default=None, help="only this tenant's jobs"
    )
    jobs.add_argument(
        "--metrics", action="store_true",
        help="print the daemon's OpenMetrics scrape and exit",
    )
    jobs.add_argument("--timeout", type=float, default=30.0)
    _add_common_flags(jobs, "jobs")
    jobs.set_defaults(func=_cmd_jobs, json_out=None)

    figs = sub.add_parser("figures", help="print the overhead models")
    _add_common_flags(figs, "figures")
    figs.set_defaults(func=_cmd_figures)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    code = _reject_removed_flags(argv)
    if code is not None:
        return code
    args = build_parser().parse_args(argv)
    code = _normalize_args(args)
    if code is not None:
        return code
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
