"""Rank-program API for the virtual MPI runtime.

A *rank program* is a generator function receiving a :class:`Rank`
handle. MPI calls are built with the handle's mpi4py-flavoured methods
and submitted to the engine with ``yield``; the value of the yield
expression is the call's result (e.g. a :class:`Status` for a receive,
a request id for ``isend``)::

    def worker(rank):
        if rank.rank == 0:
            yield rank.send(dest=1, tag=7)
        else:
            status = yield rank.recv(source=ANY_SOURCE, tag=7)
            assert status.source == 0

Helper subroutines compose with ``yield from`` (e.g.
:meth:`Rank.sendrecv`). The engine drives these generators under real
MPI matching semantics (:mod:`repro.runtime.engine`).
"""
from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, OpKind
from repro.mpi.communicator import Communicator

#: Cached display form of source file paths (relative when possible).
_PATH_CACHE: Dict[str, str] = {}


def _display_path(path: str) -> str:
    cached = _PATH_CACHE.get(path)
    if cached is None:
        cached = path
        try:
            rel = os.path.relpath(path)
            if not rel.startswith(".."):
                cached = rel
        except ValueError:
            pass
        _PATH_CACHE[path] = cached
    return cached


def _callsite() -> str:
    """``file:line`` of the rank-program frame issuing the current call.

    Walks out of this module so that helper layers (the ``Rank``
    builders, the ``sendrecv`` decomposition) never show up as the
    source of an MPI call; findings then point at application code.
    """
    frame = sys._getframe(1)
    while frame is not None and (
        frame.f_code.co_filename == __file__
        # Skip synthesized frames (the dataclass-generated __init__).
        or frame.f_code.co_filename.startswith("<")
    ):
        frame = frame.f_back
    if frame is None:
        return ""
    return f"{_display_path(frame.f_code.co_filename)}:{frame.f_lineno}"


@dataclass(frozen=True)
class Status:
    """Observed completion envelope of a receive/probe (MPI_Status)."""

    source: int
    tag: int
    nbytes: int = 0


@dataclass
class Call:
    """A single MPI call descriptor, submitted via ``yield``.

    Only the engine constructs results for these; programs treat them as
    opaque. ``comm`` is a :class:`Communicator` so that programs can use
    derived communicators naturally.
    """

    kind: OpKind
    comm: Communicator
    peer: Optional[int] = None
    tag: int = 0
    root: Optional[int] = None
    requests: Tuple[int, ...] = ()
    nbytes: int = 0
    #: MPI_Comm_split arguments (color may be None for MPI_UNDEFINED).
    color: Optional[int] = None
    #: MPI_Comm_create group (world ranks) for the new communicator.
    group: Optional[Tuple[int, ...]] = None
    #: Sendrecv decomposition marker (set internally).
    sendrecv_group: Optional[int] = None
    #: ``file:line`` of the issuing rank-program statement; captured
    #: automatically at construction so every recorded operation (and
    #: every finding derived from it) can cite its source location.
    location: str = ""

    def __post_init__(self) -> None:
        if not self.location:
            self.location = _callsite()


class Rank:
    """Per-rank handle: call builders plus identity/communicator info."""

    def __init__(self, world_rank: int, world: Communicator) -> None:
        self._world_rank = world_rank
        self._world = world
        self._sendrecv_counter = 0

    @property
    def rank(self) -> int:
        """This process's world rank."""
        return self._world_rank

    @property
    def size(self) -> int:
        """World size."""
        return self._world.size

    @property
    def world(self) -> Communicator:
        return self._world

    # -- point-to-point --------------------------------------------------

    def _p2p(
        self,
        kind: OpKind,
        peer: int,
        tag: int,
        comm: Optional[Communicator],
        nbytes: int,
    ) -> Call:
        return Call(
            kind=kind,
            comm=comm or self._world,
            peer=peer,
            tag=tag,
            nbytes=nbytes,
        )

    def send(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
             nbytes: int = 8) -> Call:
        """Blocking standard-mode send (MPI_Send)."""
        return self._p2p(OpKind.SEND, dest, tag, comm, nbytes)

    def ssend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
              nbytes: int = 8) -> Call:
        """Blocking synchronous send (MPI_Ssend)."""
        return self._p2p(OpKind.SSEND, dest, tag, comm, nbytes)

    def bsend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
              nbytes: int = 8) -> Call:
        """Buffered send (MPI_Bsend): never blocks."""
        return self._p2p(OpKind.BSEND, dest, tag, comm, nbytes)

    def rsend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
              nbytes: int = 8) -> Call:
        """Ready send (MPI_Rsend): never blocks."""
        return self._p2p(OpKind.RSEND, dest, tag, comm, nbytes)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
             comm: Communicator | None = None, nbytes: int = 8) -> Call:
        """Blocking receive (MPI_Recv); yields a :class:`Status`."""
        return self._p2p(OpKind.RECV, source, tag, comm, nbytes)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
              comm: Communicator | None = None) -> Call:
        """Blocking probe (MPI_Probe); yields a :class:`Status`."""
        return self._p2p(OpKind.PROBE, source, tag, comm, 0)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
               comm: Communicator | None = None) -> Call:
        """Non-blocking probe; yields ``(flag, Status | None)``."""
        return self._p2p(OpKind.IPROBE, source, tag, comm, 0)

    def isend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
              nbytes: int = 8) -> Call:
        """Non-blocking standard send; yields a request id."""
        return self._p2p(OpKind.ISEND, dest, tag, comm, nbytes)

    def issend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
               nbytes: int = 8) -> Call:
        """Non-blocking synchronous send; yields a request id."""
        return self._p2p(OpKind.ISSEND, dest, tag, comm, nbytes)

    def ibsend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
               nbytes: int = 8) -> Call:
        """Non-blocking buffered send; yields a request id."""
        return self._p2p(OpKind.IBSEND, dest, tag, comm, nbytes)

    def irsend(self, dest: int, tag: int = 0, *, comm: Communicator | None = None,
               nbytes: int = 8) -> Call:
        """Non-blocking ready send; yields a request id."""
        return self._p2p(OpKind.IRSEND, dest, tag, comm, nbytes)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, *,
              comm: Communicator | None = None, nbytes: int = 8) -> Call:
        """Non-blocking receive; yields a request id."""
        return self._p2p(OpKind.IRECV, source, tag, comm, nbytes)

    # -- persistent communication -----------------------------------------

    def send_init(self, dest: int, tag: int = 0, *,
                  comm: Communicator | None = None, nbytes: int = 8) -> Call:
        """MPI_Send_init: create an inactive persistent send request.

        Yields a persistent request handle; activate it with
        :meth:`start`, complete each activation with a wait/test, and
        release it with :meth:`request_free`.
        """
        return Call(OpKind.SEND_INIT, comm or self._world, peer=dest,
                    tag=tag, nbytes=nbytes)

    def recv_init(self, source: int, tag: int = ANY_TAG, *,
                  comm: Communicator | None = None, nbytes: int = 8) -> Call:
        """MPI_Recv_init: create an inactive persistent receive request."""
        return Call(OpKind.RECV_INIT, comm or self._world, peer=source,
                    tag=tag, nbytes=nbytes)

    def start(self, request: int) -> Call:
        """MPI_Start: activate a persistent request.

        The engine records the activation as a fresh non-blocking
        send/receive instance (the paper handles persistent operations
        "like non-blocking point-to-point operations").
        """
        return Call(OpKind.PSTART_SEND, self._world, requests=(request,))

    def startall(self, requests: Sequence[int]) -> Iterator[Call]:
        """MPI_Startall, decomposed into individual starts.

        Use as ``yield from rank.startall([r1, r2])``.
        """
        for request in requests:
            yield self.start(request)

    def request_free(self, request: int) -> Call:
        """MPI_Request_free on an inactive persistent request."""
        return Call(OpKind.REQUEST_FREE, self._world, requests=(request,))

    # -- completions -----------------------------------------------------

    def wait(self, request: int) -> Call:
        """MPI_Wait; yields the request's :class:`Status` (or None)."""
        return Call(OpKind.WAIT, self._world, requests=(request,))

    def waitall(self, requests: Sequence[int]) -> Call:
        """MPI_Waitall; yields a tuple of statuses."""
        return Call(OpKind.WAITALL, self._world, requests=tuple(requests))

    def waitany(self, requests: Sequence[int]) -> Call:
        """MPI_Waitany; yields ``(index, status)``."""
        return Call(OpKind.WAITANY, self._world, requests=tuple(requests))

    def waitsome(self, requests: Sequence[int]) -> Call:
        """MPI_Waitsome; yields ``(indices, statuses)``."""
        return Call(OpKind.WAITSOME, self._world, requests=tuple(requests))

    def test(self, request: int) -> Call:
        """MPI_Test; yields ``(flag, status | None)``."""
        return Call(OpKind.TEST, self._world, requests=(request,))

    def testall(self, requests: Sequence[int]) -> Call:
        """MPI_Testall; yields ``(flag, statuses | None)``."""
        return Call(OpKind.TESTALL, self._world, requests=tuple(requests))

    def testany(self, requests: Sequence[int]) -> Call:
        """MPI_Testany; yields ``(flag, index, status)``."""
        return Call(OpKind.TESTANY, self._world, requests=tuple(requests))

    def testsome(self, requests: Sequence[int]) -> Call:
        """MPI_Testsome; yields ``(indices, statuses)``."""
        return Call(OpKind.TESTSOME, self._world, requests=tuple(requests))

    # -- collectives -----------------------------------------------------

    def barrier(self, *, comm: Communicator | None = None) -> Call:
        return Call(OpKind.BARRIER, comm or self._world)

    def bcast(self, root: int, *, comm: Communicator | None = None,
              nbytes: int = 8) -> Call:
        return Call(OpKind.BCAST, comm or self._world, root=root, nbytes=nbytes)

    def reduce(self, root: int, *, comm: Communicator | None = None,
               nbytes: int = 8) -> Call:
        return Call(OpKind.REDUCE, comm or self._world, root=root, nbytes=nbytes)

    def allreduce(self, *, comm: Communicator | None = None,
                  nbytes: int = 8) -> Call:
        return Call(OpKind.ALLREDUCE, comm or self._world, nbytes=nbytes)

    def gather(self, root: int, *, comm: Communicator | None = None,
               nbytes: int = 8) -> Call:
        return Call(OpKind.GATHER, comm or self._world, root=root, nbytes=nbytes)

    def scatter(self, root: int, *, comm: Communicator | None = None,
                nbytes: int = 8) -> Call:
        return Call(OpKind.SCATTER, comm or self._world, root=root, nbytes=nbytes)

    def allgather(self, *, comm: Communicator | None = None,
                  nbytes: int = 8) -> Call:
        return Call(OpKind.ALLGATHER, comm or self._world, nbytes=nbytes)

    def alltoall(self, *, comm: Communicator | None = None,
                 nbytes: int = 8) -> Call:
        return Call(OpKind.ALLTOALL, comm or self._world, nbytes=nbytes)

    def scan(self, *, comm: Communicator | None = None, nbytes: int = 8) -> Call:
        return Call(OpKind.SCAN, comm or self._world, nbytes=nbytes)

    def reduce_scatter(self, *, comm: Communicator | None = None,
                       nbytes: int = 8) -> Call:
        return Call(OpKind.REDUCE_SCATTER, comm or self._world, nbytes=nbytes)

    def comm_dup(self, *, comm: Communicator | None = None) -> Call:
        """MPI_Comm_dup; yields the new :class:`Communicator`."""
        return Call(OpKind.COMM_DUP, comm or self._world)

    def comm_split(self, color: Optional[int], *,
                   comm: Communicator | None = None) -> Call:
        """MPI_Comm_split; yields the new communicator (or None)."""
        return Call(OpKind.COMM_SPLIT, comm or self._world, color=color)

    def comm_create(self, group: Sequence[int], *,
                    comm: Communicator | None = None) -> Call:
        """MPI_Comm_create: new communicator over ``group`` (world
        ranks); collective over the parent communicator. Yields the new
        communicator for members, None for non-members."""
        return Call(OpKind.COMM_CREATE, comm or self._world,
                    group=tuple(group))

    def comm_free(self, comm: Communicator) -> Call:
        """MPI_Comm_free (collective over the freed communicator)."""
        return Call(OpKind.COMM_FREE, comm)

    def finalize(self) -> Call:
        return Call(OpKind.FINALIZE, self._world)

    # -- composite calls ---------------------------------------------------

    def sendrecv(self, dest: int, source: int, sendtag: int = 0,
                 recvtag: int = ANY_TAG, *, comm: Communicator | None = None,
                 nbytes: int = 8) -> Iterator[Call]:
        """MPI_Sendrecv, decomposed as the standard suggests.

        Implemented as Isend + Irecv + Waitall (paper footnote 1); the
        decomposed operations carry a shared ``sendrecv_group`` marker so
        reports render them as one call. Use as
        ``status = yield from rank.sendrecv(...)``.
        """
        c = comm or self._world
        group = self._sendrecv_counter
        self._sendrecv_counter += 1
        send = Call(OpKind.ISEND, c, peer=dest, tag=sendtag, nbytes=nbytes,
                    sendrecv_group=group)
        recv = Call(OpKind.IRECV, c, peer=source, tag=recvtag, nbytes=nbytes,
                    sendrecv_group=group)
        sreq = yield send
        rreq = yield recv
        statuses = yield Call(OpKind.WAITALL, self._world,
                              requests=(sreq, rreq), sendrecv_group=group)
        return statuses[1]
