"""Virtual MPI runtime: rank programs, matching semantics, execution."""
from repro.runtime.engine import Engine, RankProgram, RunResult, run_programs
from repro.runtime.program import Call, Rank, Status
from repro.runtime.scheduler import Scheduler

__all__ = [
    "Call",
    "Engine",
    "Rank",
    "RankProgram",
    "RunResult",
    "Scheduler",
    "Status",
    "run_programs",
]
