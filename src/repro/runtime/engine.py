"""The virtual MPI runtime: executes rank programs, records traces.

This is the substrate that replaces a real MPI library and cluster. It
drives the rank-program generators of :mod:`repro.runtime.program`
under genuine MPI matching semantics (:mod:`repro.runtime.matchstate`)
with a configurable interpretation of MPI's freedoms
(:class:`~repro.mpi.blocking.BlockingSemantics`): buffered or
rendezvous standard sends, synchronizing or relaxed collectives.

Its two products are exactly what the deadlock-detection tool consumes:

* a :class:`~repro.mpi.trace.MatchedTrace` — the intercepted operations
  of every rank with the matching the (virtual) MPI implementation
  chose at runtime, including wildcard resolutions; and
* ground truth — whether the run *manifestly* hung, and where — which
  the test suite uses to validate detector verdicts.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.mpi.blocking import BlockingSemantics
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_completion_kind,
)
from repro.mpi.ops import Operation, OpRef
from repro.mpi.trace import CollectiveMatch, MatchedTrace, PendingCollective, Trace
from repro.obs.events import PID_ENGINE
from repro.obs.flight import FlightRecorder
from repro.obs.live import LiveMonitor
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.runtime.matchstate import CollectiveWave, MatchState, PendingSend
from repro.runtime.program import Call, Rank, Status
from repro.runtime.scheduler import Scheduler
from repro.util.errors import MpiUsageError, ProtocolError, ReproError

#: A rank program: generator function taking a :class:`Rank` handle.
RankProgram = Callable[[Rank], Iterator[Call]]

_RUNNABLE = "runnable"
_PARKED = "parked"
_DONE = "done"


@dataclass
class _RequestState:
    req_id: int
    rank: int
    op_ref: OpRef
    is_send: bool
    done: bool = False
    status: Optional[Status] = None
    consumed: bool = False


@dataclass
class _PersistentReq:
    """An MPI persistent request handle (Send_init/Recv_init)."""

    handle: int
    rank: int
    is_send: bool
    comm_id: int
    peer: int
    tag: int
    nbytes: int
    #: Request id of the currently active Start instance, if any.
    active_instance: Optional[int] = None


@dataclass
class _RankState:
    rank: int
    gen: Iterator[Call]
    status: str = _RUNNABLE
    #: Value to send into the generator on the next step.
    inbox: object = None
    #: The call the rank is currently blocked in (when parked).
    blocked_call: Optional[Call] = None
    blocked_ref: Optional[OpRef] = None
    #: Engine step at which the rank parked (live dwell accounting).
    blocked_at_step: int = 0


@dataclass
class RunResult:
    """Outcome of executing a program set on the virtual runtime."""

    matched: MatchedTrace
    #: True when the run manifestly hung (no rank could make progress).
    deadlocked: bool
    #: For hung runs: each stuck rank and the operation it blocks in.
    hung: Dict[int, OpRef] = field(default_factory=dict)
    steps: int = 0
    #: Messages sent but never received (potential lost messages).
    unreceived_messages: int = 0
    #: The engine's flight recorder (per-rank tails of recent calls).
    flight: Optional[FlightRecorder] = None

    @property
    def trace(self) -> Trace:
        return self.matched.trace

    def hung_descriptions(self) -> List[str]:
        return [
            self.matched.trace.op(ref).describe()
            for _, ref in sorted(self.hung.items())
        ]


class Engine:
    """Cooperative executor of rank programs with MPI semantics."""

    def __init__(
        self,
        programs: Sequence[RankProgram],
        *,
        semantics: BlockingSemantics | None = None,
        seed: int = 0,
        scheduler_policy: str = "random",
        wildcard_policy: str = "random",
        max_steps: int = 10_000_000,
        observer: Observer | None = None,
        scheduler: Scheduler | None = None,
        wildcard_pinnings: Dict[OpRef, int] | None = None,
        flight: FlightRecorder | None = None,
        live: LiveMonitor | None = None,
    ) -> None:
        if not programs:
            raise ValueError("need at least one rank program")
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.live = live
        if live is not None:
            live.attach_engine(len(programs))
        # The flight recorder is ON by default: a bounded per-rank ring
        # whose append is O(1); logical step counts serve as timestamps.
        self.flight = flight if flight is not None else FlightRecorder()
        # The per-op record sites sit on the scheduler hot path, where
        # even a bound method call per event is measurable: hold each
        # rank's live ring buffer and append inline (trim stays rare).
        self._flight_bufs = (
            [self.flight.live_buffer(r) for r in range(len(programs))]
            if self.flight.enabled
            else None
        )
        self._flight_trim_at = self.flight.trim_at
        self._step_count = 0
        self.semantics = semantics or BlockingSemantics.relaxed()
        self.comms = CommRegistry(len(programs))
        self.match = MatchState(
            seed=seed,
            wildcard_policy=wildcard_policy,
            pinnings=wildcard_pinnings,
        )
        self.scheduler = (
            scheduler
            if scheduler is not None
            else Scheduler(policy=scheduler_policy, seed=seed)
        )
        self.max_steps = max_steps

        self._seqs: List[List[Operation]] = [[] for _ in programs]
        self._p2p_matches: List[Tuple[OpRef, OpRef]] = []
        self._probe_matches: List[Tuple[OpRef, OpRef]] = []
        self._coll_matches: List[Tuple[int, frozenset]] = []
        self._requests: Dict[Tuple[int, int], _RequestState] = {}
        self._req_by_op: Dict[OpRef, _RequestState] = {}
        self._persistent: Dict[Tuple[int, int], _PersistentReq] = {}
        self._next_req: List[int] = [0 for _ in programs]

        self._ranks: List[_RankState] = []
        world = self.comms.world
        for r, prog in enumerate(programs):
            gen = prog(Rank(r, world))
            self._ranks.append(_RankState(rank=r, gen=gen))

        # Wake registries.
        self._send_waiters: Dict[OpRef, int] = {}
        self._recv_waiters: Dict[OpRef, int] = {}
        self._probe_waiters: Dict[Tuple[int, int], List[Tuple[int, Operation]]] = {}
        self._wave_waiters: Dict[Tuple[int, int], Dict[int, Operation]] = {}
        self._completion_waiters: Dict[int, Operation] = {}
        self._finalize_arrived: Dict[int, OpRef] = {}
        self._finalize_waiters: List[int] = []
        self._runnable: List[int] = list(range(len(programs)))
        #: canAdvance flips: how often a parked rank became runnable.
        self._resume_count = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        steps = 0
        obs = self.obs
        live = self.live
        live_every = live.every_steps if live is not None else 0
        run_start = obs.tracer.now_us() if obs.enabled else 0.0
        while self._runnable:
            steps += 1
            self._step_count = steps
            if steps > self.max_steps:
                raise ReproError(
                    f"engine exceeded {self.max_steps} steps (livelock?)"
                )
            if obs.enabled:
                obs.metrics.gauge("engine.runnable").set(len(self._runnable))
            rank = self.scheduler.pick(self._runnable)
            self._step(rank)
            if live_every and steps % live_every == 0:
                live.tick_engine(self._live_sample(steps))
        if live is not None:
            # One terminal engine snapshot so short runs (and the final
            # parked set of a hung one) always reach the feed.
            live.tick_engine(self._live_sample(steps))
        if obs.enabled:
            obs.metrics.inc("engine.steps", steps)
            obs.tracer.complete(
                "engine.run",
                cat="engine",
                ts=run_start,
                dur=obs.tracer.now_us() - run_start,
                pid=PID_ENGINE,
                tid=0,
                args={"steps": steps, "ranks": len(self._ranks)},
            )
        hung = {
            rs.rank: rs.blocked_ref
            for rs in self._ranks
            if rs.status == _PARKED and rs.blocked_ref is not None
        }
        trace = Trace(self._seqs)
        matched = MatchedTrace(trace, self.comms)
        for send_ref, recv_ref in self._p2p_matches:
            matched.add_p2p_match(send_ref, recv_ref)
        for probe_ref, send_ref in self._probe_matches:
            matched.add_probe_match(probe_ref, send_ref)
        for comm_id, members in self._coll_matches:
            matched.add_collective_match(
                CollectiveMatch(comm_id=comm_id, members=members)
            )
        for wave in self.match.incomplete_waves():
            if wave.kind is OpKind.FINALIZE:
                continue
            matched.add_pending_collective(
                PendingCollective(
                    comm_id=wave.comm_id,
                    index=wave.index,
                    arrived=dict(wave.arrived),
                )
            )
        for (rank_id, req_id), req in self._requests.items():
            matched.register_request(rank_id, req_id, req.op_ref)
        return RunResult(
            matched=matched,
            deadlocked=bool(hung),
            hung=hung,
            steps=steps,
            unreceived_messages=self.match.unmatched_send_count(),
            flight=self.flight,
        )

    def _live_sample(self, steps: int) -> Dict[str, object]:
        """Engine progress for one live snapshot window.

        Dwell is measured in scheduler steps since the rank parked —
        a logical clock, so the sample is deterministic and cheap (no
        wall-clock reads on the engine loop)."""
        dwell_steps: Dict[int, int] = {}
        blocked: Dict[int, Dict[str, object]] = {}
        done = 0
        for rs in self._ranks:
            if rs.status == _DONE:
                done += 1
            elif rs.status == _PARKED and rs.blocked_ref is not None:
                ref = rs.blocked_ref
                op = self._seqs[ref[0]][ref[1]]
                dwell_steps[rs.rank] = steps - rs.blocked_at_step
                blocked[rs.rank] = {"op": op.kind.name, "peer": op.peer}
        return {
            "steps": steps,
            "ranks": len(self._ranks),
            "runnable": len(self._runnable),
            "done": done,
            "ops_issued": sum(len(s) for s in self._seqs),
            "resumes": self._resume_count,
            "dwell_steps": dwell_steps,
            "blocked": blocked,
        }

    def _step(self, rank: int) -> None:
        rs = self._ranks[rank]
        assert rs.status == _RUNNABLE
        # The rank is off the runnable queue while it steps; every
        # completion path must _resume it (or _park it) explicitly.
        rs.status = _PARKED
        result, rs.inbox = rs.inbox, None
        try:
            call = rs.gen.send(result)
        except StopIteration:
            rs.status = _DONE
            return
        if not isinstance(call, Call):
            raise MpiUsageError(
                f"rank {rank} yielded {call!r}; programs must yield Call "
                "objects built with the Rank handle"
            )
        self._issue(rank, call)

    def _resume(self, rank: int, result: object) -> None:
        """Mark a parked rank runnable with ``result`` pending."""
        rs = self._ranks[rank]
        if rs.status == _RUNNABLE:
            raise ProtocolError(
                f"rank {rank} woken twice before stepping"
            )
        bufs = self._flight_bufs
        if bufs is not None and rs.blocked_ref is not None:
            ref = rs.blocked_ref
            buf = bufs[rank]
            buf.append(
                (self._step_count, "resume", self._seqs[ref[0]][ref[1]])
            )
            if len(buf) >= self._flight_trim_at:
                self.flight.trim(rank)
        rs.inbox = result
        rs.blocked_call = None
        rs.blocked_ref = None
        rs.status = _RUNNABLE
        self._resume_count += 1
        self._runnable.append(rank)

    def _park(self, rank: int, call: Call, ref: OpRef) -> None:
        rs = self._ranks[rank]
        rs.status = _PARKED
        rs.blocked_call = call
        rs.blocked_ref = ref
        rs.blocked_at_step = self._step_count
        bufs = self._flight_bufs
        if bufs is not None:
            buf = bufs[rank]
            buf.append(
                (self._step_count, "block", self._seqs[ref[0]][ref[1]])
            )
            if len(buf) >= self._flight_trim_at:
                self.flight.trim(rank)

    # ------------------------------------------------------------------
    # call issue & completion
    # ------------------------------------------------------------------

    def _observe_op(self, op: Operation) -> None:
        """Count and trace one recorded operation (observability)."""
        self.obs.metrics.inc(f"engine.ops.{op.kind.name}")
        self.obs.tracer.instant(
            op.kind.name,
            cat="engine.op",
            pid=PID_ENGINE,
            tid=op.rank,
            args={"ts": op.ts},
        )

    def _record(self, rank: int, call: Call) -> Operation:
        ts = len(self._seqs[rank])
        request: Optional[int] = None
        if call.kind in (
            OpKind.ISEND,
            OpKind.ISSEND,
            OpKind.IBSEND,
            OpKind.IRSEND,
            OpKind.IRECV,
        ):
            request = self._next_req[rank]
            self._next_req[rank] += 1
        requests = call.requests
        if is_completion_kind(call.kind) and requests:
            requests = self._translate_completion_requests(rank, requests)
        op = Operation(
            kind=call.kind,
            rank=rank,
            ts=ts,
            comm_id=call.comm.comm_id,
            peer=call.peer,
            tag=call.tag,
            root=call.root,
            request=request,
            requests=requests,
            nbytes=call.nbytes,
            sendrecv_group=call.sendrecv_group,
            location=call.location,
        )
        self._seqs[rank].append(op)
        bufs = self._flight_bufs
        if bufs is not None:
            buf = bufs[rank]
            buf.append((self._step_count, "issue", op))
            if len(buf) >= self._flight_trim_at:
                self.flight.trim(rank)
        if self.obs.enabled:
            self._observe_op(op)
        return op

    def _issue(self, rank: int, call: Call) -> None:
        kind = call.kind
        if kind in (OpKind.SEND_INIT, OpKind.RECV_INIT):
            self._issue_persistent_init(rank, call)
            return
        if kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV):
            self._issue_persistent_start(rank, call)
            return
        if kind is OpKind.REQUEST_FREE:
            self._issue_request_free(rank, call)
            return
        op = self._record(rank, call)

        if op.is_p2p() and op.peer == PROC_NULL:
            # Operations on MPI_PROC_NULL complete immediately, match
            # nothing, and deliver an empty status.
            result: object = None
            if op.is_recv() or op.is_probe():
                result = Status(PROC_NULL, ANY_TAG, 0)
            if op.request is not None:
                req = self._register_request(op, is_send=op.is_send())
                req.done = True
                req.status = Status(PROC_NULL, ANY_TAG, 0)
                result = req.req_id
            if kind is OpKind.IPROBE:
                result = (True, Status(PROC_NULL, ANY_TAG, 0))
            self._resume(rank, result)
            return

        if kind in (OpKind.SEND, OpKind.SSEND, OpKind.BSEND, OpKind.RSEND):
            self._issue_blocking_send(rank, call, op)
        elif kind is OpKind.RECV:
            self._issue_blocking_recv(rank, call, op)
        elif kind is OpKind.PROBE:
            self._issue_probe(rank, call, op)
        elif kind is OpKind.IPROBE:
            self._issue_iprobe(rank, op)
        elif kind in (
            OpKind.ISEND,
            OpKind.ISSEND,
            OpKind.IBSEND,
            OpKind.IRSEND,
        ):
            self._issue_isend(rank, op)
        elif kind is OpKind.IRECV:
            self._issue_irecv(rank, op)
        elif is_completion_kind(kind):
            self._issue_completion(rank, call, op)
        elif is_collective_kind(kind) or kind is OpKind.FINALIZE:
            self._issue_collective(rank, call, op)
        else:
            raise MpiUsageError(f"engine cannot execute {kind}")

    # -- persistent communication ---------------------------------------

    def _issue_persistent_init(self, rank: int, call: Call) -> None:
        handle = self._next_req[rank]
        self._next_req[rank] += 1
        ts = len(self._seqs[rank])
        op = Operation(
            kind=call.kind,
            rank=rank,
            ts=ts,
            comm_id=call.comm.comm_id,
            peer=call.peer,
            tag=call.tag,
            nbytes=call.nbytes,
            request=handle,
            location=call.location,
        )
        self._seqs[rank].append(op)
        if self.obs.enabled:
            self._observe_op(op)
        self._persistent[(rank, handle)] = _PersistentReq(
            handle=handle,
            rank=rank,
            is_send=call.kind is OpKind.SEND_INIT,
            comm_id=call.comm.comm_id,
            peer=call.peer,  # type: ignore[arg-type]
            tag=call.tag,
            nbytes=call.nbytes,
        )
        self._resume(rank, handle)

    def _get_persistent(self, rank: int, handle: int) -> _PersistentReq:
        preq = self._persistent.get((rank, handle))
        if preq is None:
            raise MpiUsageError(
                f"rank {rank}: {handle} is not a persistent request"
            )
        return preq

    def _issue_persistent_start(self, rank: int, call: Call) -> None:
        preq = self._get_persistent(rank, call.requests[0])
        if preq.active_instance is not None:
            raise MpiUsageError(
                f"rank {rank}: MPI_Start on already-active persistent "
                f"request {preq.handle}"
            )
        instance = self._next_req[rank]
        self._next_req[rank] += 1
        ts = len(self._seqs[rank])
        kind = OpKind.PSTART_SEND if preq.is_send else OpKind.PSTART_RECV
        op = Operation(
            kind=kind,
            rank=rank,
            ts=ts,
            comm_id=preq.comm_id,
            peer=preq.peer,
            tag=preq.tag,
            nbytes=preq.nbytes,
            request=instance,
            requests=(preq.handle,),
            location=call.location,
        )
        self._seqs[rank].append(op)
        if self.obs.enabled:
            self._observe_op(op)
        preq.active_instance = instance
        if op.peer == PROC_NULL:
            req = self._register_request(op, is_send=preq.is_send)
            req.done = True
            req.status = Status(PROC_NULL, ANY_TAG, 0)
            self._resume(rank, None)
            return
        if preq.is_send:
            req = self._register_request(op, is_send=True)
            buffered = self._send_buffers(op)
            send, recv = self.match.post_send(op, buffered)
            if buffered:
                req.done = True
            if recv is not None:
                self._on_pair(send, recv.ref)
            self._resume(rank, None)
            self._notify_probe_waiters(op.comm_id, op.peer)
        else:
            req = self._register_request(op, is_send=False)
            recv, send = self.match.post_recv(op)
            if send is not None:
                self._on_pair(send, recv.ref)
            self._resume(rank, None)

    def _issue_request_free(self, rank: int, call: Call) -> None:
        preq = self._get_persistent(rank, call.requests[0])
        if preq.active_instance is not None:
            raise MpiUsageError(
                f"rank {rank}: MPI_Request_free on active persistent "
                f"request {preq.handle}"
            )
        del self._persistent[(rank, preq.handle)]
        ts = len(self._seqs[rank])
        self._seqs[rank].append(
            Operation(
                kind=OpKind.REQUEST_FREE,
                rank=rank,
                ts=ts,
                requests=(preq.handle,),
                location=call.location,
            )
        )
        self._resume(rank, None)

    def _translate_completion_requests(
        self, rank: int, requests: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        """Map persistent handles to their active Start instances."""
        translated = []
        for req_id in requests:
            preq = self._persistent.get((rank, req_id))
            if preq is None:
                translated.append(req_id)
                continue
            if preq.active_instance is None:
                raise MpiUsageError(
                    f"rank {rank}: completion on inactive persistent "
                    f"request {req_id}"
                )
            translated.append(preq.active_instance)
        return tuple(translated)

    # -- sends / receives -------------------------------------------------

    def _send_buffers(self, op: Operation) -> bool:
        if op.kind in (OpKind.BSEND, OpKind.RSEND, OpKind.IBSEND, OpKind.IRSEND):
            return True
        return self.semantics.send_buffers(op)

    def _issue_blocking_send(self, rank: int, call: Call, op: Operation) -> None:
        buffered = self._send_buffers(op)
        send, recv = self.match.post_send(op, buffered)
        if recv is not None:
            self._on_pair(send, recv.ref)
            self._resume(rank, None)
        elif buffered:
            self._resume(rank, None)
        else:
            self._send_waiters[op.ref] = rank
            self._park(rank, call, op.ref)
        self._notify_probe_waiters(op.comm_id, op.peer)  # type: ignore[arg-type]

    def _issue_blocking_recv(self, rank: int, call: Call, op: Operation) -> None:
        recv, send = self.match.post_recv(op)
        if send is not None:
            self._on_pair(send, recv.ref)
            self._resume(rank, Status(send.src, send.tag, send.nbytes))
        else:
            self._recv_waiters[op.ref] = rank
            self._park(rank, call, op.ref)

    def _issue_isend(self, rank: int, op: Operation) -> None:
        req = self._register_request(op, is_send=True)
        buffered = self._send_buffers(op)
        send, recv = self.match.post_send(op, buffered)
        if buffered:
            req.done = True
        if recv is not None:
            self._on_pair(send, recv.ref)
        self._resume(rank, req.req_id)
        self._notify_probe_waiters(op.comm_id, op.peer)  # type: ignore[arg-type]

    def _issue_irecv(self, rank: int, op: Operation) -> None:
        req = self._register_request(op, is_send=False)
        recv, send = self.match.post_recv(op)
        if send is not None:
            self._on_pair(send, recv.ref)
        self._resume(rank, req.req_id)

    def _issue_probe(self, rank: int, call: Call, op: Operation) -> None:
        cand = self.match.probe_candidate(
            op.comm_id, op.rank, op.peer, op.tag  # type: ignore[arg-type]
        )
        if cand is not None:
            self._complete_probe(rank, op, cand)
        else:
            key = (op.comm_id, op.rank)
            self._probe_waiters.setdefault(key, []).append((rank, op))
            self._park(rank, call, op.ref)

    def _issue_iprobe(self, rank: int, op: Operation) -> None:
        cand = self.match.probe_candidate(
            op.comm_id, op.rank, op.peer, op.tag  # type: ignore[arg-type]
        )
        if cand is None:
            self._resume(rank, (False, None))
        else:
            op.observed_peer = cand.src
            op.observed_tag = cand.tag
            self._probe_matches.append((op.ref, cand.ref))
            self._resume(rank, (True, Status(cand.src, cand.tag, cand.nbytes)))

    def _complete_probe(
        self, rank: int, op: Operation, cand: PendingSend
    ) -> None:
        op.observed_peer = cand.src
        op.observed_tag = cand.tag
        self._probe_matches.append((op.ref, cand.ref))
        self._resume(rank, Status(cand.src, cand.tag, cand.nbytes))

    def _notify_probe_waiters(self, comm_id: int, dst: int) -> None:
        key = (comm_id, dst)
        waiters = self._probe_waiters.get(key)
        if not waiters:
            return
        remaining: List[Tuple[int, Operation]] = []
        for rank, op in waiters:
            cand = self.match.probe_candidate(
                op.comm_id, op.rank, op.peer, op.tag  # type: ignore[arg-type]
            )
            if cand is not None:
                self._complete_probe(rank, op, cand)
            else:
                remaining.append((rank, op))
        if remaining:
            self._probe_waiters[key] = remaining
        else:
            del self._probe_waiters[key]

    def _on_pair(self, send: PendingSend, recv_ref: OpRef) -> None:
        """A message and a receive were matched: propagate consequences."""
        self._p2p_matches.append((send.ref, recv_ref))
        recv_op = self._seqs[recv_ref[0]][recv_ref[1]]
        recv_op.observed_peer = send.src
        recv_op.observed_tag = send.tag

        # Wake a blocking sender.
        waiter = self._send_waiters.pop(send.ref, None)
        if waiter is not None:
            self._resume(waiter, None)
        # Complete a send request.
        req = self._req_by_op.get(send.ref)
        if req is not None and not req.done:
            req.done = True
            self._recheck_completion(req.rank)
        # Wake a blocking receiver.
        waiter = self._recv_waiters.pop(recv_ref, None)
        if waiter is not None:
            self._resume(waiter, Status(send.src, send.tag, send.nbytes))
        # Complete a receive request.
        req = self._req_by_op.get(recv_ref)
        if req is not None and not req.done:
            req.done = True
            req.status = Status(send.src, send.tag, send.nbytes)
            self._recheck_completion(req.rank)

    def _register_request(self, op: Operation, is_send: bool) -> _RequestState:
        assert op.request is not None
        req = _RequestState(
            req_id=op.request, rank=op.rank, op_ref=op.ref, is_send=is_send
        )
        self._requests[(op.rank, op.request)] = req
        self._req_by_op[op.ref] = req
        return req

    # -- completions --------------------------------------------------------

    def _get_request(self, rank: int, req_id: int) -> _RequestState:
        try:
            req = self._requests[(rank, req_id)]
        except KeyError:
            raise MpiUsageError(
                f"rank {rank} waits on unknown request {req_id}"
            ) from None
        if req.consumed:
            raise MpiUsageError(
                f"rank {rank} reuses already-completed request {req_id}"
            )
        return req

    def _issue_completion(self, rank: int, call: Call, op: Operation) -> None:
        if self._try_completion(rank, op):
            return
        if op.kind in (OpKind.WAIT, OpKind.WAITALL, OpKind.WAITANY, OpKind.WAITSOME):
            self._completion_waiters[rank] = op
            self._park(rank, call, op.ref)
        else:
            # Test flavours never block: deliver the "not done" result.
            self._resume(rank, self._test_failure_result(op))

    @staticmethod
    def _test_failure_result(op: Operation) -> object:
        if op.kind is OpKind.TEST:
            return (False, None)
        if op.kind is OpKind.TESTALL:
            return (False, None)
        if op.kind is OpKind.TESTANY:
            return (False, None, None)
        if op.kind is OpKind.TESTSOME:
            return ((), ())
        raise AssertionError(op.kind)

    def _release_persistent_instance(self, rank: int, instance: int) -> None:
        """A completed Start instance deactivates its persistent handle."""
        for preq in self._persistent.values():
            if preq.rank == rank and preq.active_instance == instance:
                preq.active_instance = None
                return

    def _try_completion(self, rank: int, op: Operation) -> bool:
        """Attempt to satisfy a WAIT*/TEST*; True if the rank resumed."""
        reqs = [self._get_request(rank, r) for r in op.requests]
        done_idx = [i for i, r in enumerate(reqs) if r.done]
        kind = op.kind
        if kind in (OpKind.WAIT, OpKind.WAITALL, OpKind.TEST, OpKind.TESTALL):
            if len(done_idx) != len(reqs):
                return False
            for r in reqs:
                r.consumed = True
                self._release_persistent_instance(rank, r.req_id)
            op.completed_indices = tuple(range(len(reqs)))
            op.test_flag = True
            statuses = tuple(r.status for r in reqs)
            if kind is OpKind.WAIT:
                self._resume(rank, statuses[0])
            elif kind is OpKind.WAITALL:
                self._resume(rank, statuses)
            elif kind is OpKind.TEST:
                self._resume(rank, (True, statuses[0]))
            else:
                self._resume(rank, (True, statuses))
            return True
        if kind in (OpKind.WAITANY, OpKind.TESTANY):
            if not done_idx:
                return False
            idx = done_idx[0]
            reqs[idx].consumed = True
            self._release_persistent_instance(rank, reqs[idx].req_id)
            op.completed_indices = (idx,)
            op.test_flag = True
            if kind is OpKind.WAITANY:
                self._resume(rank, (idx, reqs[idx].status))
            else:
                self._resume(rank, (True, idx, reqs[idx].status))
            return True
        if kind in (OpKind.WAITSOME, OpKind.TESTSOME):
            if not done_idx:
                return False
            for i in done_idx:
                reqs[i].consumed = True
                self._release_persistent_instance(rank, reqs[i].req_id)
            op.completed_indices = tuple(done_idx)
            op.test_flag = True
            statuses = tuple(reqs[i].status for i in done_idx)
            self._resume(rank, (tuple(done_idx), statuses))
            return True
        raise AssertionError(kind)

    def _recheck_completion(self, rank: int) -> None:
        op = self._completion_waiters.get(rank)
        if op is None:
            return
        if self._try_completion(rank, op):
            del self._completion_waiters[rank]

    # -- collectives ----------------------------------------------------------

    def _issue_collective(self, rank: int, call: Call, op: Operation) -> None:
        comm = call.comm
        if not comm.contains(rank):
            raise MpiUsageError(
                f"rank {rank} calls {op.kind.value} on communicator "
                f"{comm.comm_id} it does not belong to"
            )
        if op.kind is OpKind.FINALIZE:
            # Finalize synchronizes the world but lives outside the
            # per-communicator collective sequence: a rank reaching
            # Finalize while others sit in a data collective is a hang
            # (as on real MPI), not a wave mismatch.
            self._finalize_arrived[rank] = op.ref
            if len(self._finalize_arrived) == len(self._ranks):
                waiters = list(self._finalize_waiters)
                self._finalize_waiters.clear()
                for r in waiters:
                    self._resume(r, None)
                self._resume(rank, None)
            else:
                self._finalize_waiters.append(rank)
                self._park(rank, call, op.ref)
            return
        arg: object = None
        if op.kind is OpKind.COMM_SPLIT:
            arg = call.color
        elif op.kind is OpKind.COMM_CREATE:
            if call.group is None:
                raise MpiUsageError("MPI_Comm_create requires a group")
            arg = call.group
        wave = self.match.arrive_collective(op, comm.size, arg=arg)
        if wave.complete:
            results = self._complete_wave(wave)
            self._resume(rank, results.get(rank))
        elif self._can_leave_wave(op, wave):
            self._resume(rank, None)
        else:
            key = (op.comm_id, wave.index)
            self._wave_waiters.setdefault(key, {})[rank] = op
            self._park(rank, call, op.ref)
            # A new arrival may release earlier-parked relaxed waiters
            # (e.g. non-roots of a bcast once the root arrived).
            self._release_relaxed_waiters(wave)

    def _can_leave_wave(self, op: Operation, wave: CollectiveWave) -> bool:
        """Relaxed-semantics early exit from an incomplete collective."""
        kind = op.kind
        if kind is OpKind.FINALIZE:
            return False
        if self.semantics.collective_synchronizes(kind):
            return False
        if kind in (OpKind.REDUCE, OpKind.GATHER):
            return op.rank != wave.root
        if kind in (OpKind.BCAST, OpKind.SCATTER):
            return op.rank == wave.root or wave.root in wave.arrived
        # Scan/reduce_scatter/comm management conservatively synchronize
        # even under relaxed semantics.
        return False

    def _release_relaxed_waiters(self, wave: CollectiveWave) -> None:
        key = (wave.comm_id, wave.index)
        waiters = self._wave_waiters.get(key)
        if not waiters:
            return
        released = [
            r for r, op in waiters.items() if self._can_leave_wave(op, wave)
        ]
        for r in released:
            del waiters[r]
            self._resume(r, None)
        if not waiters:
            del self._wave_waiters[key]

    def _complete_wave(self, wave: CollectiveWave) -> Dict[int, object]:
        """Record the collective match and wake parked participants.

        Returns the per-rank results so the caller (the arrival that
        completed the wave) can resume itself. Participants that left
        early under relaxed semantics are neither parked nor resumed.
        """
        if wave.kind is not OpKind.FINALIZE:
            # Finalize is the transition system's terminal operation: it
            # synchronizes the execution but takes part in no matching.
            members = frozenset(wave.arrived.values())
            self._coll_matches.append((wave.comm_id, members))
        results: Dict[int, object]
        if wave.kind is OpKind.COMM_DUP:
            newcomm = self.comms.dup(wave.comm_id)
            results = {r: newcomm for r in wave.arrived}
        elif wave.kind is OpKind.COMM_SPLIT:
            colors = {r: wave.args.get(r) for r in wave.arrived}
            results = dict(self.comms.split(wave.comm_id, colors))
        elif wave.kind is OpKind.COMM_CREATE:
            groups = {tuple(g) for g in wave.args.values()}
            if len(groups) != 1:
                raise MpiUsageError(
                    "MPI_Comm_create called with differing groups"
                )
            (group,) = groups
            newcomm = self.comms.create(group) if group else None
            results = {
                r: (newcomm if newcomm and r in newcomm.group else None)
                for r in wave.arrived
            }
        else:
            results = {r: None for r in wave.arrived}
        key = (wave.comm_id, wave.index)
        waiters = self._wave_waiters.pop(key, {})
        for r in waiters:
            self._resume(r, results.get(r))
        return results


def run_programs(
    programs: Sequence[RankProgram],
    *,
    semantics: BlockingSemantics | None = None,
    seed: int = 0,
    scheduler_policy: str = "random",
    wildcard_policy: str = "random",
    max_steps: int = 10_000_000,
    observer: Observer | None = None,
    scheduler: Scheduler | None = None,
    wildcard_pinnings: Dict[OpRef, int] | None = None,
    flight: FlightRecorder | None = None,
    live: LiveMonitor | None = None,
) -> RunResult:
    """Execute ``programs`` on the virtual runtime and return the result."""
    engine = Engine(
        programs,
        semantics=semantics,
        seed=seed,
        scheduler_policy=scheduler_policy,
        wildcard_policy=wildcard_policy,
        max_steps=max_steps,
        observer=observer,
        scheduler=scheduler,
        wildcard_pinnings=wildcard_pinnings,
        flight=flight,
        live=live,
    )
    return engine.run()
