"""Deterministic rank schedulers for the virtual MPI runtime.

The engine is a cooperative scheduler over rank coroutines; the policy
here decides which runnable rank steps next. Seeded-random scheduling
gives adversarial-but-reproducible interleavings — property tests run
many seeds to cover interleavings the way a real cluster run covers
exactly one.
"""
from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.util.errors import ReproError


class Scheduler:
    """Chooses the next runnable rank. Policies: random, round_robin."""

    def __init__(self, policy: str = "random", seed: int = 0) -> None:
        if policy not in ("random", "round_robin"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)
        self._rr_next = 0

    def pick(self, runnable: List[int]) -> int:
        """Pick and remove one rank from ``runnable``."""
        if not runnable:
            raise ValueError("no runnable ranks")
        if self.policy == "random":
            idx = self._rng.randrange(len(runnable))
        else:
            # Round-robin: the smallest rank >= the rotating cursor.
            ge = [i for i, r in enumerate(runnable) if r >= self._rr_next]
            idx = min(ge, key=lambda i: runnable[i]) if ge else min(
                range(len(runnable)), key=lambda i: runnable[i]
            )
            self._rr_next = runnable[idx] + 1
        return runnable.pop(idx)


class ScriptedScheduler(Scheduler):
    """Replays a fixed issue order (a witness schedule).

    ``schedule`` lists, in order, the rank whose program issues the next
    operation. The engine also calls :meth:`pick` once per rank *after*
    its last operation (the resume that raises ``StopIteration``); those
    picks carry no scheduled entry, so any runnable rank whose scheduled
    issues are exhausted is drained first. If the next scheduled rank is
    not runnable the replay has diverged from the schedule's model and
    we fail loudly rather than silently explore a different
    interleaving.
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        self.policy = "scripted"
        self._schedule: List[int] = list(schedule)
        self._pos = 0
        self._remaining: Dict[int, int] = {}
        for rank in self._schedule:
            self._remaining[rank] = self._remaining.get(rank, 0) + 1

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._schedule)

    def pick(self, runnable: List[int]) -> int:
        if not runnable:
            raise ValueError("no runnable ranks")
        # Drain ranks with no scheduled issues left: their next resume
        # terminates the program (or they are past their final op).
        for idx, rank in enumerate(runnable):
            if self._remaining.get(rank, 0) == 0:
                return runnable.pop(idx)
        if self._pos >= len(self._schedule):
            raise ReproError(
                "scripted replay diverged: schedule exhausted but ranks "
                f"{sorted(runnable)} still have operations to issue"
            )
        rank = self._schedule[self._pos]
        if rank not in runnable:
            raise ReproError(
                f"scripted replay diverged: schedule expects rank {rank} "
                f"to issue next, but runnable ranks are {sorted(runnable)}"
            )
        self._pos += 1
        self._remaining[rank] -= 1
        return runnable.pop(runnable.index(rank))
