"""Deterministic rank schedulers for the virtual MPI runtime.

The engine is a cooperative scheduler over rank coroutines; the policy
here decides which runnable rank steps next. Seeded-random scheduling
gives adversarial-but-reproducible interleavings — property tests run
many seeds to cover interleavings the way a real cluster run covers
exactly one.
"""
from __future__ import annotations

import random
from typing import List


class Scheduler:
    """Chooses the next runnable rank. Policies: random, round_robin."""

    def __init__(self, policy: str = "random", seed: int = 0) -> None:
        if policy not in ("random", "round_robin"):
            raise ValueError(f"unknown scheduling policy {policy!r}")
        self.policy = policy
        self._rng = random.Random(seed)
        self._rr_next = 0

    def pick(self, runnable: List[int]) -> int:
        """Pick and remove one rank from ``runnable``."""
        if not runnable:
            raise ValueError("no runnable ranks")
        if self.policy == "random":
            idx = self._rng.randrange(len(runnable))
        else:
            # Round-robin: the smallest rank >= the rotating cursor.
            ge = [i for i, r in enumerate(runnable) if r >= self._rr_next]
            idx = min(ge, key=lambda i: runnable[i]) if ge else min(
                range(len(runnable)), key=lambda i: runnable[i]
            )
            self._rr_next = runnable[idx] + 1
        return runnable.pop(idx)
