"""Message-matching state of the virtual MPI implementation.

This models what a real MPI library does underneath: per-destination
message queues with non-overtaking delivery per (source, communicator),
posted-receive queues, wildcard resolution, probe visibility, and
collective "waves" per communicator.

The matching decisions made here are the ground truth the tool observes
("we use return values of MPI calls to observe the interleaving that
occurs at runtime") — wildcard receive sources chosen here are recorded
into the trace as ``observed_peer``.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, OpKind
from repro.mpi.ops import Operation, OpRef
from repro.util.errors import CollectiveMismatchError


@dataclass
class PendingSend:
    """A message in flight: posted by a send, not yet received."""

    ref: OpRef
    comm_id: int
    src: int
    dst: int
    tag: int
    nbytes: int
    seq: int
    #: The send call/request completes without a matching receive
    #: (Bsend/Rsend/eager standard send).
    buffered: bool
    matched: bool = False
    recv_ref: Optional[OpRef] = None


@dataclass
class PendingRecv:
    """A posted receive that has not yet been paired with a message."""

    ref: OpRef
    comm_id: int
    dst: int
    src: int  # may be ANY_SOURCE
    tag: int  # may be ANY_TAG
    seq: int
    matched: bool = False
    send: Optional[PendingSend] = None


@dataclass
class CollectiveWave:
    """The w-th collective call on one communicator, across its group.

    MPI orders collectives per communicator: the w-th collective call of
    every member belongs to the same wave, and mixing kinds or roots
    within a wave is a usage error that real MUST also reports.
    """

    comm_id: int
    index: int
    kind: Optional[OpKind] = None
    root: Optional[int] = None
    arrived: Dict[int, OpRef] = field(default_factory=dict)
    #: Per-rank auxiliary argument (e.g. split colors).
    args: Dict[int, object] = field(default_factory=dict)
    complete: bool = False

    def envelope_check(self, op: Operation) -> None:
        if self.kind is None:
            self.kind = op.kind
            self.root = op.root
            return
        if op.kind is not self.kind:
            raise CollectiveMismatchError(
                f"collective wave {self.index} on comm {self.comm_id}: "
                f"{op.describe()} arrives where {self.kind.value} expected"
            )
        if op.root != self.root:
            raise CollectiveMismatchError(
                f"collective wave {self.index} on comm {self.comm_id}: "
                f"root mismatch ({op.root} vs {self.root})"
            )


def _envelope_admits(recv_src: int, recv_tag: int, send: PendingSend) -> bool:
    if recv_src != ANY_SOURCE and recv_src != send.src:
        return False
    return recv_tag == ANY_TAG or recv_tag == send.tag


class MatchState:
    """Queues and waves of the virtual MPI implementation."""

    def __init__(
        self,
        seed: int = 0,
        wildcard_policy: str = "random",
        pinnings: Optional[Dict[OpRef, int]] = None,
    ) -> None:
        if wildcard_policy not in ("random", "earliest"):
            raise ValueError(f"unknown wildcard policy {wildcard_policy!r}")
        self._rng = random.Random(seed)
        self._policy = wildcard_policy
        #: Witness replay: wildcard receive op ref -> forced source rank.
        self._pinnings: Dict[OpRef, int] = dict(pinnings or {})
        self._seq = 0
        # Unmatched messages / posted receives keyed by (comm_id, dst).
        self._sends: Dict[Tuple[int, int], List[PendingSend]] = {}
        self._recvs: Dict[Tuple[int, int], List[PendingRecv]] = {}
        # Collective waves per communicator, plus each rank's next wave
        # index per communicator.
        self._waves: Dict[int, List[CollectiveWave]] = {}
        self._next_wave: Dict[Tuple[int, int], int] = {}

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- point-to-point ----------------------------------------------------

    def post_send(self, op: Operation, buffered: bool) -> Tuple[PendingSend, Optional[PendingRecv]]:
        """Post a message; returns (send, matched recv or None).

        A newly arrived message must match the earliest compatible posted
        receive — eager matching on both events keeps the queues free of
        latent compatible pairs, so scanning in post order is correct.
        """
        send = PendingSend(
            ref=op.ref,
            comm_id=op.comm_id,
            src=op.rank,
            dst=op.peer,  # type: ignore[arg-type]
            tag=op.tag,
            nbytes=op.nbytes,
            seq=self._next_seq(),
            buffered=buffered,
        )
        key = (send.comm_id, send.dst)
        for recv in self._recvs.get(key, ()):
            if recv.matched or not _envelope_admits(recv.src, recv.tag, send):
                continue
            pinned = self._pinnings.get(recv.ref)
            if pinned is not None and pinned != send.src:
                continue
            self._pair(send, recv)
            self._gc(key)
            return send, recv
        self._sends.setdefault(key, []).append(send)
        return send, None

    def post_recv(self, op: Operation) -> Tuple[PendingRecv, Optional[PendingSend]]:
        """Post a receive; returns (recv, matched send or None).

        Candidate messages are the per-sender earliest compatible
        unmatched messages (MPI's non-overtaking rule); among senders the
        wildcard choice follows the configured policy.
        """
        recv = PendingRecv(
            ref=op.ref,
            comm_id=op.comm_id,
            dst=op.rank,
            src=op.peer,  # type: ignore[arg-type]
            tag=op.tag,
            seq=self._next_seq(),
        )
        # A pinned wildcard receive only considers its scripted source;
        # directed receives are unaffected (the pin restates the source).
        pinned = self._pinnings.get(recv.ref)
        src_filter = recv.src if pinned is None else pinned
        send = self._select_candidate(recv.comm_id, recv.dst, src_filter, recv.tag)
        if send is not None:
            self._pair(send, recv)
            self._gc((recv.comm_id, recv.dst))
            return recv, send
        self._recvs.setdefault((recv.comm_id, recv.dst), []).append(recv)
        return recv, send

    def probe_candidate(
        self, comm_id: int, dst: int, src: int, tag: int
    ) -> Optional[PendingSend]:
        """The message a probe with this envelope observes (not consumed).

        Probes are deterministic in MPI only per-sender; for wildcard
        probes we return the *earliest* candidate so that a following
        wildcard receive with the same envelope observes the same
        message (the common MPI behaviour).
        """
        candidates = self._candidates(comm_id, dst, src, tag)
        if not candidates:
            return None
        return min(candidates, key=lambda s: s.seq)

    def _candidates(
        self, comm_id: int, dst: int, src: int, tag: int
    ) -> List[PendingSend]:
        """Per-sender earliest compatible unmatched message.

        MPI's non-overtaking rule forces a receive to take the oldest
        matching message *per sender*; a wildcard receive may then pick
        among senders freely.
        """
        per_sender: Dict[int, PendingSend] = {}
        for send in self._sends.get((comm_id, dst), ()):
            if send.matched or not _envelope_admits(src, tag, send):
                continue
            best = per_sender.get(send.src)
            if best is None or send.seq < best.seq:
                per_sender[send.src] = send
        return list(per_sender.values())

    def _select_candidate(
        self, comm_id: int, dst: int, src: int, tag: int
    ) -> Optional[PendingSend]:
        candidates = self._candidates(comm_id, dst, src, tag)
        if not candidates:
            return None
        if len(candidates) == 1 or self._policy == "earliest":
            return min(candidates, key=lambda s: s.seq)
        return self._rng.choice(sorted(candidates, key=lambda s: s.seq))

    @staticmethod
    def _pair(send: PendingSend, recv: PendingRecv) -> None:
        send.matched = True
        send.recv_ref = recv.ref
        recv.matched = True
        recv.send = send

    def _gc(self, key: Tuple[int, int]) -> None:
        """Drop matched entries to keep queues short on long runs."""
        sends = self._sends.get(key)
        if sends and len(sends) > 64:
            self._sends[key] = [s for s in sends if not s.matched]
        recvs = self._recvs.get(key)
        if recvs and len(recvs) > 64:
            self._recvs[key] = [r for r in recvs if not r.matched]

    def unmatched_send_count(self) -> int:
        return sum(
            1 for q in self._sends.values() for s in q if not s.matched
        )

    # -- collectives ---------------------------------------------------------

    def arrive_collective(
        self, op: Operation, group_size: int, arg: object = None
    ) -> CollectiveWave:
        """Register a rank's arrival at its next wave on ``op.comm_id``."""
        key = (op.comm_id, op.rank)
        index = self._next_wave.get(key, 0)
        self._next_wave[key] = index + 1
        waves = self._waves.setdefault(op.comm_id, [])
        while len(waves) <= index:
            waves.append(CollectiveWave(comm_id=op.comm_id, index=len(waves)))
        wave = waves[index]
        wave.envelope_check(op)
        if op.rank in wave.arrived:
            raise CollectiveMismatchError(
                f"rank {op.rank} arrived twice at wave {index} on comm "
                f"{op.comm_id}"
            )
        wave.arrived[op.rank] = op.ref
        wave.args[op.rank] = arg
        if len(wave.arrived) == group_size:
            wave.complete = True
        return wave

    def incomplete_waves(self) -> List[CollectiveWave]:
        return [
            w for waves in self._waves.values() for w in waves if not w.complete
        ]
