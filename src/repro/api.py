"""The stable public facade: :class:`AnalysisConfig` + :class:`Session`.

One object carries the knobs that used to be scattered across
``run_programs`` / ``analyze_trace`` / ``detect_deadlocks_distributed``
keyword lists, and one session object runs the whole pipeline with
them::

    from repro import AnalysisConfig, Session

    config = AnalysisConfig(backend="sharded", shards=4, fan_in=8)
    with Session(config) as session:
        run = session.record(programs)        # virtual-runtime execution
        outcome = session.analyze(run)        # distributed detection
        if outcome.has_deadlock:
            print(outcome.detection.blame)

The session owns the observer (one metrics registry + tracer across
record, analyze, and verify calls) and exports the configured
observability sinks once, on :meth:`Session.export` (or on leaving the
``with`` block). Sessions are reusable: starting a new record/analyze
cycle resets the per-run observability state (fresh tracer, metrics,
and flight-recorder rings) so back-to-back jobs — the ``repro serve``
worker pool runs many jobs through one session per worker — never see
each other's events. :meth:`Session.close` releases backend resources
on teardown.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple, Union

from repro.backend import AnalysisBackend, DEFAULT_SHARDS, make_backend
from repro.core.detector import DistributedOutcome
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.trace import MatchedTrace
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightRecorder
from repro.obs.health import HealthVerdict
from repro.obs.live import LiveMonitor
from repro.obs.observer import Observer, make_observer
from repro.runtime import RunResult, run_programs as _run_programs


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything a :class:`Session` needs, in one value object.

    Execution: ``semantics`` (None = the runtime's relaxed default),
    ``seed``, ``max_steps``. Analysis: ``fan_in``, ``window_limit``,
    ``backend`` (``"inline"`` or ``"sharded"``) with ``shards``,
    ``detect_at`` (mid-run detection timeouts in simulated seconds —
    inline backend only) and ``detect_at_end``. Observability:
    ``observe`` turns on metrics + tracing, ``trace_out`` /
    ``jsonl_out`` / ``profile_out`` name export sinks (any implies
    ``observe``), ``trace_limit`` caps recorded events (None = tracer
    default; sharded workers inherit the cap), and ``flight`` keeps
    the always-on flight recorder. Live telemetry: ``live`` attaches a
    :class:`~repro.obs.live.LiveMonitor` (implies ``observe``) with
    snapshot cadences ``live_every_steps`` (engine) and
    ``live_every_rounds`` (sharded BSP rounds); ``live_out`` streams
    the ``repro-live/1`` JSONL feed to a file (implies ``live``).
    """

    semantics: Optional[BlockingSemantics] = None
    seed: int = 0
    max_steps: int = 10_000_000
    fan_in: int = 4
    window_limit: int = 1_000_000
    generate_outputs: bool = True
    backend: str = "inline"
    shards: int = DEFAULT_SHARDS
    detect_at: Tuple[float, ...] = ()
    detect_at_end: bool = True
    observe: bool = False
    trace_out: Optional[str] = None
    jsonl_out: Optional[str] = None
    profile_out: Optional[str] = None
    trace_limit: Optional[int] = None
    flight: bool = True
    live: bool = False
    live_every_steps: int = 2048
    live_every_rounds: int = 8
    live_out: Optional[str] = None

    def replace(self, **changes: Any) -> "AnalysisConfig":
        return dataclasses.replace(self, **changes)

    @property
    def live_wanted(self) -> bool:
        return bool(self.live or self.live_out)

    @property
    def observability_wanted(self) -> bool:
        return bool(
            self.observe or self.trace_out or self.jsonl_out
            or self.profile_out or self.live_wanted
        )

    def build_backend(self) -> AnalysisBackend:
        return make_backend(self.backend, shards=self.shards)


class Session:
    """A configured analysis pipeline: record, analyze, verify, blame.

    Construct with an :class:`AnalysisConfig`, keyword overrides, or
    both (overrides win)::

        Session(AnalysisConfig(fan_in=8), backend="sharded")

    All methods share the session's observer and flight recorder, so a
    record + analyze pair lands in one unified trace artifact.
    """

    def __init__(
        self, config: Optional[AnalysisConfig] = None, **overrides: Any
    ) -> None:
        # on_snapshot is a callable, not config state: pulled out before
        # the (frozen, comparable) config absorbs the overrides.
        on_snapshot = overrides.pop("on_snapshot", None)
        config = config or AnalysisConfig()
        if overrides:
            config = config.replace(**overrides)
        self.config = config
        self.backend = config.build_backend()
        self._on_snapshot = on_snapshot
        self.observer: Observer
        self.flight: FlightRecorder
        self.live: Optional[LiveMonitor]
        self._build_observability()
        self.last_run: Optional[RunResult] = None
        self.last_outcome: Optional[DistributedOutcome] = None
        self.last_verdict: Optional[HealthVerdict] = None
        self._exported = False

    def _build_observability(self) -> None:
        """(Re)create the per-run observer, flight recorder, and live
        monitor from the session config."""
        config = self.config
        if config.observability_wanted and config.trace_limit is not None:
            from repro.obs.tracer import Tracer

            self.observer = Observer(tracer=Tracer(limit=config.trace_limit))
        else:
            self.observer = make_observer(config.observability_wanted)
        self.flight = (
            FlightRecorder() if config.flight else NULL_FLIGHT_RECORDER
        )
        self.live = (
            LiveMonitor(
                observer=self.observer,
                every_steps=config.live_every_steps,
                every_rounds=config.live_every_rounds,
                feed_path=config.live_out,
                on_snapshot=self._on_snapshot,
            )
            if config.live_wanted
            else None
        )

    def reset(self) -> "Session":
        """Drop per-run state so the session can take a fresh job.

        A fresh tracer, metrics registry, and flight-recorder rings
        replace the previous run's (pin counters return to zero);
        ``last_run``/``last_outcome``/``last_verdict`` clear and
        :meth:`export` re-arms. A configured ``live_out`` feed is
        closed and restarts on the next run. Called automatically when
        :meth:`record` (or :meth:`analyze` on an unrelated trace)
        starts a new cycle; the ``repro serve`` worker pool calls it
        between jobs.
        """
        if self.live is not None:
            self.live.close()
        self._build_observability()
        self.last_run = None
        self.last_outcome = None
        self.last_verdict = None
        self._exported = False
        return self

    def _starts_new_cycle(
        self, trace: Union[MatchedTrace, RunResult, None]
    ) -> bool:
        """Does analyzing ``trace`` begin a new job on a used session?

        Re-analysis of the session's own current run (``trace is None``,
        the last :class:`RunResult`, or its matched trace) continues the
        current cycle and keeps its observability state.
        """
        if self.last_outcome is None or trace is None:
            return False
        if trace is self.last_run:
            return False
        return self.last_run is None or trace is not self.last_run.matched

    # -- pipeline stages -------------------------------------------------

    def record(
        self, programs: Sequence[Any], *, seed: Optional[int] = None
    ) -> RunResult:
        """Execute rank programs on the virtual runtime.

        On a session that already holds a run, this starts a new cycle:
        :meth:`reset` runs first so the previous job's events never
        bleed into this one's artifacts.
        """
        if self.last_run is not None or self.last_outcome is not None:
            self.reset()
        result = _run_programs(
            programs,
            semantics=self.config.semantics,
            seed=self.config.seed if seed is None else seed,
            max_steps=self.config.max_steps,
            observer=self.observer,
            flight=self.flight,
            live=self.live,
        )
        self.last_run = result
        return result

    def analyze(
        self, trace: Union[MatchedTrace, RunResult, None] = None
    ) -> DistributedOutcome:
        """Run distributed deadlock detection on a matched trace.

        Accepts a :class:`MatchedTrace`, a :class:`RunResult` (its
        matched trace is used), or nothing (the most recent
        :meth:`record` result). Handing a trace unrelated to the
        session's current run to a session that already produced an
        outcome starts a new cycle (see :meth:`reset`); re-analyzing
        the current run keeps its observability state.
        """
        if self._starts_new_cycle(trace):
            self.reset()
        if trace is None:
            if self.last_run is None:
                raise ValueError("nothing to analyze: record a run first")
            trace = self.last_run
        matched = trace.matched if isinstance(trace, RunResult) else trace
        outcome = self.backend.run(
            matched,
            fan_in=self.config.fan_in,
            seed=self.config.seed,
            window_limit=self.config.window_limit,
            generate_outputs=self.config.generate_outputs,
            observer=self.observer,
            flight=self.flight,
            detect_at=self.config.detect_at,
            detect_at_end=self.config.detect_at_end,
            live=self.live,
        )
        self.last_outcome = outcome
        return outcome

    def run(self, programs: Sequence[Any]) -> DistributedOutcome:
        """Record + analyze in one call."""
        return self.analyze(self.record(programs))

    def verify(
        self,
        path: str,
        *,
        ranks: int = 4,
        max_states: int = 200_000,
        max_depth: int = 1_000_000,
        por: bool = True,
        replay: bool = False,
    ):
        """Bounded wildcard-aware verification of a rank-program file
        (see :func:`repro.analysis.verify_path`); exploration counters
        land in the session's metrics."""
        from repro.analysis import verify_path

        return verify_path(
            path,
            ranks=ranks,
            max_states=max_states,
            max_depth=max_depth,
            por=por,
            replay=replay,
            metrics=self.observer.metrics if self.observer.enabled else None,
        )

    def blame(self, run: str, *, ranks: int = 4):
        """Wait-state blame analysis of a recorded artifact or a
        rank-program file (live mode, using the session's fan-in and
        seed). Returns ``(report, outcome)``; ``outcome`` is None in
        artifact mode."""
        from repro.obs.blame import blame_artifact, blame_live

        if run.endswith(".py"):
            report, outcome = blame_live(
                run,
                ranks=ranks,
                seed=self.config.seed,
                fan_in=self.config.fan_in,
            )
            self.last_outcome = outcome
            return report, outcome
        return blame_artifact(run), None

    # -- observability export --------------------------------------------

    def metrics_snapshot(self) -> dict:
        return self.observer.metrics.snapshot()

    def finalize_live(self) -> Optional[HealthVerdict]:
        """Close the live feed with the terminal health verdict.

        ``DEADLOCK-CONFIRMED`` can only come out of here — it requires
        the detector outcome's wait-for graph. Idempotent; returns None
        when the session has no live monitor.
        """
        if self.live is None:
            return None
        verdict = self.live.finalize(
            run=self.last_run, outcome=self.last_outcome
        )
        self.last_verdict = verdict
        return verdict

    def export(self) -> None:
        """Write the configured observability sinks (idempotent)."""
        if self._exported or not self.observer.enabled:
            return
        self._exported = True
        self.finalize_live()
        profile = getattr(self.backend, "last_profile", None)
        if self.config.trace_out:
            from repro.obs.exporters import write_chrome_trace

            outcome = self.last_outcome
            metadata = {
                "deadlocked": bool(outcome and outcome.has_deadlock),
                "ranks": (
                    outcome.topology.num_ranks if outcome else None
                ),
                "metrics": self.observer.metrics.snapshot(),
            }
            if profile is not None:
                metadata["profile"] = profile
            write_chrome_trace(
                self.config.trace_out, self.observer.tracer, metadata=metadata
            )
        if self.config.jsonl_out:
            from repro.obs.exporters import write_jsonl

            write_jsonl(self.config.jsonl_out, self.observer.tracer)
        if self.config.profile_out:
            import json

            with open(self.config.profile_out, "w", encoding="utf-8") as fh:
                json.dump(profile, fh, indent=2, sort_keys=True)
                fh.write("\n")

    def close(self) -> None:
        """Export the configured sinks and release backend resources.

        Idempotent; after closing, the session can still be reused
        (:meth:`record` rebuilds its per-run state) because both
        built-in backends start their workers per run.
        """
        self.export()
        if self.live is not None:
            self.live.close()
        self.backend.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.backend.close()
