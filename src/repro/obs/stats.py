"""Summary tables for ``repro stats`` and ``--obs`` runs.

Renders a metrics snapshot (:meth:`MetricsRegistry.snapshot`) into the
two tables the paper's evaluation revolves around:

* per-message-type tool traffic — sends, bytes, and deliveries for
  every protocol message (``PassSend``, ``RecvActive``,
  ``RecvActiveAck``, ``CollectiveReady``, ``CollectiveAck``, the
  Section 5 detection messages, …); and
* the five-phase detection-time breakdown of Figures 10(b)/11(b)
  (synchronization, WFG gather, graph build, deadlock check, output
  generation) with per-phase shares — reproduced from the actual run's
  registry, not from the cost model.
"""
from __future__ import annotations

from typing import Dict, List, Mapping

from repro.obs.timeline import UnifiedTimeline
from repro.perf.timers import ALL_PHASES

#: Counter prefixes written by the Network instrumentation.
SENT_PREFIX = "tbon.sent."
SENT_BYTES_PREFIX = "tbon.sent_bytes."
RECV_PREFIX = "tbon.recv."
#: Histogram prefix for the detection phases.
PHASE_PREFIX = "detection.phase."


def _with_prefix(counters: Mapping[str, int], prefix: str) -> Dict[str, int]:
    return {
        name[len(prefix):]: value
        for name, value in counters.items()
        if name.startswith(prefix)
    }


def render_message_table(snapshot: Mapping[str, object]) -> List[str]:
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    sent = _with_prefix(counters, SENT_PREFIX)
    sent_bytes = _with_prefix(counters, SENT_BYTES_PREFIX)
    received = _with_prefix(counters, RECV_PREFIX)
    types = sorted(set(sent) | set(received))
    lines = [
        f"{'message type':<24} {'sent':>10} {'bytes':>12} {'received':>10}"
    ]
    if not types:
        lines.append("  (no tool messages recorded)")
        return lines
    total_sent = total_bytes = total_recv = 0
    for mtype in types:
        s = sent.get(mtype, 0)
        b = sent_bytes.get(mtype, 0)
        r = received.get(mtype, 0)
        total_sent += s
        total_bytes += b
        total_recv += r
        lines.append(f"{mtype:<24} {s:>10,} {b:>12,} {r:>10,}")
    lines.append(
        f"{'total':<24} {total_sent:>10,} {total_bytes:>12,} "
        f"{total_recv:>10,}"
    )
    return lines


def render_phase_table(snapshot: Mapping[str, object]) -> List[str]:
    histograms: Mapping[str, Mapping[str, float]] = snapshot.get(
        "histograms", {}
    )  # type: ignore[assignment]
    sums: Dict[str, float] = {}
    for name, summary in histograms.items():
        if name.startswith(PHASE_PREFIX):
            sums[name[len(PHASE_PREFIX):]] = float(summary.get("sum", 0.0))
    # Canonical order first, then any extra phases a future layer adds.
    phases = list(ALL_PHASES) + sorted(p for p in sums if p not in ALL_PHASES)
    total = sum(sums.values())
    lines = [f"{'detection phase':<24} {'total ms':>12} {'share':>8}"]
    for phase in phases:
        seconds = sums.get(phase, 0.0)
        share = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"{phase:<24} {seconds * 1e3:>12.3f} {share:>7.1f}%")
    lines.append(f"{'total':<24} {total * 1e3:>12.3f} {100.0:>7.1f}%")
    return lines


def render_wait_table(snapshot: Mapping[str, object]) -> List[str]:
    """Wait-state dwell-time histograms (per rank), if any."""
    histograms: Mapping[str, Mapping[str, float]] = snapshot.get(
        "histograms", {}
    )  # type: ignore[assignment]
    prefix = "waitstate.dwell.rank"
    rows = []
    for name in sorted(histograms):
        if not name.startswith(prefix):
            continue
        rank = name[len(prefix):]
        s = histograms[name]
        if not s.get("count"):
            continue
        rows.append(
            f"{'rank ' + rank:<10} {int(s['count']):>8} "
            f"{s['mean'] * 1e6:>12.2f} {s['p50'] * 1e6:>12.2f} "
            f"{s['p99'] * 1e6:>12.2f} {s['max'] * 1e6:>12.2f}"
        )
    if not rows:
        return []
    header = (
        f"{'wait dwell':<10} {'blocks':>8} {'mean us':>12} {'p50 us':>12} "
        f"{'p99 us':>12} {'max us':>12}"
    )
    return [header] + rows


#: Counter prefix written by the match-set explorer (``repro verify``).
VERIFY_PREFIX = "verify."

#: Row order of the exploration table (raw counter name, row label).
_VERIFY_ROWS = (
    ("runs", "explorations"),
    ("states_explored", "states explored"),
    ("states_pruned", "states pruned (POR)"),
    ("memo_hits", "memoization hits"),
    ("transitions", "transitions"),
    ("deadlocks_found", "deadlocks found"),
    ("bound_exceeded", "bounds exceeded"),
)


def render_explore_table(snapshot: Mapping[str, object]) -> List[str]:
    """Match-set exploration effort (``verify.*`` counters), if any."""
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    values = _with_prefix(counters, VERIFY_PREFIX)
    if not values:
        return []
    # Routing/classification counters have their own table.
    values = {
        k: v
        for k, v in values.items()
        if not k.startswith(("fastpath.", "fragment."))
    }
    if not values:
        return []
    lines = [f"{'exploration':<24} {'count':>12}"]
    known = set()
    for key, label in _VERIFY_ROWS:
        known.add(key)
        if key in values:
            lines.append(f"{label:<24} {values[key]:>12,}")
    for key in sorted(values):
        if key not in known:
            lines.append(f"{key:<24} {values[key]:>12,}")
    return lines


#: Counter prefixes of the decidable-fragment fast path.
FASTPATH_PREFIX = "verify.fastpath."
FRAGMENT_PREFIX = "verify.fragment."


def render_classification_table(
    snapshot: Mapping[str, object]
) -> List[str]:
    """Fragment counts and fast-path hit rate, when a run carried
    classifier artifacts (``verify.fastpath.*`` / ``verify.fragment.*``
    counters)."""
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    fastpath = _with_prefix(counters, FASTPATH_PREFIX)
    fragments = _with_prefix(counters, FRAGMENT_PREFIX)
    if not fastpath and not fragments:
        return []
    lines = [f"{'fragment':<28} {'programs':>10}"]
    for label in sorted(fragments):
        lines.append(f"{label:<28} {fragments[label]:>10,}")
    hits = fastpath.get("hits", 0)
    misses = fastpath.get("misses", 0)
    routed = hits + misses
    if routed:
        rate = hits / routed * 100.0
        lines.append(
            f"{'fast-path hit rate':<28} "
            f"{hits}/{routed} ({rate:.1f}%)".rjust(0)
        )
    if "linear_ops" in fastpath:
        lines.append(
            f"{'ops linearly matched':<28} {fastpath['linear_ops']:>10,}"
        )
    if "deadlocks_found" in fastpath:
        lines.append(
            f"{'fast-path deadlocks':<28} "
            f"{fastpath['deadlocks_found']:>10,}"
        )
    return lines


#: Counter prefix written by the parameterized prover (``repro prove``).
PROVE_PREFIX = "prove."

#: Row order of the proof table (raw counter name, row label).
_PROVE_ROWS = (
    ("runs", "programs proved"),
    ("proved", "PROVED-ALL-P"),
    ("refuted", "REFUTED (min p found)"),
    ("unknown", "UNKNOWN"),
    ("undecidable", "UNDECIDABLE fragment"),
    ("sizes_checked", "sizes checked"),
    ("linear_ops", "ops linearly matched"),
    ("channels.always", "channels always-matched"),
    ("channels.never", "channels never-matched"),
    ("channels.p_dependent", "channels p-dependent"),
)


def render_prove_table(snapshot: Mapping[str, object]) -> List[str]:
    """Parameterized-proof effort (``prove.*`` counters), if any."""
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    values = _with_prefix(counters, PROVE_PREFIX)
    if not values:
        return []
    lines = [f"{'parameterized proof':<28} {'count':>12}"]
    known = set()
    for key, label in _PROVE_ROWS:
        known.add(key)
        if key in values:
            lines.append(f"{label:<28} {values[key]:>12,}")
    for key in sorted(values):
        if key not in known:
            lines.append(f"{key:<28} {values[key]:>12,}")
    return lines


def render_timeline_table(timeline: UnifiedTimeline) -> List[str]:
    """Per-clock-domain rows of the unified timeline."""
    rows = timeline.summary()
    if not rows:
        return []
    lines = [
        f"{'clock domain':<16} {'events':>8} {'span ms':>12} "
        f"{'offset ms':>12} {'pids':<12}"
    ]
    for row in rows:
        pids = ",".join(str(p) for p in row["pids"])
        lines.append(
            f"{row['clock']:<16} {row['events']:>8,} "
            f"{row['span_us'] / 1e3:>12.3f} {row['offset_us'] / 1e3:>12.3f} "
            f"{pids:<12}"
        )
    lines.append(
        f"{'unified (' + timeline.mode + ')':<16} "
        f"{len(timeline.events):>8,} {timeline.total_span_us / 1e3:>12.3f}"
    )
    return lines


def render_shard_table(snapshot: Mapping[str, object]) -> List[str]:
    """Per-shard rows of a sharded run (busy time, streamed events,
    per-shard drop counts) plus the round-skew summary, if any."""
    gauges: Mapping[str, Mapping[str, float]] = snapshot.get(
        "gauges", {}
    )  # type: ignore[assignment]
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    histograms: Mapping[str, Mapping[str, float]] = snapshot.get(
        "histograms", {}
    )  # type: ignore[assignment]
    shard_ids = sorted(
        int(name[len("backend.shard"):-len(".busy_seconds")])
        for name in gauges
        if name.startswith("backend.shard")
        and name.endswith(".busy_seconds")
    )
    if not shard_ids:
        return []
    lines = [
        f"{'shard':<7} {'busy ms':>10} {'queue peak':>11} {'events':>9} "
        f"{'dropped':>9}"
    ]
    for sid in shard_ids:
        busy = gauges.get(f"backend.shard{sid}.busy_seconds", {}).get(
            "value", 0.0
        )
        depth = gauges.get(f"backend.shard{sid}.queue_depth", {}).get(
            "value", 0.0
        )
        events = counters.get(f"obs.shard{sid}.events", 0)
        dropped = counters.get(f"obs.tracer.dropped.shard{sid}", 0)
        lines.append(
            f"{'s%d' % sid:<7} {busy * 1e3:>10.3f} {int(depth):>11,} "
            f"{events:>9,} {dropped:>9,}"
        )
    skew = histograms.get("obs.shard.skew", {})
    if skew.get("count"):
        lines.append(
            "round skew (max/mean busy): mean %.2f  p99 %.2f  max %.2f "
            "over %d round(s)" % (
                skew.get("mean", 0.0), skew.get("p99", 0.0),
                skew.get("max", 0.0), int(skew["count"]),
            )
        )
    return lines


def render_tracer_health(snapshot: Mapping[str, object]) -> List[str]:
    """Warning lines about dropped trace events, if any."""
    counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
    dropped = counters.get("obs.tracer.dropped", 0)
    if not dropped:
        return []
    return [
        f"WARNING: tracer event limit hit -- {dropped:,} event(s) dropped; "
        "the artifact ends with a 'truncated' marker and analyses of it "
        "are incomplete"
    ]


def render_summary(snapshot: Mapping[str, object]) -> List[str]:
    """The full ``repro stats`` body: traffic, phases, wait states,
    and (when present) match-set exploration counters."""
    lines = ["-- tool message traffic (per message type) --"]
    lines += render_message_table(snapshot)
    lines.append("")
    lines.append("-- detection-time breakdown (Fig. 10(b)/11(b) phases) --")
    lines += render_phase_table(snapshot)
    waits = render_wait_table(snapshot)
    if waits:
        lines.append("")
        lines.append("-- wait-state dwell times --")
        lines += waits
    explore = render_explore_table(snapshot)
    if explore:
        lines.append("")
        lines.append("-- match-set exploration (repro verify) --")
        lines += explore
    classified = render_classification_table(snapshot)
    if classified:
        lines.append("")
        lines.append("-- decidable-fragment classification --")
        lines += classified
    proved = render_prove_table(snapshot)
    if proved:
        lines.append("")
        lines.append("-- parameterized proof (repro prove) --")
        lines += proved
    shardtab = render_shard_table(snapshot)
    if shardtab:
        lines.append("")
        lines.append("-- shard workers (sharded backend) --")
        lines += shardtab
    health = render_tracer_health(snapshot)
    if health:
        lines.append("")
        lines += health
    return lines
