"""Structured trace records and the clock-domain conventions.

Events follow the Chrome ``trace_event`` vocabulary (phase codes
``"X"`` complete, ``"i"`` instant, ``"C"`` counter) so the exporter is
a direct serialization. Timestamps are microseconds; process ids
separate the reproduction's clock domains:

* :data:`PID_ENGINE` — the virtual MPI runtime, wall-clock time
  (``time.perf_counter`` relative to the tracer epoch); ``tid`` is the
  application rank.
* :data:`PID_TBON` — the tool network, *simulated* seconds scaled to
  microseconds; ``tid`` is the TBON node id.
* :data:`PID_WAIT` — per-rank wait states as seen by the first-layer
  trackers, on the *simulated* clock; ``tid`` is the application rank,
  so Perfetto shows one row of blocked intervals per rank.
* :data:`PID_COORD` — the sharded backend's coordinator (BSP round
  spans), on the same wall clock as the engine.
* :data:`PID_SHARD_BASE` ``+ shard_id`` — one pid per shard worker.
  Workers stamp events on their own per-process clock; the merge step
  (:mod:`repro.obs.dist`) rebases them onto the coordinator's wall
  axis, so by the time these events sit in an artifact they are
  wall-clock comparable.

Keeping the domains on separate pids means Perfetto renders them as
separate processes instead of interleaving incomparable clocks; the
pid → clock mapping (:func:`clock_of`) is what
:mod:`repro.obs.timeline` uses to align the domains afterwards.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

#: Virtual-runtime events (wall clock, tid = application rank).
PID_ENGINE = 1
#: TBON events (simulated clock, tid = tool node id).
PID_TBON = 2
#: Wait-state events (simulated clock, tid = application rank).
PID_WAIT = 3
#: Sharded-backend coordinator events (wall clock, tid = 0).
PID_COORD = 4
#: First shard-worker pid; shard ``s`` records under ``BASE + s``.
PID_SHARD_BASE = 10

#: Clock-domain labels, keyed by :data:`CLOCK_OF`.
CLOCK_WALL = "wall"
CLOCK_SIMULATED = "simulated"

#: Which clock each pid stamps its timestamps with. Pids sharing a
#: clock (TBON nodes and per-rank wait states both run on the simulated
#: clock) are directly comparable and must shift together when aligned.
CLOCK_OF = {
    PID_ENGINE: CLOCK_WALL,
    PID_TBON: CLOCK_SIMULATED,
    PID_WAIT: CLOCK_SIMULATED,
    PID_COORD: CLOCK_WALL,
}

_PID_NAMES = {
    PID_ENGINE: "engine (wall clock)",
    PID_TBON: "tbon (simulated clock)",
    PID_WAIT: "wait states (simulated clock)",
    PID_COORD: "shard coordinator (wall clock)",
}


def pid_of_shard(shard_id: int) -> int:
    """The pid a shard worker's events record under."""
    return PID_SHARD_BASE + shard_id


def shard_of_pid(pid: int) -> Optional[int]:
    """Inverse of :func:`pid_of_shard`; None for non-shard pids."""
    return pid - PID_SHARD_BASE if pid >= PID_SHARD_BASE else None


def clock_of(pid: int) -> str:
    """The clock domain a pid's timestamps live on.

    Shard-worker events are merged through the clock reconciliation of
    :mod:`repro.obs.dist`, which rebases them onto the coordinator's
    wall axis — so in any artifact they are wall-clock events.
    """
    if pid >= PID_SHARD_BASE:
        return CLOCK_WALL
    return CLOCK_OF.get(pid, "pid%d" % pid)


@dataclass
class TraceEvent:
    """One structured event (one JSON object in every exporter)."""

    name: str
    cat: str
    ph: str
    ts: float
    pid: int = 0
    tid: int = 0
    dur: Optional[float] = None
    args: Optional[Dict[str, Any]] = field(default=None)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            cat=data.get("cat", ""),
            ph=data.get("ph", "i"),
            ts=data["ts"],
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            dur=data.get("dur"),
            args=data.get("args"),
        )


def process_name_metadata(
    extra: Optional[Mapping[int, str]] = None
) -> list:
    """Chrome ``M``-phase records naming the trace's processes.

    ``extra`` adds or overrides names — the exporter uses it to label
    the shard-worker pids a merged sharded run recorded under.
    """
    names: Dict[int, str] = dict(_PID_NAMES)
    if extra:
        names.update(extra)
    return [
        TraceEvent(
            name="process_name",
            cat="__metadata",
            ph="M",
            ts=0.0,
            pid=pid,
            args={"name": label},
        )
        for pid, label in sorted(names.items())
    ]
