"""Structured trace records and the clock-domain conventions.

Events follow the Chrome ``trace_event`` vocabulary (phase codes
``"X"`` complete, ``"i"`` instant, ``"C"`` counter) so the exporter is
a direct serialization. Timestamps are microseconds; two process ids
separate the reproduction's two clock domains:

* :data:`PID_ENGINE` — the virtual MPI runtime, wall-clock time
  (``time.perf_counter`` relative to the tracer epoch); ``tid`` is the
  application rank.
* :data:`PID_TBON` — the tool network, *simulated* seconds scaled to
  microseconds; ``tid`` is the TBON node id.
* :data:`PID_WAIT` — per-rank wait states as seen by the first-layer
  trackers, on the *simulated* clock; ``tid`` is the application rank,
  so Perfetto shows one row of blocked intervals per rank.

Keeping the domains on separate pids means Perfetto renders them as
separate processes instead of interleaving incomparable clocks; the
pid → clock mapping (:data:`CLOCK_WALL` / :data:`CLOCK_SIMULATED`) is
what :mod:`repro.obs.timeline` uses to align the domains afterwards.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Virtual-runtime events (wall clock, tid = application rank).
PID_ENGINE = 1
#: TBON events (simulated clock, tid = tool node id).
PID_TBON = 2
#: Wait-state events (simulated clock, tid = application rank).
PID_WAIT = 3

#: Clock-domain labels, keyed by :data:`CLOCK_OF`.
CLOCK_WALL = "wall"
CLOCK_SIMULATED = "simulated"

#: Which clock each pid stamps its timestamps with. Pids sharing a
#: clock (TBON nodes and per-rank wait states both run on the simulated
#: clock) are directly comparable and must shift together when aligned.
CLOCK_OF = {
    PID_ENGINE: CLOCK_WALL,
    PID_TBON: CLOCK_SIMULATED,
    PID_WAIT: CLOCK_SIMULATED,
}

_PID_NAMES = {
    PID_ENGINE: "engine (wall clock)",
    PID_TBON: "tbon (simulated clock)",
    PID_WAIT: "wait states (simulated clock)",
}


@dataclass
class TraceEvent:
    """One structured event (one JSON object in every exporter)."""

    name: str
    cat: str
    ph: str
    ts: float
    pid: int = 0
    tid: int = 0
    dur: Optional[float] = None
    args: Optional[Dict[str, Any]] = field(default=None)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            cat=data.get("cat", ""),
            ph=data.get("ph", "i"),
            ts=data["ts"],
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            dur=data.get("dur"),
            args=data.get("args"),
        )


def process_name_metadata() -> list:
    """Chrome ``M``-phase records naming the trace's processes."""
    return [
        TraceEvent(
            name="process_name",
            cat="__metadata",
            ph="M",
            ts=0.0,
            pid=pid,
            args={"name": label},
        )
        for pid, label in _PID_NAMES.items()
    ]
