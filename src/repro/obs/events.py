"""Structured trace records and the clock-domain conventions.

Events follow the Chrome ``trace_event`` vocabulary (phase codes
``"X"`` complete, ``"i"`` instant, ``"C"`` counter) so the exporter is
a direct serialization. Timestamps are microseconds; two process ids
separate the reproduction's two clock domains:

* :data:`PID_ENGINE` — the virtual MPI runtime, wall-clock time
  (``time.perf_counter`` relative to the tracer epoch); ``tid`` is the
  application rank.
* :data:`PID_TBON` — the tool network, *simulated* seconds scaled to
  microseconds; ``tid`` is the TBON node id.

Keeping the domains on separate pids means Perfetto renders them as
separate processes instead of interleaving incomparable clocks.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Virtual-runtime events (wall clock, tid = application rank).
PID_ENGINE = 1
#: TBON events (simulated clock, tid = tool node id).
PID_TBON = 2

_PID_NAMES = {
    PID_ENGINE: "engine (wall clock)",
    PID_TBON: "tbon (simulated clock)",
}


@dataclass
class TraceEvent:
    """One structured event (one JSON object in every exporter)."""

    name: str
    cat: str
    ph: str
    ts: float
    pid: int = 0
    tid: int = 0
    dur: Optional[float] = None
    args: Optional[Dict[str, Any]] = field(default=None)

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            name=data["name"],
            cat=data.get("cat", ""),
            ph=data.get("ph", "i"),
            ts=data["ts"],
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
            dur=data.get("dur"),
            args=data.get("args"),
        )


def process_name_metadata() -> list:
    """Chrome ``M``-phase records naming the two clock domains."""
    return [
        TraceEvent(
            name="process_name",
            cat="__metadata",
            ph="M",
            ts=0.0,
            pid=pid,
            args={"name": label},
        )
        for pid, label in _PID_NAMES.items()
    ]
