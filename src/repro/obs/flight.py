"""The flight recorder: an always-on bounded event tail per rank.

Deadlock reports are forensic artifacts: when detection fires, the
question is *what the rank did just before it stopped*. Full tracing
answers that but is opt-in (``--obs``) and unbounded; the flight
recorder is the always-on counterpart — a fixed-size ring buffer of
the last N engine/tracker events per rank, with O(1) append and the
same one-attribute-check disabled cost as the observer
(``if flight.enabled:``). Because the ring is bounded, it stays on by
default at a small N; the consistent-state snapshot then embeds each
deadlocked rank's tail into the JSON and HTML deadlock reports.

Entries are cheap at record time (one C-level list append plus an
amortized batch trim that keeps memory bounded by two ring widths;
operation details are kept as references and only rendered when a
tail is snapshotted), so the hot-path overhead stays inside the
observability parity bound even with the recorder enabled.
"""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Default ring capacity: small enough to be always-on, large enough
#: to cover the protocol exchanges leading into a blocked state.
DEFAULT_CAPACITY = 64


def _render_detail(detail: Any) -> Optional[str]:
    if detail is None:
        return None
    describe = getattr(detail, "describe", None)
    if callable(describe):
        return describe()
    return str(detail)


class FlightRecorder:
    """Fixed-size per-rank ring buffers of recent events."""

    enabled = True

    __slots__ = ("capacity", "trim_at", "_rings")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("flight-recorder capacity must be positive")
        self.capacity = capacity
        #: Buffer length at which callers must invoke :meth:`trim`.
        self.trim_at = 2 * capacity
        # rank -> [trimmed_count, entries]: appends hit a plain list
        # (C speed, no modulo); once the list doubles the ring width
        # the oldest half is dropped in one batch, so the append stays
        # amortized O(1) and memory stays bounded.
        self._rings: Dict[int, List[Any]] = {}

    # -- recording (hot path) -------------------------------------------

    def record(
        self, rank: int, kind: str, ts: float, detail: Any = None
    ) -> None:
        """Append one event to ``rank``'s ring (O(1), overwrites oldest)."""
        try:
            ring = self._rings[rank]
        except KeyError:
            ring = self._rings[rank] = [0, []]
        buf = ring[1]
        buf.append((ts, kind, detail))
        if len(buf) >= self.trim_at:
            cut = len(buf) - self.capacity
            del buf[:cut]
            ring[0] += cut

    def live_buffer(self, rank: int) -> List[Any]:
        """The raw entry list for ``rank`` — the inline fast path.

        Scheduler-loop call sites sit on paths where even a bound
        method call per event is measurable against the observability
        parity bound, so they hold this list and append
        ``(ts, kind, detail)`` tuples directly. The contract: after an
        append that leaves ``len(buf) >= trim_at``, call
        :meth:`trim`. Everyone else should use :meth:`record`.
        """
        try:
            ring = self._rings[rank]
        except KeyError:
            ring = self._rings[rank] = [0, []]
        return ring[1]

    def trim(self, rank: int) -> None:
        """Batch-drop the oldest entries of an over-full live buffer."""
        ring = self._rings[rank]
        buf = ring[1]
        cut = len(buf) - self.capacity
        if cut > 0:
            del buf[:cut]
            ring[0] += cut

    # -- introspection ---------------------------------------------------

    def ranks(self) -> List[int]:
        return sorted(self._rings)

    def count(self, rank: int) -> int:
        """Total events ever recorded for ``rank``."""
        ring = self._rings.get(rank)
        return 0 if ring is None else ring[0] + len(ring[1])

    def dropped(self, rank: int) -> int:
        """Events overwritten by the ring for ``rank``."""
        return max(0, self.count(rank) - self.capacity)

    def tail(
        self, rank: int, _memo: Optional[Dict[int, Optional[str]]] = None
    ) -> List[Dict[str, Any]]:
        """The retained events of ``rank``, oldest first, rendered.

        ``_memo`` caches rendered details by object identity for the
        duration of one snapshot: the same operation appears in several
        ring entries (issue/block/advance), and all details are kept
        alive by the buffers, so identity keys cannot be recycled here.
        """
        ring = self._rings.get(rank)
        if ring is None:
            return []
        buf = ring[1]
        retained = buf[-self.capacity:]
        seq = ring[0] + len(buf) - len(retained)
        out: List[Dict[str, Any]] = []
        for ts, kind, detail in retained:
            entry: Dict[str, Any] = {"seq": seq, "ts": ts, "event": kind}
            seq += 1
            if _memo is None:
                rendered = _render_detail(detail)
            else:
                key = id(detail)
                try:
                    rendered = _memo[key]
                except KeyError:
                    rendered = _memo[key] = _render_detail(detail)
            if rendered is not None:
                entry["detail"] = rendered
            out.append(entry)
        return out

    def snapshot(
        self, ranks: Optional[Sequence[int]] = None
    ) -> Dict[int, List[Dict[str, Any]]]:
        """Tails for the given ranks (default: every recorded rank)."""
        selected = self.ranks() if ranks is None else list(ranks)
        memo: Dict[int, Optional[str]] = {}
        return {rank: self.tail(rank, memo) for rank in selected}


class NullFlightRecorder(FlightRecorder):
    """The disabled backend: records nothing, costs one attribute check."""

    enabled = False

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, rank, kind, ts, detail=None) -> None:  # pragma: no cover
        pass


#: Shared disabled recorder for call sites that opt out explicitly.
NULL_FLIGHT_RECORDER = NullFlightRecorder()
