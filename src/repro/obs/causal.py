"""Causal wait-state analysis: who made whom wait, for how long.

The runtime detector answers *whether* the terminal state deadlocks;
this module answers the follow-up questions a user actually asks of a
report: which ranks are the root cause, how much of the run's total
blocked time they are responsible for, and along which dependency
chain the waiting propagated.

Inputs are the wait-state trace events the first-layer nodes emit
(:mod:`repro.core.distributed`):

* ``waitstate.dwell`` complete spans — one per operation that blocked
  and later advanced (a canAdvance flip), carrying the wait info
  captured when it first blocked;
* ``waitstate.final`` instants — the terminal wait state of each
  still-blocked rank at the consistent cut of a detection, carrying
  the serialized ``requestWaits`` payload plus the activation stamp;
* the ``resume`` detection instants, whose args list the finished and
  unblocked ranks of the cut.

From the final events of the last detection we rebuild the exact
AND/OR wait-for conditions the TBON root resolved (the collective
``blocked_wave`` expansion is mirrored from
``RootNode._resolve_conditions``), rebuild the WFG, and re-run the
liveness fixpoint — so the blame root-cause set *equals* the runtime
WFG's deadlocked set by construction. Blocked time is then attributed:

* a terminal interval is walked backward through the reconstructed
  graph to a deadlocked rank (a deadlocked rank blames its deadlocked
  successor; a releasable-but-blocked rank blames the nearest
  deadlocked rank reachable through its wait-for arcs);
* a transient (closed) dwell interval blames its immediate blocker —
  the smallest target rank recorded when it blocked.

The critical path follows deadlocked successors from the rank with
the largest terminal blocked time around the dependency cycle.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.waitfor import WaitForCondition, intern_target
from repro.obs.events import TraceEvent
from repro.obs.timeline import UnifiedTimeline
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.graph import WaitForGraph

#: Categories of the wait-state events (kept in sync with
#: ``repro.core.distributed``).
CAT_DWELL = "waitstate.dwell"
CAT_FINAL = "waitstate.final"


@dataclass
class BlockedInterval:
    """One reconstructed blocked interval of one rank."""

    rank: int
    #: Simulated-clock microseconds (activation of the blocked op).
    start_us: float
    end_us: float
    op: str
    #: Union of the immediate wait-for target ranks.
    targets: Tuple[int, ...]
    #: Terminal: still blocked at the detection's consistent cut.
    terminal: bool = False
    detection: Optional[int] = None
    #: Root-cause rank this interval's time is attributed to.
    blamed: Optional[int] = None

    @property
    def duration_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)


@dataclass
class BlameReport:
    """Everything `repro blame` knows about one run."""

    num_ranks: int
    intervals: List[BlockedInterval] = field(default_factory=list)
    conditions: Dict[int, WaitForCondition] = field(default_factory=dict)
    finished: Set[int] = field(default_factory=set)
    graph: Optional[WaitForGraph] = None
    result: Optional[DetectionResult] = None
    #: Human-readable chain along the witness cycle.
    chain: Tuple[str, ...] = ()
    #: Hop dictionaries along the critical path.
    critical_path: List[Dict[str, object]] = field(default_factory=list)
    #: blamed rank -> attributed blocked microseconds.
    attribution: Dict[int, float] = field(default_factory=dict)
    timeline: Optional[UnifiedTimeline] = None

    @property
    def root_causes(self) -> Tuple[int, ...]:
        return self.result.deadlocked if self.result is not None else ()

    @property
    def has_deadlock(self) -> bool:
        return bool(self.root_causes)

    @property
    def total_blocked_us(self) -> float:
        return sum(iv.duration_us for iv in self.intervals)

    @property
    def attributed_to_root_us(self) -> float:
        roots = set(self.root_causes)
        return sum(
            iv.duration_us
            for iv in self.intervals
            if iv.blamed is not None and iv.blamed in roots
        )

    @property
    def attributed_ratio(self) -> float:
        """Share of total blocked time attributed to the root causes."""
        total = self.total_blocked_us
        if total <= 0.0:
            return 1.0 if self.has_deadlock else 0.0
        return self.attributed_to_root_us / total

    def per_rank_blocked_us(self) -> Dict[int, float]:
        out: Dict[int, float] = {}
        for iv in self.intervals:
            out[iv.rank] = out.get(iv.rank, 0.0) + iv.duration_us
        return out


# ---------------------------------------------------------------------------
# condition reconstruction (mirrors RootNode._resolve_conditions)
# ---------------------------------------------------------------------------


def _entry_targets(entry: Dict[str, object], rank: int) -> List[int]:
    coll = entry.get("collective")
    if coll is not None:
        return [k for k in coll.get("group", []) if k != rank]
    return [int(t) for t in entry.get("targets", [])]


def conditions_from_wait_args(
    per_rank_args: Dict[int, Dict[str, object]],
) -> Dict[int, WaitForCondition]:
    """Rebuild CNF wait-for conditions from serialized wait info.

    The input maps each blocked rank to the ``args`` payload of its
    ``waitstate.final`` event (the format of
    :func:`repro.core.distributed.wait_info_args`). The collective
    expansion replicates the root's rule: a rank blocked in wave W
    waits (AND) for every group member whose own blocked wave is not W.
    """
    blocked_wave: Dict[int, Tuple[int, int]] = {}
    for rank, args in per_rank_args.items():
        for entry in args.get("entries", []):
            coll = entry.get("collective")
            if coll is not None:
                blocked_wave[rank] = (coll["comm"], coll["wave"])
    conditions: Dict[int, WaitForCondition] = {}
    for rank in sorted(per_rank_args):
        args = per_rank_args[rank]
        cond = WaitForCondition(
            rank=rank,
            op_ref=(rank, -1),
            op_description=str(args.get("op", "?")),
        )
        or_clause: List[object] = []
        for entry in args.get("entries", []):
            coll = entry.get("collective")
            if coll is not None:
                wave = (coll["comm"], coll["wave"])
                for k in coll.get("group", []):
                    if k == rank or blocked_wave.get(k) == wave:
                        continue
                    cond.clauses.append(
                        (intern_target(k, "has not activated the wave"),)
                    )
            else:
                targets = tuple(
                    intern_target(int(t), str(entry.get("reason", "")))
                    for t in entry.get("targets", [])
                )
                if args.get("or"):
                    or_clause.extend(targets)
                else:
                    cond.clauses.append(targets)
        if args.get("or"):
            cond.clauses.append(tuple(or_clause))
        conditions[rank] = cond
    return conditions


# ---------------------------------------------------------------------------
# blame walking
# ---------------------------------------------------------------------------


def _deadlocked_successor(
    graph: WaitForGraph, rank: int, dead: Set[int]
) -> Optional[int]:
    """Smallest deadlocked rank among ``rank``'s wait-for targets."""
    node = graph.nodes.get(rank)
    if node is None:
        return None
    best: Optional[int] = None
    for clause in node.clauses:
        for dst in clause:
            if dst in dead and (best is None or dst < best):
                best = dst
    return best


def _nearest_deadlocked(
    graph: WaitForGraph, start: int, dead: Set[int]
) -> Optional[int]:
    """BFS through wait-for arcs to the nearest deadlocked rank."""
    seen = {start}
    queue: deque[int] = deque([start])
    while queue:
        rank = queue.popleft()
        for succ in sorted(graph.successors(rank)):
            if succ in dead:
                return succ
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return None


def _blame_target(
    graph: Optional[WaitForGraph],
    dead: Set[int],
    interval: BlockedInterval,
) -> Optional[int]:
    if interval.terminal and graph is not None:
        if interval.rank in dead:
            succ = _deadlocked_successor(graph, interval.rank, dead)
            return succ if succ is not None else interval.rank
        if dead:
            near = _nearest_deadlocked(graph, interval.rank, dead)
            if near is not None:
                return near
        succs = graph.successors(interval.rank)
        if succs:
            return min(succs)
    # Transient interval (or no graph): blame the immediate blocker.
    if interval.targets:
        return min(interval.targets)
    return None


def blame_chain(
    graph: WaitForGraph,
    result: DetectionResult,
    conditions: Dict[int, WaitForCondition],
) -> List[str]:
    """Annotated dependency chain along the witness cycle."""
    cycle = result.witness_cycle
    if not cycle:
        return []
    lines: List[str] = []
    for i, rank in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        cond = conditions.get(rank)
        op = cond.op_description if cond is not None else "?"
        reason = None
        node = graph.nodes.get(rank)
        if node is not None:
            for clause, reasons in zip(node.clauses, node.reasons):
                if nxt in clause:
                    reason = reasons[clause.index(nxt)]
                    break
        line = f"rank {rank} in {op} waits for rank {nxt}"
        if reason:
            line += f": {reason}"
        lines.append(line)
    return lines


def _critical_path(
    graph: Optional[WaitForGraph],
    result: Optional[DetectionResult],
    conditions: Dict[int, WaitForCondition],
    intervals: Sequence[BlockedInterval],
) -> List[Dict[str, object]]:
    """Follow deadlocked successors from the longest-blocked rank."""
    terminal_us: Dict[int, float] = {}
    for iv in intervals:
        if iv.terminal:
            terminal_us[iv.rank] = terminal_us.get(iv.rank, 0.0) + iv.duration_us
    if graph is None or result is None or not result.deadlocked:
        if not terminal_us:
            return []
        rank = max(terminal_us, key=lambda r: (terminal_us[r], -r))
        cond = conditions.get(rank)
        return [
            {
                "rank": rank,
                "op": cond.op_description if cond else "?",
                "blocked_us": terminal_us[rank],
                "waits_for": None,
            }
        ]
    dead = set(result.deadlocked)
    candidates = [r for r in dead if r in terminal_us] or sorted(dead)
    start = max(
        candidates, key=lambda r: (terminal_us.get(r, 0.0), -r)
    )
    path: List[Dict[str, object]] = []
    seen: Set[int] = set()
    rank: Optional[int] = start
    while rank is not None and rank not in seen:
        seen.add(rank)
        nxt = _deadlocked_successor(graph, rank, dead)
        cond = conditions.get(rank)
        path.append(
            {
                "rank": rank,
                "op": cond.op_description if cond else "?",
                "blocked_us": terminal_us.get(rank, 0.0),
                "waits_for": nxt,
            }
        )
        rank = nxt
    return path


# ---------------------------------------------------------------------------
# event -> report
# ---------------------------------------------------------------------------


def _infer_num_ranks(
    intervals: Sequence[BlockedInterval],
    per_rank_args: Dict[int, Dict[str, object]],
    finished: Iterable[int],
    unblocked: Iterable[int],
) -> int:
    top = -1
    for iv in intervals:
        top = max(top, iv.rank, *(iv.targets or (-1,)))
    for rank, args in per_rank_args.items():
        top = max(top, rank)
        for entry in args.get("entries", []):
            coll = entry.get("collective")
            if coll is not None:
                top = max(top, *(list(coll.get("group", [])) or [-1]))
            else:
                top = max(top, *(list(entry.get("targets", [])) or [-1]))
    for rank in finished:
        top = max(top, rank)
    for rank in unblocked:
        top = max(top, rank)
    return max(1, top + 1)


def analyze_events(
    events: Sequence[TraceEvent], *, num_ranks: Optional[int] = None
) -> BlameReport:
    """Reconstruct blocked intervals and attribute blame from a trace."""
    dwell: List[TraceEvent] = []
    final: List[TraceEvent] = []
    resumes: List[TraceEvent] = []
    for ev in events:
        if ev.cat == CAT_DWELL and ev.ph == "X":
            dwell.append(ev)
        elif ev.cat == CAT_FINAL:
            final.append(ev)
        elif ev.cat == "detection" and ev.name == "resume":
            resumes.append(ev)

    # Terminal wait states: only the LAST detection's cut — earlier
    # detections' still-blocked ops either advanced later (their dwell
    # span covers the same time) or re-appear in the last cut.
    detections = [
        (ev.args or {}).get("detection")
        for ev in final
        if (ev.args or {}).get("detection") is not None
    ]
    last_detection = max(detections) if detections else None

    intervals: List[BlockedInterval] = []
    per_rank_args: Dict[int, Dict[str, object]] = {}
    for ev in dwell:
        args = ev.args or {}
        entries = args.get("entries", [])
        targets: Set[int] = set()
        for entry in entries:
            targets.update(_entry_targets(entry, ev.tid))
        intervals.append(
            BlockedInterval(
                rank=ev.tid,
                start_us=ev.ts,
                end_us=ev.ts + (ev.dur or 0.0),
                op=str(args.get("op", "?")),
                targets=tuple(sorted(targets)),
            )
        )
    for ev in final:
        args = ev.args or {}
        if args.get("detection") != last_detection:
            continue
        per_rank_args[ev.tid] = args
        targets = set()
        for entry in args.get("entries", []):
            targets.update(_entry_targets(entry, ev.tid))
        since = float(args.get("since", ev.ts))
        intervals.append(
            BlockedInterval(
                rank=ev.tid,
                start_us=since,
                end_us=ev.ts,
                op=str(args.get("op", "?")),
                targets=tuple(sorted(targets)),
                terminal=True,
                detection=last_detection,
            )
        )

    finished: Set[int] = set()
    unblocked: Set[int] = set()
    for ev in resumes:
        args = ev.args or {}
        if args.get("detection") != last_detection:
            continue
        finished.update(args.get("finished_ranks", []))
        unblocked.update(args.get("unblocked_ranks", []))

    if num_ranks is None:
        num_ranks = _infer_num_ranks(
            intervals, per_rank_args, finished, unblocked
        )

    report = BlameReport(num_ranks=num_ranks, intervals=intervals)
    report.finished = finished
    report.timeline = UnifiedTimeline(events)

    if per_rank_args:
        report.conditions = conditions_from_wait_args(per_rank_args)
        report.graph = WaitForGraph.from_conditions(
            num_ranks, report.conditions.values(), finished=finished
        )
        report.result = detect_deadlock(report.graph)
        report.chain = tuple(
            blame_chain(report.graph, report.result, report.conditions)
        )

    dead = set(report.root_causes)
    for iv in intervals:
        iv.blamed = _blame_target(report.graph, dead, iv)
        if iv.blamed is not None:
            report.attribution[iv.blamed] = (
                report.attribution.get(iv.blamed, 0.0) + iv.duration_us
            )
    report.critical_path = _critical_path(
        report.graph, report.result, report.conditions, intervals
    )
    return report
