"""Unified timeline: aligning the trace's two clock domains.

A trace artifact mixes two incomparable clocks. Engine events
(:data:`~repro.obs.events.PID_ENGINE`) are stamped with wall-clock
microseconds since the tracer epoch; TBON and wait-state events
(:data:`~repro.obs.events.PID_TBON`, :data:`~repro.obs.events.PID_WAIT`)
carry the *simulated* network clock scaled to microseconds. Their
origins and rates are unrelated — the engine finishes its wall-clock
run before the simulated detection network even starts, and one
simulated second costs nowhere near one wall second to compute.

:class:`UnifiedTimeline` groups events by clock domain (via
:data:`~repro.obs.events.CLOCK_OF`; pids sharing a clock shift
together), rebases each domain so its earliest timestamp sits at 0,
and places the domains on one axis in either of two modes:

* ``"pipeline"`` (default) — domains are concatenated in dataflow
  order (wall-clock engine run, then the simulated detection pass),
  mirroring how a run actually unfolds: the recorded program is
  replayed first, the TBON consumes its window stream after. Unified
  time is therefore a single monotone axis and cross-domain ordering
  is meaningful.
* ``"overlay"`` — every domain is anchored at 0, for comparing
  *shapes* (e.g. dwell spans against TBON message activity) rather
  than sequencing them.

The unified axis is what ``repro stats`` renders as the timeline
table and what :mod:`repro.obs.causal` uses to order blocked
intervals against detection events.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.obs.events import (
    CLOCK_SIMULATED,
    CLOCK_WALL,
    TraceEvent,
    clock_of,
)

#: Dataflow order of the known clock domains in ``"pipeline"`` mode.
DOMAIN_ORDER = (CLOCK_WALL, CLOCK_SIMULATED)

ALIGNMENT_MODES = ("pipeline", "overlay")

# Shard-worker pids resolve to the wall domain (their events are
# clock-reconciled onto the coordinator's axis before export), so a
# merged multi-process trace needs no new alignment logic here.
_clock_of = clock_of


def _extent_of(event: TraceEvent) -> Tuple[float, float]:
    start = event.ts
    end = event.ts + (event.dur or 0.0)
    return start, end


@dataclass
class DomainExtent:
    """One clock domain's raw extent and its placement on the axis."""

    clock: str
    begin: float = float("inf")
    end: float = float("-inf")
    count: int = 0
    pids: List[int] = field(default_factory=list)
    #: Unified-axis position of this domain's ``begin``.
    offset: float = 0.0

    @property
    def span_us(self) -> float:
        if self.count == 0:
            return 0.0
        return self.end - self.begin

    def rebase(self, ts: float) -> float:
        """Map a raw in-domain timestamp onto the unified axis."""
        return self.offset + (ts - self.begin)


class UnifiedTimeline:
    """One monotone axis over the trace's separate clock domains."""

    def __init__(
        self, events: Iterable[TraceEvent], *, mode: str = "pipeline"
    ) -> None:
        if mode not in ALIGNMENT_MODES:
            raise ValueError(
                "unknown alignment mode %r (expected one of %s)"
                % (mode, ", ".join(ALIGNMENT_MODES))
            )
        self.mode = mode
        self.events: List[TraceEvent] = [
            ev for ev in events if ev.ph != "M"
        ]
        self.domains: Dict[str, DomainExtent] = {}
        for ev in self.events:
            clock = _clock_of(ev.pid)
            dom = self.domains.get(clock)
            if dom is None:
                dom = self.domains[clock] = DomainExtent(clock=clock)
            start, end = _extent_of(ev)
            dom.begin = min(dom.begin, start)
            dom.end = max(dom.end, end)
            dom.count += 1
            if ev.pid not in dom.pids:
                dom.pids.append(ev.pid)
        self._place_domains()

    # -- alignment -------------------------------------------------------

    def _ordered_clocks(self) -> List[str]:
        known = [c for c in DOMAIN_ORDER if c in self.domains]
        extra = sorted(c for c in self.domains if c not in DOMAIN_ORDER)
        return known + extra

    def _place_domains(self) -> None:
        cursor = 0.0
        for clock in self._ordered_clocks():
            dom = self.domains[clock]
            if self.mode == "overlay":
                dom.offset = 0.0
            else:  # pipeline: concatenate in dataflow order
                dom.offset = cursor
                cursor += dom.span_us
            dom.pids.sort()

    # -- queries ---------------------------------------------------------

    def unified_ts(self, event: TraceEvent) -> float:
        """The event's start position on the unified axis."""
        return self.domains[_clock_of(event.pid)].rebase(event.ts)

    def iter_unified(self) -> Iterator[Tuple[float, TraceEvent]]:
        """Events as ``(unified_ts, event)``, sorted by unified time."""
        pairs = [(self.unified_ts(ev), ev) for ev in self.events]
        pairs.sort(key=lambda p: p[0])
        return iter(pairs)

    @property
    def total_span_us(self) -> float:
        """Extent of the unified axis."""
        best = 0.0
        for dom in self.domains.values():
            if dom.count:
                best = max(best, dom.offset + dom.span_us)
        return best

    def summary(self) -> List[Dict[str, object]]:
        """Per-domain rows for table rendering / JSON export."""
        rows = []
        for clock in self._ordered_clocks():
            dom = self.domains[clock]
            rows.append(
                {
                    "clock": dom.clock,
                    "pids": list(dom.pids),
                    "events": dom.count,
                    "span_us": dom.span_us,
                    "offset_us": dom.offset,
                }
            )
        return rows
