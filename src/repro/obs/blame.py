"""`repro blame` orchestration: load, analyze, render, export.

Two input modes feed :func:`repro.obs.causal.analyze_events`:

* **artifact mode** — a Chrome trace file written by ``--obs-trace`` (or
  a raw ``--out FILE --format jsonl`` stream): the wait-state events are parsed back
  out of the artifact; malformed input raises
  :class:`~repro.util.errors.TraceError` so the CLI can exit 2.
* **live mode** — a Python rank-program file (the `repro lint`
  conventions: ``LINT_PROGRAMS`` / ``LINT_RANKS`` / a module-level
  generator function): the file is executed on the virtual runtime,
  the distributed detector runs over the matched trace with a live
  observer, and blame is computed from the in-memory events. Live mode
  also returns the runtime outcome so callers can cross-check the
  blame root causes against the runtime WFG verdict.
"""
from __future__ import annotations

import importlib.util
import inspect
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.causal import BlameReport, analyze_events
from repro.obs.events import TraceEvent
from repro.obs.exporters import load_run, read_jsonl
from repro.obs.observer import Observer, make_observer
from repro.obs.stats import render_timeline_table
from repro.util.errors import TraceError

from repro.docs import format_tag

BLAME_FORMAT = format_tag("blame")


# ---------------------------------------------------------------------------
# artifact mode
# ---------------------------------------------------------------------------


def load_events(
    path: str,
) -> Tuple[List[TraceEvent], Optional[Dict[str, Any]]]:
    """Events (+ run metadata if present) from a trace artifact.

    ``.jsonl`` streams have no metadata block; anything else is parsed
    as a Chrome trace-event document. Raises ``TraceError`` / ``OSError``
    on unreadable or malformed input.
    """
    if path.endswith(".jsonl"):
        return read_jsonl(path), None
    doc = load_run(path)
    events: List[TraceEvent] = []
    for index, raw in enumerate(doc.get("traceEvents", [])):
        try:
            events.append(TraceEvent.from_json(raw))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(
                f"{path}: traceEvents[{index}]: malformed event: {exc}"
            ) from exc
    return events, doc.get("repro")


def blame_artifact(path: str) -> BlameReport:
    """Artifact mode end to end: load, reconstruct, attribute."""
    events, meta = load_events(path)
    num_ranks = None
    if meta is not None and isinstance(meta.get("ranks"), int):
        num_ranks = meta["ranks"]
    return analyze_events(events, num_ranks=num_ranks)


# ---------------------------------------------------------------------------
# live mode
# ---------------------------------------------------------------------------


def load_programs(path: str, default_ranks: int) -> List[Any]:
    """Rank programs from a Python file, `repro lint` conventions."""
    spec = importlib.util.spec_from_file_location(
        "_repro_blame_target", path
    )
    if spec is None or spec.loader is None:
        raise TraceError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:  # import errors are user input errors
        raise TraceError(f"cannot import {path}: {exc}") from exc
    programs = getattr(module, "LINT_PROGRAMS", None)
    if programs is not None:
        return list(programs)
    ranks = getattr(module, "LINT_RANKS", default_ranks)
    functions = [
        value
        for name, value in sorted(vars(module).items())
        if not name.startswith("_") and inspect.isgeneratorfunction(value)
    ]
    if not functions:
        raise TraceError(
            f"{path}: no rank programs found (no LINT_PROGRAMS and no "
            "module-level generator function)"
        )
    if len(functions) == 1:
        return [functions[0]] * ranks
    return list(functions)


def blame_programs(
    programs: Sequence[Any],
    *,
    seed: int = 0,
    fan_in: int = 4,
    backend: Any = None,
) -> Tuple[BlameReport, Any]:
    """Run rank programs, detect, blame. Returns (report, outcome).

    ``backend`` is an :class:`repro.backend.AnalysisBackend` (default:
    the inline one); either backend yields the same blame roots.
    """
    from repro.backend import InlineBackend
    from repro.mpi.blocking import BlockingSemantics
    from repro.runtime.engine import run_programs

    observer: Observer = make_observer(True)
    run = run_programs(
        programs,
        semantics=BlockingSemantics.relaxed(),
        seed=seed,
        observer=observer,
    )
    if backend is None:
        backend = InlineBackend()
    outcome = backend.run(
        run.matched, fan_in=fan_in, seed=seed, observer=observer
    )
    report = analyze_events(
        list(observer.tracer.events), num_ranks=len(programs)
    )
    return report, outcome


def blame_live(
    path: str,
    *,
    ranks: int = 4,
    seed: int = 0,
    fan_in: int = 4,
    backend: Any = None,
) -> Tuple[BlameReport, Any]:
    """Live mode: run the file, detect, blame. Returns (report, outcome)."""
    programs = load_programs(path, ranks)
    return blame_programs(
        programs, seed=seed, fan_in=fan_in, backend=backend
    )


# ---------------------------------------------------------------------------
# rendering / export
# ---------------------------------------------------------------------------


def render_blame(report: BlameReport) -> List[str]:
    """The ``repro blame`` body, in the `obs/stats.py` table style."""
    lines: List[str] = []

    lines.append("-- blocked time per rank --")
    per_rank = report.per_rank_blocked_us()
    if per_rank:
        terminal = {iv.rank for iv in report.intervals if iv.terminal}
        lines.append(
            f"{'rank':<8} {'intervals':>10} {'blocked ms':>12} {'state':<22}"
        )
        counts: Dict[int, int] = {}
        for iv in report.intervals:
            counts[iv.rank] = counts.get(iv.rank, 0) + 1
        dead = set(report.root_causes)
        for rank in sorted(per_rank):
            if rank in dead:
                state = "deadlocked"
            elif rank in terminal:
                state = "blocked (releasable)"
            else:
                state = "progressed"
            lines.append(
                f"{rank:<8} {counts.get(rank, 0):>10} "
                f"{per_rank[rank] / 1e3:>12.3f} {state:<22}"
            )
    else:
        lines.append("  (no blocked intervals recorded)")

    lines.append("")
    lines.append("-- blame attribution (root-cause ranks) --")
    if report.attribution:
        total = report.total_blocked_us
        lines.append(f"{'blamed rank':<12} {'blocked ms':>12} {'share':>8}")
        for rank in sorted(
            report.attribution, key=lambda r: -report.attribution[r]
        ):
            us = report.attribution[rank]
            share = (us / total * 100.0) if total > 0 else 0.0
            lines.append(f"{rank:<12} {us / 1e3:>12.3f} {share:>7.1f}%")
        lines.append(
            f"attributed to root causes: {report.attributed_ratio * 100.0:.1f}% "
            f"of {total / 1e3:.3f} ms total blocked time"
        )
    else:
        lines.append("  (nothing to attribute)")

    if report.chain:
        lines.append("")
        lines.append("-- blame chain (witness cycle) --")
        for line in report.chain:
            lines.append("  " + line)

    if report.critical_path:
        lines.append("")
        lines.append("-- critical path --")
        for hop in report.critical_path:
            waits = hop.get("waits_for")
            arrow = f" -> waits for rank {waits}" if waits is not None else ""
            lines.append(
                f"  rank {hop['rank']} in {hop['op']} "
                f"({hop['blocked_us'] / 1e3:.3f} ms blocked){arrow}"
            )

    if report.timeline is not None and report.timeline.events:
        lines.append("")
        lines.append("-- unified timeline --")
        lines += render_timeline_table(report.timeline)
    return lines


def blame_document(
    report: BlameReport, *, source: Optional[str] = None
) -> Dict[str, Any]:
    """Machine-readable blame summary (``--out FILE --format json``)."""
    doc: Dict[str, Any] = {
        "format": BLAME_FORMAT,
        "source": source,
        "num_ranks": report.num_ranks,
        "deadlock": report.has_deadlock,
        "root_causes": list(report.root_causes),
        "witness_cycle": (
            list(report.result.witness_cycle)
            if report.result is not None
            else []
        ),
        "total_blocked_us": report.total_blocked_us,
        "attributed_to_root_us": report.attributed_to_root_us,
        "attributed_ratio": report.attributed_ratio,
        "attribution_us": {
            str(rank): us for rank, us in sorted(report.attribution.items())
        },
        "per_rank_blocked_us": {
            str(rank): us
            for rank, us in sorted(report.per_rank_blocked_us().items())
        },
        "blame_chain": list(report.chain),
        "critical_path": list(report.critical_path),
        "finished": sorted(report.finished),
        "intervals": [
            {
                "rank": iv.rank,
                "start_us": iv.start_us,
                "end_us": iv.end_us,
                "duration_us": iv.duration_us,
                "op": iv.op,
                "targets": list(iv.targets),
                "terminal": iv.terminal,
                "blamed": iv.blamed,
            }
            for iv in report.intervals
        ],
        "timeline": (
            report.timeline.summary() if report.timeline is not None else []
        ),
    }
    return doc


def check_agreement(
    report: BlameReport, runtime_deadlocked: Sequence[int]
) -> bool:
    """Do blame root causes equal the runtime WFG's deadlocked set?"""
    return set(report.root_causes) == set(runtime_deadlocked)
