"""Distributed tracing for the sharded backend.

The sharded backend (PR 5) runs one coordinator plus N worker
processes, each with its own ``time.perf_counter`` epoch — their raw
timestamps are mutually incomparable. This module carries three pieces
that turn N private event streams into one trace:

* :class:`TraceContext` — the causal envelope (run id, originating
  shard, BSP round, parent span id) that rides as an optional third
  element on the wire tuples of :func:`repro.mpi.serialize.encode_message`.
  Context-free messages keep the exact two-element PR 5 wire format,
  so equivalence baselines stay bit-identical when tracing is off.
* :class:`WorkerObsSpec` — the picklable observer configuration the
  coordinator embeds in each ``_ShardSpec`` so workers honor the
  session's ``--obs`` settings (:data:`~repro.obs.observer.NULL_OBSERVER`
  stays the zero-cost default).
* :class:`TraceMerger` — clock reconciliation. Each BSP round the
  coordinator stamps the command-send time on its own clock and every
  worker stamps its round start on its own clock; the per-shard offset
  is the **median** over rounds of (coordinator send − worker start),
  which is robust to scheduling-jitter outliers the way a mean is not.
  Merged worker events are rebased onto the coordinator's wall axis,
  so the existing :class:`~repro.obs.timeline.UnifiedTimeline` and the
  Chrome exporter consume them unchanged.
"""
from __future__ import annotations

import itertools
import statistics
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.obs.events import TraceEvent
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.tracer import DEFAULT_EVENT_LIMIT, Tracer

#: The coordinator's shard id inside a :class:`TraceContext`.
COORDINATOR_SHARD = -1

_run_ids = itertools.count(1)


def next_run_id() -> int:
    """A process-unique run id for one sharded execution."""
    return next(_run_ids)


@dataclass(frozen=True)
class TraceContext:
    """Causal envelope attached to cross-shard wire messages."""

    run_id: int
    shard_id: int
    round: int
    parent_span: int = 0

    def to_wire(self) -> Tuple[int, int, int, int]:
        """The primitive tuple shipped on the wire."""
        return (self.run_id, self.shard_id, self.round, self.parent_span)

    @classmethod
    def from_wire(cls, data: Sequence[int]) -> "TraceContext":
        return cls(
            run_id=data[0], shard_id=data[1], round=data[2],
            parent_span=data[3],
        )


@dataclass(frozen=True)
class WorkerObsSpec:
    """Observer settings a worker process reconstructs from.

    Observers hold unpicklable state (bound metrics registries, lists
    of events); shipping this small frozen spec instead keeps
    ``_ShardSpec`` cheap to pickle and lets the worker build its own
    local :class:`~repro.obs.observer.Observer`.
    """

    enabled: bool = False
    event_limit: int = DEFAULT_EVENT_LIMIT
    run_id: int = 0

    @classmethod
    def from_observer(cls, observer: Observer, run_id: int) -> "WorkerObsSpec":
        if not observer.enabled:
            return cls()
        return cls(
            enabled=True,
            event_limit=getattr(
                observer.tracer, "limit", DEFAULT_EVENT_LIMIT
            ),
            run_id=run_id,
        )


def make_worker_observer(spec: WorkerObsSpec) -> Observer:
    """The observer a shard worker runs under.

    Disabled specs return the shared :data:`NULL_OBSERVER` so workers
    pay the usual single attribute check per instrumentation site.
    """
    if not spec.enabled:
        return NULL_OBSERVER
    return Observer(tracer=Tracer(limit=spec.event_limit))


#: ``args`` column flags — see :func:`events_to_wire`.
_ARGS_EXTRA = 0   # args pickled verbatim on the frame's fallback list
_ARGS_INT = 1     # args == {key: int(value)}
_ARGS_FLOAT = 2   # args == {key: float(value)}
_ARGS_NONE = 3    # args is None

_DUR_NONE = float("nan")


def events_to_wire(events: Sequence[TraceEvent]) -> tuple:
    """Pack trace events into columnar arrays for ``res_q`` frames.

    A run at the claim scale (p=256, s=8) produces ~10k events; as
    dataclasses — or even bare row tuples — that is ~80k heap objects
    through pickle, and both sides of that cost land inside the
    busy-time windows ``modeled_latency_seconds`` is built from (the
    worker's queue feeder thread pickles asynchronously, leaking CPU
    into later rounds' ``process_time`` windows; the coordinator
    unpickles inside its reply loop). Columns of primitive ``array``
    values pickle as single byte blobs, so the timed cost collapses to
    a few memcpys; :meth:`TraceMerger.merge_into` rebuilds
    :class:`TraceEvent` objects after the timing accounting closes.

    The wire value is a 12-tuple: a string table; ``H`` index columns
    for name/cat/ph; ``d`` columns for ts and dur (``NaN`` encodes a
    ``None`` duration — real durations are never NaN); ``i`` columns
    for pid/tid; and the args columns (key index, flag, value) with a
    fallback list for the rare args that are not single-key numeric
    dicts. Int-valued args survive the float column exactly up to
    2**53, far beyond any round/rank/byte count we record.
    """
    strings: Dict[str, int] = {}

    def intern(s: str) -> int:
        idx = strings.get(s)
        if idx is None:
            idx = strings[s] = len(strings)
        return idx

    name_i = array("H")
    cat_i = array("H")
    ph_i = array("H")
    ts = array("d")
    dur = array("d")
    pid = array("i")
    tid = array("i")
    akey = array("H")
    aflag = array("b")
    aval = array("d")
    extra: List[Any] = []
    for e in events:
        name_i.append(intern(e.name))
        cat_i.append(intern(e.cat))
        ph_i.append(intern(e.ph))
        ts.append(e.ts)
        dur.append(_DUR_NONE if e.dur is None else e.dur)
        pid.append(e.pid)
        tid.append(e.tid)
        args = e.args
        if args is None:
            akey.append(0)
            aflag.append(_ARGS_NONE)
            aval.append(0.0)
            continue
        if len(args) == 1:
            ((k, v),) = args.items()
            kind = type(v)
            if kind is int and -(2 ** 53) <= v <= 2 ** 53:
                akey.append(intern(k))
                aflag.append(_ARGS_INT)
                aval.append(v)
                continue
            if kind is float:
                akey.append(intern(k))
                aflag.append(_ARGS_FLOAT)
                aval.append(v)
                continue
        akey.append(0)
        aflag.append(_ARGS_EXTRA)
        aval.append(0.0)
        extra.append(args)
    return (
        list(strings), name_i, cat_i, ph_i, ts, dur, pid, tid,
        akey, aflag, aval, extra,
    )


def wire_len(wire: tuple) -> int:
    """Number of events packed in one :func:`events_to_wire` value."""
    return len(wire[1])


def wire_to_events(wire: tuple, offset: float = 0.0) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` rows from a packed frame, rebasing
    every timestamp by ``offset`` (microseconds)."""
    (strings, name_i, cat_i, ph_i, ts, dur, pid, tid,
     akey, aflag, aval, extra) = wire
    extras = iter(extra)
    out: List[TraceEvent] = []
    for i in range(len(name_i)):
        flag = aflag[i]
        if flag == _ARGS_INT:
            args: Any = {strings[akey[i]]: int(aval[i])}
        elif flag == _ARGS_FLOAT:
            args = {strings[akey[i]]: aval[i]}
        elif flag == _ARGS_NONE:
            args = None
        else:
            args = next(extras)
        d = dur[i]
        out.append(
            TraceEvent(
                name=strings[name_i[i]],
                cat=strings[cat_i[i]],
                ph=strings[ph_i[i]],
                ts=ts[i] + offset,
                pid=pid[i],
                tid=tid[i],
                dur=None if d != d else d,
                args=args,
            )
        )
    return out


class TraceMerger:
    """Folds per-shard event frames into the coordinator's trace.

    The coordinator calls :meth:`note_round_sent` when it puts a round
    command on a shard's queue (timestamp on the coordinator tracer's
    clock) and :meth:`add_frame` for each ``("obs", sid, frame)`` reply
    (worker round-start timestamps on the worker's clock). At
    :meth:`merge_into` time the per-shard clock offset is the median
    round delta; every worker event is rebased by it.
    """

    def __init__(self) -> None:
        # shard -> round -> coordinator send timestamp (coordinator us)
        self._sent: Dict[int, Dict[int, float]] = {}
        # shard -> packed event frames (worker us; events_to_wire form,
        # kept packed until merge_into so absorbing a frame stays cheap
        # inside the coordinator's timed reply loop)
        self._frames: Dict[int, List[tuple]] = {}
        # shard -> [(round, worker round-start us)]
        self._anchors: Dict[int, List[Tuple[int, float]]] = {}
        # shard -> dropped-event count reported by the worker tracer
        self.dropped: Dict[int, int] = {}
        self.frames = 0

    def note_round_sent(self, shard_id: int, round_no: int, ts_us: float) -> None:
        self._sent.setdefault(shard_id, {})[round_no] = ts_us

    def add_frame(self, shard_id: int, frame: Mapping[str, Any]) -> None:
        """Absorb one streamed observability frame from a worker."""
        self.frames += 1
        events = frame.get("events")
        if events is not None and wire_len(events):
            self._frames.setdefault(shard_id, []).append(events)
        for round_no, start_us in frame.get("rounds") or ():
            self._anchors.setdefault(shard_id, []).append(
                (round_no, start_us)
            )
        dropped = int(frame.get("dropped") or 0)
        if dropped:
            self.dropped[shard_id] = max(
                self.dropped.get(shard_id, 0), dropped
            )

    def offset_us(self, shard_id: int) -> float:
        """Worker→coordinator clock offset for one shard (0.0 if the
        round anchors never arrived — events then keep raw stamps)."""
        sent = self._sent.get(shard_id, {})
        deltas = [
            sent[round_no] - start_us
            for round_no, start_us in self._anchors.get(shard_id, ())
            if round_no in sent
        ]
        if not deltas:
            return 0.0
        return float(statistics.median(deltas))

    def event_counts(self) -> Dict[int, int]:
        return {
            sid: sum(wire_len(frame) for frame in frames)
            for sid, frames in self._frames.items()
        }

    def merge_into(self, observer: Observer) -> Dict[int, float]:
        """Rebase and absorb all worker events; returns the per-shard
        offsets used (microseconds, coordinator-minus-worker)."""
        offsets: Dict[int, float] = {}
        for shard_id in sorted(self._frames):
            offset = self.offset_us(shard_id)
            offsets[shard_id] = offset
            for frame in self._frames[shard_id]:
                observer.tracer.absorb(wire_to_events(frame, offset))
        # The global obs.tracer.dropped counter already aggregates via
        # the worker metrics merge at join; here we add the per-shard
        # attribution the stats shard table reports.
        for shard_id, dropped in sorted(self.dropped.items()):
            observer.metrics.counter(
                f"obs.tracer.dropped.shard{shard_id}"
            ).inc(dropped)
        for shard_id, count in sorted(self.event_counts().items()):
            observer.metrics.inc(f"obs.shard{shard_id}.events", count)
        return offsets
