"""Service-level telemetry for the ``repro serve`` daemon.

Job analysis runs carry their own per-job observers (built by the
worker sessions); this module is the *daemon's* instrumentation — one
long-lived :class:`~repro.obs.observer.Observer` whose metrics
registry counts submissions, completions, and rejections per tenant
and gauges the queue. :meth:`ServiceTelemetry.openmetrics` renders the
scrape through the same
:func:`~repro.obs.exporters.openmetrics_text` exposition the offline
``repro stats --format openmetrics`` path uses, so one Prometheus
relabel config covers files and the daemon alike.
"""
from __future__ import annotations

import re
import time
from typing import Any, Dict, Mapping, Optional

from repro.obs.exporters import openmetrics_text
from repro.obs.observer import Observer, make_observer

_TENANT_SAFE = re.compile(r"[^A-Za-z0-9_]")


def _tenant_key(tenant: str) -> str:
    """A metric-name-safe rendering of a tenant id."""
    return _TENANT_SAFE.sub("_", tenant) or "default"


class ServiceTelemetry:
    """Counters and gauges describing the daemon, not the analyses."""

    def __init__(self, observer: Optional[Observer] = None) -> None:
        self.observer = observer if observer is not None else make_observer()
        self.started_at = time.time()

    @property
    def metrics(self):
        return self.observer.metrics

    # -- recording -------------------------------------------------------

    def job_submitted(self, tenant: str) -> None:
        self.metrics.inc("serve.jobs.submitted")
        self.metrics.inc(f"serve.tenant.{_tenant_key(tenant)}.submitted")

    def job_finished(self, tenant: str, state: str, latency: float) -> None:
        self.metrics.inc(f"serve.jobs.{state}")
        self.metrics.inc(f"serve.tenant.{_tenant_key(tenant)}.{state}")
        self.metrics.observe("serve.job.latency_s", latency)

    def job_rejected(self, tenant: str, code: str) -> None:
        key = code.replace("-", "_")
        self.metrics.inc(f"serve.rejected.{key}")
        self.metrics.inc(f"serve.tenant.{_tenant_key(tenant)}.rejected")

    def request(self, op: str) -> None:
        self.metrics.inc(f"serve.requests.{op}")

    def protocol_error(self) -> None:
        self.metrics.inc("serve.requests.protocol_error")

    def set_queue_depth(self, depth: int) -> None:
        self.metrics.set_gauge("serve.queue.depth", depth)

    def set_running(self, running: int) -> None:
        self.metrics.set_gauge("serve.jobs.running", running)

    def set_workers(self, workers: int) -> None:
        self.metrics.set_gauge("serve.workers", workers)

    def set_connections(self, count: int) -> None:
        self.metrics.set_gauge("serve.connections", count)

    # -- exposition ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    def openmetrics(
        self, *, extra_gauges: Optional[Mapping[str, float]] = None
    ) -> str:
        gauges = {"serve.uptime_s": time.time() - self.started_at}
        if extra_gauges:
            gauges.update(extra_gauges)
        return openmetrics_text(self.snapshot(), extra_gauges=gauges)
