"""Live telemetry: streaming snapshots of a run in flight.

Post-mortem observability (``--obs-trace`` + ``repro stats``) only
becomes visible after the run ends — a hung analysis looks identical
to a slow one. :class:`LiveMonitor` closes that gap: hooked into the
engine main loop (every N steps), the sharded coordinator's BSP round
loop (every N rounds), and rate-limited by wall clock, it snapshots

* engine progress — ops issued, resume ("canAdvance") flips, per-rank
  dwell since last progress and the op each parked rank blocks in;
* the sharded backend's round/skew/queue-depth data, folded on the
  coordinator from the profiler rows already streaming back over the
  ``("obs", ...)`` reply channel;
* TBON channel counters (sent/delivered totals, backlog, queue depth)
  and tracer drop counts;
* the full :class:`~repro.obs.metrics.MetricsRegistry` snapshot

and streams them as versioned ``repro-live/1`` JSONL documents plus
``on_snapshot`` callbacks (the seam ``repro watch`` — and eventually
``repro serve`` — consume). A :class:`~repro.obs.health.HealthEngine`
evaluates each window and attaches the PROGRESSING / SOFT-HANG /
DEADLOCK-CONFIRMED verdict to every snapshot; the confirmation path
runs only at :meth:`LiveMonitor.finalize`, against the runtime WFG.

Feed layout (one JSON document per line)::

    {"format": "repro-live/1", "kind": "header", ...}
    {"format": "repro-live/1", "kind": "snapshot", "seq": 0, ...}
    ...
    {"format": "repro-live/1", "kind": "final", "verdict": {...}}
"""
from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, List, Mapping, Optional, Sequence, Tuple

from repro.docs import format_tag, parse_format, validate_doc
from repro.obs.health import (
    DEADLOCK_CONFIRMED,
    PROGRESSING,
    SOFT_HANG,
    HealthEngine,
    HealthVerdict,
)
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.util.errors import TraceError

#: Version tag of the live feed documents (registry-owned).
LIVE_FORMAT = format_tag("live")

#: Default engine-step cadence between snapshots.
DEFAULT_EVERY_STEPS = 2048

#: Default BSP-round cadence between backend snapshots.
DEFAULT_EVERY_ROUNDS = 8

#: CLI exit codes per final verdict state (``repro watch``).
EXIT_CODE_OF = {PROGRESSING: 0, SOFT_HANG: 1, DEADLOCK_CONFIRMED: 2}


def _now_us() -> float:
    return time.time() * 1e6


class LiveMonitor:
    """Periodic snapshots of a run, streamed to sinks as they happen.

    Cadence: the engine calls :meth:`tick_engine` every
    ``every_steps`` scheduler steps, the sharded coordinator calls
    :meth:`tick_backend` every ``every_rounds`` BSP rounds, and
    ``min_interval_us`` (wall clock) rate-limits emission on top, so a
    fast run doesn't flood the feed. Sinks: an optional JSONL feed
    file and any number of ``on_snapshot`` callbacks.
    """

    def __init__(
        self,
        *,
        observer: Optional[Observer] = None,
        every_steps: int = DEFAULT_EVERY_STEPS,
        every_rounds: int = DEFAULT_EVERY_ROUNDS,
        min_interval_us: float = 0.0,
        feed_path: Optional[str] = None,
        on_snapshot: Optional[
            Callable[[Dict[str, Any]], None]
        ] = None,
        health: Optional[HealthEngine] = None,
    ) -> None:
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.every_steps = max(1, int(every_steps))
        self.every_rounds = max(1, int(every_rounds))
        self.min_interval_us = float(min_interval_us)
        self.health = health if health is not None else HealthEngine()
        self.feed_path = feed_path
        self._fh: Optional[IO[str]] = None
        self._callbacks: List[Callable[[Dict[str, Any]], None]] = []
        if on_snapshot is not None:
            self._callbacks.append(on_snapshot)
        self.seq = 0
        self.num_ranks: Optional[int] = None
        self.snapshots: List[Dict[str, Any]] = []
        self.final_verdict: Optional[HealthVerdict] = None
        self._last_emit_us = 0.0
        self._closed = False

    # -- sink management --------------------------------------------------

    def add_callback(
        self, callback: Callable[[Dict[str, Any]], None]
    ) -> None:
        self._callbacks.append(callback)

    def _write_line(self, doc: Mapping[str, Any]) -> None:
        if self.feed_path is None:
            return
        if self._fh is None:
            self._fh = open(self.feed_path, "w", encoding="utf-8")
            header = {
                "format": LIVE_FORMAT,
                "kind": "header",
                "every_steps": self.every_steps,
                "every_rounds": self.every_rounds,
                "ranks": self.num_ranks,
                "ts_us": _now_us(),
            }
            self._fh.write(json.dumps(header) + "\n")
        self._fh.write(json.dumps(doc) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    # -- hook points ------------------------------------------------------

    def attach_engine(self, num_ranks: int) -> None:
        """The engine announces itself before its main loop starts."""
        self.num_ranks = num_ranks

    def tick_engine(self, sample: Mapping[str, Any]) -> None:
        """One engine-phase snapshot (sample from ``Engine``)."""
        self._emit("engine", "engine", dict(sample))

    def tick_backend(self, sample: Mapping[str, Any]) -> None:
        """One backend-phase snapshot (sample from the coordinator)."""
        self._emit("backend", "backend", dict(sample))

    # -- snapshot assembly ------------------------------------------------

    def _tbon_section(self) -> Dict[str, Any]:
        metrics = self.observer.metrics
        sent = metrics.counter("tbon.sent_total").value
        delivered = metrics.counter("tbon.delivered_total").value
        return {
            "sent": sent,
            "delivered": delivered,
            "backlog": max(0, sent - delivered),
            "queue_depth": metrics.gauge("tbon.queue_depth").value,
            "dropped": metrics.counter("tbon.dropped").value,
        }

    def _tracer_section(self) -> Dict[str, Any]:
        tracer = self.observer.tracer
        return {
            "events": len(getattr(tracer, "events", ())),
            "dropped": getattr(tracer, "dropped", 0),
        }

    def _emit(
        self, phase: str, section: str, sample: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        if self._closed:
            return None
        now = _now_us()
        if (
            self.min_interval_us > 0.0
            and self.snapshots
            and now - self._last_emit_us < self.min_interval_us
        ):
            return None
        self._last_emit_us = now
        doc: Dict[str, Any] = {
            "format": LIVE_FORMAT,
            "kind": "snapshot",
            "seq": self.seq,
            "ts_us": now,
            "phase": phase,
            section: sample,
            "tbon": self._tbon_section(),
            "tracer": self._tracer_section(),
            "metrics": self.observer.metrics.snapshot(),
        }
        self.seq += 1
        verdict = self.health.evaluate(doc)
        doc["health"] = verdict.to_json()
        self.snapshots.append(doc)
        self._write_line(doc)
        for callback in self._callbacks:
            callback(doc)
        return doc

    # -- finalization -----------------------------------------------------

    def finalize(
        self,
        *,
        run: Optional[Any] = None,
        outcome: Optional[Any] = None,
        events: Optional[Sequence[Any]] = None,
    ) -> HealthVerdict:
        """Compute the terminal verdict, stream the final document,
        and close the feed. Idempotent: a second call returns the
        stored verdict."""
        if self.final_verdict is not None:
            return self.final_verdict
        if events is None and self.observer.enabled:
            events = list(self.observer.tracer.events)
        verdict = self.health.finalize(
            run=run,
            outcome=outcome,
            events=events,
            num_ranks=self.num_ranks,
        )
        self.final_verdict = verdict
        doc = {
            "format": LIVE_FORMAT,
            "kind": "final",
            "seq": self.seq,
            "ts_us": _now_us(),
            "windows": self.health.windows,
            "verdict": verdict.to_json(),
        }
        self._write_line(doc)
        for callback in self._callbacks:
            callback(doc)
        self.close()
        return verdict

    def exit_code(self) -> int:
        """The ``repro watch`` exit code of the final verdict."""
        verdict = self.final_verdict
        if verdict is None:
            return 0
        return EXIT_CODE_OF.get(verdict.state, 0)


# ---------------------------------------------------------------------------
# feed loading (repro watch / repro stats on an artifact)
# ---------------------------------------------------------------------------


def is_live_artifact(path: str) -> bool:
    """Does ``path`` claim to be a ``repro-live/*`` JSONL feed?

    Any version claim counts — including versions this loader does not
    support — so dispatchers route the file here and
    :func:`load_live_feed` diagnoses the unsupported version with a
    ``file:line`` message (exit 2) instead of misparsing the feed as
    some other artifact kind.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                doc = json.loads(line)
                if not isinstance(doc, dict):
                    return False
                parsed = parse_format(doc.get("format"))
                return parsed is not None and parsed[0] == "live"
    except (OSError, ValueError):
        return False
    return False


def load_live_feed(
    path: str,
) -> Tuple[
    Dict[str, Any], List[Dict[str, Any]], Optional[Dict[str, Any]]
]:
    """Parse a live feed: ``(header, snapshots, final-or-None)``.

    Raises :class:`~repro.util.errors.TraceError` on malformed lines
    or a non-live document, so the CLI can diagnose the offending
    line (exit 2 for unreadable input, as everywhere else).
    """
    header: Dict[str, Any] = {}
    snapshots: List[Dict[str, Any]] = []
    final: Optional[Dict[str, Any]] = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed feed line: {exc}"
                ) from exc
            # Family + version check with a file:line diagnosis
            # (DocError is a TraceError; unknown versions exit 2).
            validate_doc(doc, "live", path=path, lineno=lineno)
            kind = doc.get("kind")
            if kind == "header":
                header = doc
            elif kind == "snapshot":
                snapshots.append(doc)
            elif kind == "final":
                final = doc
            else:
                raise TraceError(
                    f"{path}:{lineno}: unknown feed record kind {kind!r}"
                )
    if not header and not snapshots and final is None:
        raise TraceError(f"{path}: empty live feed")
    return header, snapshots, final


def feed_exit_code(final: Optional[Mapping[str, Any]]) -> int:
    """Map a loaded feed's final verdict onto the watch exit code."""
    if final is None:
        return 0
    state = (final.get("verdict") or {}).get("state", PROGRESSING)
    return EXIT_CODE_OF.get(state, 0)


# ---------------------------------------------------------------------------
# rendering (repro watch / repro stats)
# ---------------------------------------------------------------------------


def _snapshot_row(doc: Mapping[str, Any]) -> Tuple[str, ...]:
    health = doc.get("health") or {}
    engine = doc.get("engine") or {}
    backend = doc.get("backend") or {}
    if doc.get("phase") == "engine":
        progress = f"step {engine.get('steps', '?')}"
        parked = len(engine.get("dwell_steps") or {})
        dwell = max(
            (engine.get("dwell_steps") or {}).values(), default=0
        )
        detail = f"parked {parked}, max dwell {int(dwell)}"
    else:
        progress = f"round {backend.get('round', '?')}"
        skew = backend.get("skew")
        detail = (
            f"skew {skew:.2f}x" if isinstance(skew, float) else "-"
        )
    suspects = ",".join(str(r) for r in health.get("suspects", ())) or "-"
    return (
        str(doc.get("seq", "?")),
        str(doc.get("phase", "?")),
        progress,
        detail,
        str(health.get("state", "?")),
        suspects,
    )


def render_health_table(doc: Mapping[str, Any]) -> List[str]:
    """One snapshot window as a refreshing-table block (watch mode)."""
    lines: List[str] = []
    if doc.get("kind") == "final":
        verdict = doc.get("verdict") or {}
        lines.append(
            f"final verdict: {verdict.get('state', '?')}"
            + (
                f" (roots {tuple(verdict.get('roots'))})"
                if verdict.get("roots")
                else ""
            )
        )
        for reason in verdict.get("reasons", ()):
            lines.append(f"  {reason}")
        for hop in verdict.get("blame_chain", ()):
            lines.append(f"  chain: {hop}")
        return lines
    seq, phase, progress, detail, state, suspects = _snapshot_row(doc)
    tbon = doc.get("tbon") or {}
    tracer = doc.get("tracer") or {}
    lines.append(
        f"[{seq:>4}] {phase:<8} {progress:<14} {detail:<28} "
        f"{state:<18} suspects: {suspects}"
    )
    health = doc.get("health") or {}
    for reason in health.get("reasons", ()):
        lines.append(f"       {reason}")
    if tbon.get("backlog") or tracer.get("dropped"):
        lines.append(
            f"       tbon backlog {tbon.get('backlog', 0)}, "
            f"tracer dropped {tracer.get('dropped', 0)}"
        )
    return lines


def render_health_timeline(
    snapshots: Sequence[Mapping[str, Any]],
    final: Optional[Mapping[str, Any]] = None,
) -> List[str]:
    """The health timeline table (``repro stats`` on a live feed)."""
    lines: List[str] = []
    lines.append("-- health timeline --")
    if not snapshots:
        lines.append("  (no snapshots recorded)")
    else:
        lines.append(
            f"{'seq':>5} {'phase':<8} {'progress':<14} "
            f"{'detail':<28} {'state':<18} {'suspects':<12}"
        )
        for doc in snapshots:
            seq, phase, progress, detail, state, suspects = (
                _snapshot_row(doc)
            )
            lines.append(
                f"{seq:>5} {phase:<8} {progress:<14} {detail:<28} "
                f"{state:<18} {suspects:<12}"
            )
    if final is not None:
        lines.append("")
        lines += render_health_table(final)
    return lines
