"""`repro.obs` — structured event tracing and metrics (observability).

A zero-dependency observability subsystem threaded through every layer
of the reproduction:

* :mod:`repro.obs.tracer` — structured span/event records on explicit
  clocks (wall-clock for the engine, the simulated network clock for
  the TBON and the per-rank wait-state rows) with a hard event limit
  that leaves a ``truncated`` marker behind;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms keyed by
  dotted names, generalizing :class:`repro.perf.timers.PhaseTimers`
  into one registry;
* :mod:`repro.obs.exporters` — JSONL and Chrome ``trace_event``
  exporters (a run opens directly in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.flight` — the always-on flight recorder: a bounded
  per-rank ring of the last N events, embedded in deadlock reports;
* :mod:`repro.obs.timeline` — aligns the engine's wall clock and the
  TBON's simulated clock into one unified timeline;
* :mod:`repro.obs.causal` — wait-state blame analysis: blocked-interval
  reconstruction, blocked-time attribution to root-cause ranks, blame
  chains, and the critical path (``repro blame``);
* :mod:`repro.obs.stats` — the ``repro stats`` summary tables
  (per-message-type traffic and the Figure 10(b)/11(b) five-phase
  detection-time breakdown, from an actual run rather than a model);
* :mod:`repro.obs.dist` — cross-shard distributed tracing: the trace
  context propagated through the wire codec, the worker-side observer
  spec, and the coordinator-side :class:`TraceMerger` that reconciles
  per-shard clocks into one trace;
* :mod:`repro.obs.prof` — the deterministic BSP round profiler behind
  ``repro profile`` (per-round/per-shard sections, critical-shard
  attribution, codec accounting, the ``repro-profile/1`` document);
* :mod:`repro.obs.live` / :mod:`repro.obs.health` — live telemetry:
  :class:`LiveMonitor` streams ``repro-live/1`` snapshot documents
  while a run is in flight and :class:`HealthEngine` grades each
  window PROGRESSING / SOFT-HANG / DEADLOCK-CONFIRMED (the last only
  ever with the runtime wait-for graph's agreement).

The default backend is :data:`NULL_OBSERVER`: a disabled observer with
no-op tracer/metrics, so every instrumented hot path costs exactly one
attribute check when observability is off.
"""
from repro.obs.causal import (
    BlameReport,
    BlockedInterval,
    analyze_events,
    blame_chain,
)
from repro.obs.dist import (
    COORDINATOR_SHARD,
    TraceContext,
    TraceMerger,
    WorkerObsSpec,
    make_worker_observer,
    next_run_id,
)
from repro.obs.events import (
    CLOCK_OF,
    CLOCK_SIMULATED,
    CLOCK_WALL,
    PID_COORD,
    PID_ENGINE,
    PID_TBON,
    PID_WAIT,
    TraceEvent,
    clock_of,
    pid_of_shard,
    shard_of_pid,
)
from repro.obs.exporters import (
    chrome_trace_document,
    load_run,
    openmetrics_text,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_openmetrics,
)
from repro.obs.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.health import (
    DEADLOCK_CONFIRMED,
    PROGRESSING,
    SOFT_HANG,
    VERDICT_CODE,
    VERDICT_STATES,
    HealthEngine,
    HealthVerdict,
)
from repro.obs.live import (
    LIVE_FORMAT,
    LiveMonitor,
    feed_exit_code,
    is_live_artifact,
    load_live_feed,
    render_health_table,
    render_health_timeline,
)
from repro.obs.observer import NULL_OBSERVER, Observer, make_observer
from repro.obs.prof import (
    PROFILE_FORMAT,
    ShardRoundProfiler,
    build_profile,
    render_profile,
    row_busy_seconds,
)
from repro.obs.stats import (
    render_explore_table,
    render_shard_table,
    render_summary,
    render_timeline_table,
    render_tracer_health,
)
from repro.obs.timeline import UnifiedTimeline
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "PID_ENGINE",
    "PID_TBON",
    "PID_WAIT",
    "PID_COORD",
    "CLOCK_OF",
    "CLOCK_SIMULATED",
    "CLOCK_WALL",
    "TraceEvent",
    "clock_of",
    "pid_of_shard",
    "shard_of_pid",
    "COORDINATOR_SHARD",
    "TraceContext",
    "TraceMerger",
    "WorkerObsSpec",
    "make_worker_observer",
    "next_run_id",
    "PROFILE_FORMAT",
    "ShardRoundProfiler",
    "build_profile",
    "render_profile",
    "row_busy_seconds",
    "LIVE_FORMAT",
    "LiveMonitor",
    "feed_exit_code",
    "is_live_artifact",
    "load_live_feed",
    "render_health_table",
    "render_health_timeline",
    "PROGRESSING",
    "SOFT_HANG",
    "DEADLOCK_CONFIRMED",
    "VERDICT_CODE",
    "VERDICT_STATES",
    "HealthEngine",
    "HealthVerdict",
    "Tracer",
    "NullTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Observer",
    "NULL_OBSERVER",
    "make_observer",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT_RECORDER",
    "UnifiedTimeline",
    "BlameReport",
    "BlockedInterval",
    "analyze_events",
    "blame_chain",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "load_run",
    "openmetrics_text",
    "write_openmetrics",
    "render_explore_table",
    "render_shard_table",
    "render_summary",
    "render_timeline_table",
    "render_tracer_health",
]
