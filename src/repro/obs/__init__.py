"""`repro.obs` — structured event tracing and metrics (observability).

A zero-dependency observability subsystem threaded through every layer
of the reproduction:

* :mod:`repro.obs.tracer` — structured span/event records on explicit
  clocks (wall-clock for the engine, the simulated network clock for
  the TBON) with a hard event limit;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms keyed by
  dotted names, generalizing :class:`repro.perf.timers.PhaseTimers`
  into one registry;
* :mod:`repro.obs.exporters` — JSONL and Chrome ``trace_event``
  exporters (a run opens directly in ``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.stats` — the ``repro stats`` summary tables
  (per-message-type traffic and the Figure 10(b)/11(b) five-phase
  detection-time breakdown, from an actual run rather than a model).

The default backend is :data:`NULL_OBSERVER`: a disabled observer with
no-op tracer/metrics, so every instrumented hot path costs exactly one
attribute check when observability is off.
"""
from repro.obs.events import PID_ENGINE, PID_TBON, TraceEvent
from repro.obs.exporters import (
    chrome_trace_document,
    load_run,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.observer import NULL_OBSERVER, Observer, make_observer
from repro.obs.stats import render_explore_table, render_summary
from repro.obs.tracer import NullTracer, Tracer

__all__ = [
    "PID_ENGINE",
    "PID_TBON",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Observer",
    "NULL_OBSERVER",
    "make_observer",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "load_run",
    "render_explore_table",
    "render_summary",
]
