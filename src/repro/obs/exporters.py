"""Exporters: JSONL event streams and Chrome ``trace_event`` files.

The Chrome exporter writes the *object* form of the trace-event format
(a top-level dict with ``traceEvents``), which both ``chrome://tracing``
and Perfetto load directly. Run metadata — workload name, verdict, and
the full metrics snapshot — rides along under the top-level ``repro``
key (the format explicitly allows extra keys), so one file is both the
visual trace and the machine-readable input of ``repro stats``.
"""
from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.events import (
    TraceEvent,
    process_name_metadata,
    shard_of_pid,
)
from repro.obs.tracer import Tracer
from repro.util.errors import TraceError

#: Version of the ``repro`` metadata block inside trace files.
RUN_FORMAT_VERSION = 1


def chrome_trace_document(
    tracer: Tracer, *, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full Chrome trace-event document for one run."""
    shard_names = {
        event.pid: "shard %d worker (reconciled wall clock)" % shard
        for event in tracer.events
        for shard in (shard_of_pid(event.pid),)
        if shard is not None
    }
    events = process_name_metadata(shard_names) + list(tracer.events)
    doc: Dict[str, Any] = {
        "traceEvents": [event.to_json() for event in events],
        "displayTimeUnit": "ms",
        "repro": {
            "version": RUN_FORMAT_VERSION,
            "dropped_events": tracer.dropped,
            **(metadata or {}),
        },
    }
    return doc


def write_chrome_trace(
    path: str, tracer: Tracer, *, metadata: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_document(tracer, metadata=metadata), handle)
        handle.write("\n")


def write_jsonl(path: str, tracer: Tracer) -> None:
    """One event per line — greppable, streamable, append-friendly."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in tracer.events:
            handle.write(json.dumps(event.to_json()) + "\n")


def read_jsonl(path: str) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed event record: {exc}"
                ) from exc
    return events


def load_run(path: str) -> Dict[str, Any]:
    """Load a ``--obs-out`` trace file, validating the ``repro`` block."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise TraceError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise TraceError("not a Chrome trace-event document")
    meta = doc.get("repro")
    if not isinstance(meta, dict) or "metrics" not in meta:
        raise TraceError(
            "no 'repro' run metadata (was this written by --obs-out?)"
        )
    return doc
