"""Exporters: JSONL streams, Chrome ``trace_event`` files, OpenMetrics.

The Chrome exporter writes the *object* form of the trace-event format
(a top-level dict with ``traceEvents``), which both ``chrome://tracing``
and Perfetto load directly. Run metadata — workload name, verdict, and
the full metrics snapshot — rides along under the top-level ``repro``
key (the format explicitly allows extra keys), so one file is both the
visual trace and the machine-readable input of ``repro stats``.

:func:`openmetrics_text` renders a metrics snapshot in the OpenMetrics
/ Prometheus text exposition format (dependency-free): counters get
the ``_total`` suffix, gauges export value plus high-water mark,
histogram summaries become OpenMetrics ``summary`` families with
``quantile`` labels. ``repro watch --openmetrics FILE`` scrapes the
live monitor through it.
"""
from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.events import (
    TraceEvent,
    process_name_metadata,
    shard_of_pid,
)
from repro.obs.tracer import Tracer
from repro.util.errors import TraceError

#: Version of the ``repro`` metadata block inside trace files.
RUN_FORMAT_VERSION = 1


def chrome_trace_document(
    tracer: Tracer, *, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full Chrome trace-event document for one run."""
    shard_names = {
        event.pid: "shard %d worker (reconciled wall clock)" % shard
        for event in tracer.events
        for shard in (shard_of_pid(event.pid),)
        if shard is not None
    }
    events = process_name_metadata(shard_names) + list(tracer.events)
    doc: Dict[str, Any] = {
        "traceEvents": [event.to_json() for event in events],
        "displayTimeUnit": "ms",
        "repro": {
            "version": RUN_FORMAT_VERSION,
            "dropped_events": tracer.dropped,
            **(metadata or {}),
        },
    }
    return doc


def write_chrome_trace(
    path: str, tracer: Tracer, *, metadata: Optional[Dict[str, Any]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace_document(tracer, metadata=metadata), handle)
        handle.write("\n")


def write_jsonl(path: str, tracer: Tracer) -> None:
    """One event per line — greppable, streamable, append-friendly."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in tracer.events:
            handle.write(json.dumps(event.to_json()) + "\n")


def read_jsonl(path: str) -> List[TraceEvent]:
    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(json.loads(line)))
            except (ValueError, KeyError, TypeError) as exc:
                raise TraceError(
                    f"{path}:{lineno}: malformed event record: {exc}"
                ) from exc
    return events


#: OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
_OM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Summary quantiles exported from histogram summaries.
_OM_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def _om_name(name: str, prefix: str) -> str:
    """Sanitize a dotted instrument name into an OpenMetrics name."""
    clean = _OM_INVALID.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return prefix + clean


def _om_value(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def openmetrics_text(
    snapshot: Mapping[str, Any],
    *,
    prefix: str = "repro_",
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """A :meth:`MetricsRegistry.snapshot` in OpenMetrics text format.

    ``extra_gauges`` lets callers append computed gauges (the health
    engine's verdict code, per-window dwell figures) to the scrape
    without registering them as instruments.
    """
    lines: List[str] = []
    for name, value in sorted(dict(snapshot.get("counters", {})).items()):
        om = _om_name(name, prefix)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_om_value(value)}")
    gauges: Dict[str, Any] = dict(snapshot.get("gauges", {}))
    for name, g in sorted(gauges.items()):
        om = _om_name(name, prefix)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_om_value(g['value'])}")
        lines.append(f"# TYPE {om}_max gauge")
        lines.append(f"{om}_max {_om_value(g['max'])}")
    for name, summary in sorted(
        dict(snapshot.get("histograms", {})).items()
    ):
        om = _om_name(name, prefix)
        lines.append(f"# TYPE {om} summary")
        for key, quantile in _OM_QUANTILES:
            if key in summary:
                lines.append(
                    f'{om}{{quantile="{quantile}"}} '
                    f"{_om_value(summary[key])}"
                )
        lines.append(f"{om}_count {_om_value(summary.get('count', 0))}")
        lines.append(f"{om}_sum {_om_value(summary.get('sum', 0.0))}")
    for name, value in sorted(dict(extra_gauges or {}).items()):
        om = _om_name(name, prefix)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_om_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: str,
    snapshot: Mapping[str, Any],
    *,
    prefix: str = "repro_",
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            openmetrics_text(
                snapshot, prefix=prefix, extra_gauges=extra_gauges
            )
        )


def load_run(path: str) -> Dict[str, Any]:
    """Load a ``--obs-trace`` artifact, validating the ``repro`` block."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except ValueError as exc:
            raise TraceError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise TraceError("not a Chrome trace-event document")
    meta = doc.get("repro")
    if not isinstance(meta, dict) or "metrics" not in meta:
        raise TraceError(
            "no 'repro' run metadata (was this written by --obs-trace?)"
        )
    return doc
