"""The BSP round profiler for the sharded backend.

Each shard worker runs a :class:`ShardRoundProfiler` that times the
five sections of a BSP round — ``recv`` (delivering decoded wire
messages), ``decode``, ``step`` (pumping the local network), ``encode``
(wire-encoding outbound messages), ``flush`` — plus codec byte/message
accounting, and emits per-round spans on the worker's tracer (pid
``PID_SHARD_BASE + shard_id``). The records stream back with the
observability frames and :func:`build_profile` folds them, together
with the coordinator's own round spans, into the versioned
``repro-profile/1`` document that ``repro profile`` renders:

* per-round **critical-shard attribution** — which shard's busy time
  bounded that round of ``modeled_latency_seconds`` (the max term in
  ``coordinator_busy + max(shard_busy)``, viewed round by
  round), and
* per-round **skew** — max/mean busy across shards, the imbalance
  signal the ROADMAP's adaptive re-sharding item needs (also observed
  into the ``obs.shard.skew`` histogram).
"""
from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.docs import format_tag
from repro.obs.events import TraceEvent, pid_of_shard
from repro.obs.observer import Observer

#: Timed sections of one BSP round, in execution order.
ROUND_SECTIONS = ("recv", "decode", "step", "encode", "flush")

#: Version tag of the profile document (registry-owned).
PROFILE_FORMAT = format_tag("profile")


# Row layout of one in-flight round (see ShardRoundProfiler). A flat
# list with integer indexes keeps the per-round hot path to list-index
# arithmetic; take_records materializes the dict form off the timed
# path.
_R_ROUND = 0
_R_START = 1
_R_RECV = 2
_R_DECODE = 3
_R_STEP = 4
_R_ENCODE = 5
_R_FLUSH = 6
_R_MSGS_IN = 7
_R_BYTES_IN = 8
_R_MSGS_OUT = 9
_R_BYTES_OUT = 10
_R_END = 11
_R_SOURCES = 12

_SECTION_SLOT = {
    "recv": _R_RECV,
    "decode": _R_DECODE,
    "step": _R_STEP,
    "encode": _R_ENCODE,
    "flush": _R_FLUSH,
}


class ShardRoundProfiler:
    """Per-round section timing + codec accounting inside one worker.

    Only constructed when the worker observer is enabled; the disabled
    path never touches this class, keeping the zero-cost default. The
    in-round methods run inside the busy-time windows the <5% tracing
    bound is scored on, so they do nothing but clock reads and list
    writes; the round/section *trace spans* are not emitted here at
    all — :func:`spans_from_records` rebuilds them on the coordinator
    from the streamed records, after the timing accounting closes.
    """

    def __init__(self, shard_id: int, observer: Observer) -> None:
        self.shard_id = shard_id
        self.observer = observer
        self.pid = pid_of_shard(shard_id)
        self._rows: List[list] = []
        self._row: Optional[list] = None
        self._round_no = 0
        self._wire_ctx: Optional[Tuple[int, int, int, int]] = None
        self._slot = 0
        self._section_t0 = 0.0

    # -- round lifecycle ------------------------------------------------

    def begin_round(self, round_no: int) -> None:
        self._round_no = round_no
        self._wire_ctx = None
        self._row = [
            round_no, self.observer.tracer.now_us(),
            0.0, 0.0, 0.0, 0.0, 0.0,   # section seconds
            0, 0, 0, 0,                # msgs/bytes in/out
            0.0,                       # end_us
            None,                      # sources (allocated on demand)
        ]

    def begin_section(self, name: str) -> None:
        self._slot = _SECTION_SLOT[name]
        self._section_t0 = time.perf_counter()

    def end_section(self) -> None:
        row = self._row
        if row is None or not self._slot:
            return
        row[self._slot] += time.perf_counter() - self._section_t0
        self._slot = 0

    def note_in(self, context: Any, size: int) -> None:
        """Account one inbound message (with its wire context, if any)."""
        row = self._row
        if row is None:
            return
        row[_R_MSGS_IN] += 1
        row[_R_BYTES_IN] += size
        if context is not None:
            # context = (run_id, shard_id, round, parent_span); the
            # coordinator encodes shard_id -1 for first-layer traffic.
            sources = row[_R_SOURCES]
            if sources is None:
                sources = row[_R_SOURCES] = {}
            src = context[1]
            sources[src] = sources.get(src, 0) + 1

    def note_out(self, encode_seconds: float, size: int) -> None:
        """Account one outbound message's encode time + wire size."""
        row = self._row
        if row is None:
            return
        row[_R_MSGS_OUT] += 1
        row[_R_BYTES_OUT] += size
        row[_R_ENCODE] += encode_seconds

    def wire_context(self, run_id: int) -> Tuple[int, int, int, int]:
        """The context tuple outbound messages carry this round
        (constant within a round, so it is built once and shared)."""
        ctx = self._wire_ctx
        if ctx is None:
            ctx = self._wire_ctx = (
                run_id, self.shard_id, self._round_no, 0
            )
        return ctx

    def end_round(self) -> None:
        """Close the round's row; everything else happens off-path."""
        row = self._row
        if row is None:
            return
        row[_R_END] = self.observer.tracer.now_us()
        self._rows.append(row)
        self._row = None

    def take_rows(self) -> List[list]:
        """Drain the raw per-round rows for the next streamed frame.

        Frames ship the flat rows — a third the pickle objects of the
        dict form, and the coordinator unpickles frames inside its
        timed reply loop; :func:`rows_to_records` materializes the
        dict records after the timing accounting closes.
        """
        rows, self._rows = self._rows, []
        return rows

    def take_records(self) -> List[Dict[str, Any]]:
        """Drain the per-round records in their dict form."""
        return rows_to_records(self.shard_id, self.take_rows())


def rows_to_records(
    shard_id: int, rows: Sequence[Sequence[Any]]
) -> List[Dict[str, Any]]:
    """Materialize profiler rows into the record dicts the profile
    document builder consumes."""
    out = []
    for row in rows:
        sources = row[_R_SOURCES] or {}
        out.append({
            "round": row[_R_ROUND],
            "shard": shard_id,
            "start_us": row[_R_START],
            "end_us": row[_R_END],
            "recv_s": row[_R_RECV],
            "decode_s": row[_R_DECODE],
            "step_s": row[_R_STEP],
            "encode_s": row[_R_ENCODE],
            "flush_s": row[_R_FLUSH],
            "busy_s": (
                row[_R_RECV] + row[_R_DECODE] + row[_R_STEP]
                + row[_R_ENCODE] + row[_R_FLUSH]
            ),
            "msgs_in": row[_R_MSGS_IN],
            "bytes_in": row[_R_BYTES_IN],
            "msgs_out": row[_R_MSGS_OUT],
            "bytes_out": row[_R_BYTES_OUT],
            "sources": {
                ("c" if src < 0 else "s%d" % src): n
                for src, n in sorted(sources.items())
            },
        })
    return out


def row_anchor(row: Sequence[Any]) -> Tuple[int, float]:
    """The ``(round, start_us)`` clock anchor of one profiler row."""
    return (row[_R_ROUND], row[_R_START])


def row_busy_seconds(row: Sequence[Any]) -> float:
    """Total busy seconds of one profiler row (all timed sections).

    The live monitor folds streamed rows into per-shard busy totals on
    the coordinator without materializing the dict records."""
    return (
        row[_R_RECV] + row[_R_DECODE] + row[_R_STEP]
        + row[_R_ENCODE] + row[_R_FLUSH]
    )


def spans_from_records(
    shard_id: int,
    records: Sequence[Mapping[str, Any]],
    offset_us: float = 0.0,
) -> List["TraceEvent"]:
    """Rebuild the round + section trace spans from streamed records.

    Emitting these spans inside the worker would put ~6 trace-event
    constructions per round on the scored busy path; the records
    already carry every field, so the coordinator synthesizes the spans
    after timing closes, rebased by the shard's clock ``offset_us``.
    One enclosing span per round, with the sections nested inside it
    laid end to end in execution order (encode time is really
    interleaved with step/flush; presenting it as one consolidated
    sub-span keeps the track readable and the totals exact).
    """
    pid = pid_of_shard(shard_id)
    spans: List[TraceEvent] = []
    for rec in records:
        start = rec["start_us"] + offset_us
        spans.append(
            TraceEvent(
                name="round %d" % rec["round"],
                cat="shard.round",
                ph="X",
                ts=start,
                pid=pid,
                tid=0,
                dur=max(rec["end_us"] - rec["start_us"], 0.0),
                args={
                    "round": rec["round"],
                    "msgs_in": rec["msgs_in"],
                    "msgs_out": rec["msgs_out"],
                },
            )
        )
        cursor = start
        for section in ROUND_SECTIONS:
            dur_us = rec[section + "_s"] * 1e6
            if dur_us <= 0.0:
                continue
            spans.append(
                TraceEvent(
                    name=section,
                    cat="shard.section",
                    ph="X",
                    ts=cursor,
                    pid=pid,
                    tid=1,
                    dur=dur_us,
                    args={"round": rec["round"]},
                )
            )
            cursor += dur_us
    return spans


# ----------------------------------------------------------------------
# profile document
# ----------------------------------------------------------------------


def _round_entry(
    round_no: int,
    shard_recs: Mapping[int, Mapping[str, Any]],
    coord: Mapping[str, Any],
) -> Dict[str, Any]:
    busy = {sid: rec["busy_s"] for sid, rec in shard_recs.items()}
    critical = min(
        (sid for sid in busy if busy[sid] == max(busy.values())),
        default=None,
    )
    mean_busy = sum(busy.values()) / len(busy) if busy else 0.0
    skew = (max(busy.values()) / mean_busy) if mean_busy > 0 else 1.0
    return {
        "round": round_no,
        "critical_shard": critical,
        "skew": skew,
        "coordinator": {
            "span_ms": coord.get("span_s", 0.0) * 1e3,
            "route_ms": coord.get("route_s", 0.0) * 1e3,
        },
        "shards": {
            str(sid): {
                "busy_ms": rec["busy_s"] * 1e3,
                **{
                    s + "_ms": rec[s + "_s"] * 1e3
                    for s in ROUND_SECTIONS
                },
                "msgs_in": rec["msgs_in"],
                "msgs_out": rec["msgs_out"],
                "bytes_in": rec["bytes_in"],
                "bytes_out": rec["bytes_out"],
                "sources": dict(rec["sources"]),
            }
            for sid, rec in sorted(shard_recs.items())
        },
    }


def build_profile(
    *,
    round_records: Mapping[int, Sequence[Mapping[str, Any]]],
    coord_rounds: Sequence[Mapping[str, Any]],
    plan: Sequence[Mapping[str, Any]],
    timing: Mapping[str, Any],
    ranks: int,
    fan_in: int,
    dropped: Mapping[int, int],
    events: Mapping[int, int],
    decode_totals: Optional[Mapping[str, float]] = None,
    observer: Optional[Observer] = None,
) -> Dict[str, Any]:
    """Fold streamed round records into a ``repro-profile/1`` document.

    ``round_records`` maps shard id → its round records;
    ``coord_rounds`` is the coordinator's own per-round accounting
    (``round``, ``span_s``, ``route_s``). When ``observer`` is given,
    per-round skew is observed into the ``obs.shard.skew`` histogram.
    """
    by_round: Dict[int, Dict[int, Mapping[str, Any]]] = {}
    for sid, recs in round_records.items():
        for rec in recs:
            by_round.setdefault(rec["round"], {})[sid] = rec
    coord_by_round = {c["round"]: c for c in coord_rounds}

    rounds = [
        _round_entry(rno, by_round[rno], coord_by_round.get(rno, {}))
        for rno in sorted(by_round)
    ]
    if observer is not None and observer.enabled:
        for entry in rounds:
            observer.metrics.observe("obs.shard.skew", entry["skew"])

    shard_ids = sorted(round_records)
    shards: Dict[str, Any] = {}
    for sid in shard_ids:
        recs = round_records[sid]
        critical_rounds = [
            e["round"] for e in rounds if e["critical_shard"] == sid
        ]
        shards[str(sid)] = {
            "busy_ms": sum(r["busy_s"] for r in recs) * 1e3,
            **{
                s + "_ms": sum(r[s + "_s"] for r in recs) * 1e3
                for s in ROUND_SECTIONS
            },
            "msgs_in": sum(r["msgs_in"] for r in recs),
            "msgs_out": sum(r["msgs_out"] for r in recs),
            "bytes_in": sum(r["bytes_in"] for r in recs),
            "bytes_out": sum(r["bytes_out"] for r in recs),
            "critical_rounds": critical_rounds,
            "dropped_events": dropped.get(sid, 0),
            "events": events.get(sid, 0),
        }

    total_busy = {
        sid: sum(r["busy_s"] for r in round_records[sid])
        for sid in shard_ids
    }
    critical_shard = min(
        (s for s in total_busy if total_busy[s] == max(total_busy.values())),
        default=None,
    )

    codec = {
        "encode_ms": sum(
            r["encode_s"] for recs in round_records.values() for r in recs
        ) * 1e3,
        "decode_ms": sum(
            r["decode_s"] for recs in round_records.values() for r in recs
        ) * 1e3,
        "bytes_in": sum(s["bytes_in"] for s in shards.values()),
        "bytes_out": sum(s["bytes_out"] for s in shards.values()),
        "messages": sum(s["msgs_in"] for s in shards.values()),
    }
    if decode_totals:
        codec["coordinator_decode_ms"] = (
            decode_totals.get("decode_s", 0.0) * 1e3
        )

    return {
        "format": PROFILE_FORMAT,
        "run": {
            "shards": len(shard_ids),
            "rounds": len(rounds),
            "ranks": ranks,
            "fan_in": fan_in,
        },
        "plan": list(plan),
        "rounds": rounds,
        "shards": shards,
        "codec": codec,
        "timing": dict(timing),
        "critical_shard": critical_shard,
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def render_profile(doc: Mapping[str, Any]) -> List[str]:
    """Human-readable tables for a ``repro-profile/1`` document."""
    run = doc.get("run", {})
    timing = doc.get("timing", {})
    lines = [
        "-- sharded run profile --",
        "shards: %d   rounds: %d   ranks: %d   fan-in: %d" % (
            run.get("shards", 0), run.get("rounds", 0),
            run.get("ranks", 0), run.get("fan_in", 0),
        ),
    ]
    if timing:
        lines.append(
            "modeled latency: %.3f ms   coordinator busy: %.3f ms" % (
                timing.get("modeled_latency_seconds", 0.0) * 1e3,
                timing.get("coordinator_busy_seconds", 0.0) * 1e3,
            )
        )
    if doc.get("critical_shard") is not None:
        lines.append("critical shard (whole run): s%d" % doc["critical_shard"])

    shards = doc.get("shards", {})
    if shards:
        lines.append("")
        lines.append("-- per-shard totals --")
        lines.append(
            f"{'shard':<7} {'busy ms':>10} {'recv':>8} {'decode':>8} "
            f"{'step':>8} {'encode':>8} {'flush':>8} {'msgs in':>9} "
            f"{'msgs out':>9} {'crit rounds':>12} {'dropped':>8}"
        )
        for sid in sorted(shards, key=int):
            s = shards[sid]
            lines.append(
                f"{'s' + sid:<7} {s['busy_ms']:>10.3f} "
                f"{s['recv_ms']:>8.3f} {s['decode_ms']:>8.3f} "
                f"{s['step_ms']:>8.3f} {s['encode_ms']:>8.3f} "
                f"{s['flush_ms']:>8.3f} {s['msgs_in']:>9,} "
                f"{s['msgs_out']:>9,} {len(s['critical_rounds']):>12} "
                f"{s['dropped_events']:>8,}"
            )

    rounds = doc.get("rounds", [])
    if rounds:
        lines.append("")
        lines.append("-- critical-shard timeline (per BSP round) --")
        lines.append(
            f"{'round':<7} {'critical':>9} {'busy ms':>10} {'skew':>7} "
            f"{'coord ms':>10} {'route ms':>10}"
        )
        for entry in rounds:
            crit = entry["critical_shard"]
            crit_label = "s%d" % crit if crit is not None else "-"
            busy = 0.0
            if crit is not None:
                busy = entry["shards"][str(crit)]["busy_ms"]
            coord = entry.get("coordinator", {})
            lines.append(
                f"{entry['round']:<7} {crit_label:>9} {busy:>10.3f} "
                f"{entry['skew']:>7.2f} "
                f"{coord.get('span_ms', 0.0):>10.3f} "
                f"{coord.get('route_ms', 0.0):>10.3f}"
            )

    codec = doc.get("codec", {})
    if codec:
        lines.append("")
        lines.append("-- codec breakdown --")
        lines.append(
            "encode: %.3f ms   decode: %.3f ms   messages: %s   "
            "bytes in/out: %s / %s" % (
                codec.get("encode_ms", 0.0),
                codec.get("decode_ms", 0.0),
                f"{codec.get('messages', 0):,}",
                f"{codec.get('bytes_in', 0):,}",
                f"{codec.get('bytes_out', 0):,}",
            )
        )
    return lines
