"""The health engine: rule evaluation over live telemetry snapshots.

:class:`HealthEngine` consumes the snapshot stream a
:class:`~repro.obs.live.LiveMonitor` produces and emits a three-valued
verdict per evaluation window:

* ``PROGRESSING`` — every rank made progress recently enough;
* ``SOFT-HANG`` — at least one rank's dwell since last progress sits
  above an adaptive percentile of its *own* history (with suspect
  ranks and imbalance attribution: which peers the suspects wait on,
  and — at finalization — the :mod:`repro.obs.causal` blame chain);
* ``DEADLOCK-CONFIRMED`` — emitted by :meth:`finalize` **only** when
  the runtime wait-for graph (the distributed detector's outcome)
  reports a deadlock. Live windows never escalate past ``SOFT-HANG``
  on their own, so a stalled-but-live run is never misreported as
  deadlocked; the property suite in
  ``tests/property/test_live_verdicts.py`` pins this lattice.

Secondary rules attach alarm reasons without changing the state on
their own: shard skew above a threshold, coordinator backpressure
(pending batch depth), and tracer drop-rate alarms.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram

#: The verdict lattice, in escalation order.
PROGRESSING = "PROGRESSING"
SOFT_HANG = "SOFT-HANG"
DEADLOCK_CONFIRMED = "DEADLOCK-CONFIRMED"

VERDICT_STATES = (PROGRESSING, SOFT_HANG, DEADLOCK_CONFIRMED)

#: Numeric code per state (exported as an OpenMetrics gauge).
VERDICT_CODE = {PROGRESSING: 0, SOFT_HANG: 1, DEADLOCK_CONFIRMED: 2}


@dataclass
class HealthVerdict:
    """One evaluation window's (or the final) health verdict."""

    state: str = PROGRESSING
    #: Ranks suspected of stalling (SOFT-HANG) or deadlocked
    #: (DEADLOCK-CONFIRMED: the runtime WFG's deadlocked set).
    suspects: Tuple[int, ...] = ()
    #: WFG root-cause ranks; only populated on DEADLOCK-CONFIRMED.
    roots: Tuple[int, ...] = ()
    #: Human-readable rule firings for this window.
    reasons: Tuple[str, ...] = ()
    #: suspect rank -> the peer it is waiting on (imbalance
    #: attribution; None when the blocked op has no single peer).
    waiting_on: Dict[int, Optional[int]] = field(default_factory=dict)
    #: Blame chain lines (obs/causal.py), final verdicts only.
    blame_chain: Tuple[str, ...] = ()

    @property
    def code(self) -> int:
        return VERDICT_CODE[self.state]

    def to_json(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "code": self.code,
            "suspects": list(self.suspects),
            "roots": list(self.roots),
            "reasons": list(self.reasons),
            "waiting_on": {
                str(rank): peer for rank, peer in self.waiting_on.items()
            },
            "blame_chain": list(self.blame_chain),
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "HealthVerdict":
        return cls(
            state=str(doc.get("state", PROGRESSING)),
            suspects=tuple(doc.get("suspects", ())),
            roots=tuple(doc.get("roots", ())),
            reasons=tuple(doc.get("reasons", ())),
            waiting_on={
                int(rank): peer
                for rank, peer in dict(doc.get("waiting_on", {})).items()
            },
            blame_chain=tuple(doc.get("blame_chain", ())),
        )


class HealthEngine:
    """Stateful rule evaluation over the live snapshot stream.

    Per-rank stall detection is adaptive: each rank's dwell (engine
    steps since it last made progress) is judged against a percentile
    of that rank's *own* dwell history, so a rank that always waits
    long (a straggler's partner) needs a genuinely unusual wait to
    become a suspect, while a normally-busy rank trips early. A hard
    floor keeps tiny histories from alarming on noise.
    """

    def __init__(
        self,
        *,
        stall_percentile: float = 95.0,
        stall_factor: float = 4.0,
        stall_floor_steps: int = 64,
        min_history: int = 4,
        skew_threshold: float = 4.0,
        backpressure_depth: int = 4096,
        drop_rate_threshold: float = 0.01,
    ) -> None:
        self.stall_percentile = stall_percentile
        self.stall_factor = stall_factor
        self.stall_floor_steps = stall_floor_steps
        self.min_history = min_history
        self.skew_threshold = skew_threshold
        self.backpressure_depth = backpressure_depth
        self.drop_rate_threshold = drop_rate_threshold
        #: Per-rank dwell history (every window's dwell, 0 when the
        #: rank was runnable/done). Uses the cached-sort histogram so
        #: the per-tick percentile query stays cheap.
        self._dwell: Dict[int, Histogram] = {}
        self._last_dropped = 0
        self._last_events = 0
        self.windows = 0
        self.last_verdict = HealthVerdict()

    # -- per-window evaluation -------------------------------------------

    def evaluate(self, snapshot: Mapping[str, Any]) -> HealthVerdict:
        """Evaluate one snapshot window. Never returns DEADLOCK —
        live windows escalate at most to SOFT-HANG; only
        :meth:`finalize` may confirm a deadlock (with the WFG)."""
        self.windows += 1
        reasons: List[str] = []
        suspects: List[int] = []
        waiting_on: Dict[int, Optional[int]] = {}

        engine = snapshot.get("engine") or {}
        dwell_steps: Mapping[Any, Any] = engine.get("dwell_steps") or {}
        blocked: Mapping[Any, Any] = engine.get("blocked") or {}
        num_ranks = engine.get("ranks")
        if num_ranks:
            dwell_by_rank = {
                int(rank): float(steps)
                for rank, steps in dwell_steps.items()
            }
            for rank in range(int(num_ranks)):
                dwell = dwell_by_rank.get(rank, 0.0)
                hist = self._dwell.get(rank)
                if hist is None:
                    hist = self._dwell[rank] = Histogram()
                threshold = float(self.stall_floor_steps)
                if hist.count >= self.min_history:
                    adaptive = (
                        hist.percentile(self.stall_percentile)
                        * self.stall_factor
                    )
                    threshold = max(threshold, adaptive)
                if dwell > threshold:
                    suspects.append(rank)
                    info = blocked.get(rank) or blocked.get(str(rank)) or {}
                    waiting_on[rank] = info.get("peer")
                    reasons.append(
                        f"rank {rank} stalled {int(dwell)} steps in "
                        f"{info.get('op', '?')} "
                        f"(adaptive threshold {threshold:.0f})"
                    )
                # Judge first, then observe: a stall must not inflate
                # its own threshold within the same window.
                hist.observe(dwell)

        backend = snapshot.get("backend") or {}
        skew = backend.get("skew")
        if skew is not None and skew > self.skew_threshold:
            reasons.append(
                f"shard skew {skew:.2f}x exceeds "
                f"{self.skew_threshold:.1f}x (imbalanced shards)"
            )
        pending = backend.get("pending") or ()
        worst = max(pending, default=0)
        if worst > self.backpressure_depth:
            reasons.append(
                f"backpressure: {worst} pending wire messages to one "
                f"shard (threshold {self.backpressure_depth})"
            )

        tracer = snapshot.get("tracer") or {}
        dropped = int(tracer.get("dropped", 0))
        events = int(tracer.get("events", 0))
        d_dropped = dropped - self._last_dropped
        d_events = (events + dropped) - self._last_events
        if d_dropped > 0 and d_events > 0:
            rate = d_dropped / d_events
            if rate > self.drop_rate_threshold:
                reasons.append(
                    f"tracer dropping {rate * 100.0:.1f}% of events "
                    "(raise trace_limit)"
                )
        self._last_dropped = dropped
        self._last_events = events + dropped

        verdict = HealthVerdict(
            state=SOFT_HANG if suspects else PROGRESSING,
            suspects=tuple(suspects),
            reasons=tuple(reasons),
            waiting_on=waiting_on,
        )
        self.last_verdict = verdict
        return verdict

    # -- finalization -----------------------------------------------------

    def finalize(
        self,
        *,
        run: Optional[Any] = None,
        outcome: Optional[Any] = None,
        events: Optional[Sequence[Any]] = None,
        num_ranks: Optional[int] = None,
    ) -> HealthVerdict:
        """The terminal verdict, cross-checked against the runtime WFG.

        ``DEADLOCK-CONFIRMED`` requires ``outcome`` (the distributed
        detector's :class:`DistributedOutcome`) to report a deadlock —
        the runtime wait-for graph IS the confirmation. A manifestly
        hung run without a detector outcome stays ``SOFT-HANG`` with
        an "awaiting WFG confirmation" reason. ``events`` (wait-state
        trace events) add the blame chain when available.
        """
        if outcome is not None and getattr(outcome, "has_deadlock", False):
            roots = tuple(outcome.deadlocked)
            reasons = [
                "runtime WFG confirms a deadlock cycle rooted at ranks "
                f"{roots}"
            ]
            chain: Tuple[str, ...] = ()
            if events:
                from repro.obs.causal import analyze_events

                report = analyze_events(
                    list(events), num_ranks=num_ranks
                )
                chain = tuple(report.chain)
                if set(report.root_causes) != set(roots) and (
                    report.root_causes
                ):
                    reasons.append(
                        "note: blame reconstruction roots "
                        f"{tuple(report.root_causes)} differ"
                    )
            verdict = HealthVerdict(
                state=DEADLOCK_CONFIRMED,
                suspects=roots,
                roots=roots,
                reasons=tuple(reasons),
                blame_chain=chain,
            )
        elif run is not None and getattr(run, "deadlocked", False):
            hung = getattr(run, "hung", {}) or {}
            verdict = HealthVerdict(
                state=SOFT_HANG,
                suspects=tuple(sorted(hung)),
                reasons=(
                    "runtime hung but no detector outcome — awaiting "
                    "WFG confirmation",
                ),
            )
        elif self.last_verdict.state == SOFT_HANG:
            verdict = HealthVerdict(
                state=SOFT_HANG,
                suspects=self.last_verdict.suspects,
                reasons=self.last_verdict.reasons
                + ("run ended with stall suspects outstanding",),
                waiting_on=dict(self.last_verdict.waiting_on),
            )
        else:
            verdict = HealthVerdict(
                state=PROGRESSING,
                reasons=(f"{self.windows} window(s), no rule fired",),
            )
        self.last_verdict = verdict
        return verdict
