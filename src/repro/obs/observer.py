"""The observer: one handle bundling tracer + metrics.

Every instrumented component takes an :class:`Observer` (defaulting to
:data:`NULL_OBSERVER`). The contract for hot paths is::

    if obs.enabled:
        obs.metrics.inc(...)
        obs.tracer.instant(...)

so a disabled run pays one attribute check per instrumentation site.
Call sites off the hot path may use the tracer/metrics unguarded — the
null backends are inert.
"""
from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, Tracer


class Observer:
    """Tracing + metrics behind a single enabled flag."""

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(
        self,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if enabled:
            self.tracer.bind_metrics(self.metrics)


#: The default backend: disabled, with inert tracer and metrics.
NULL_OBSERVER = Observer(
    tracer=NullTracer(), metrics=NullMetricsRegistry(), enabled=False
)


def make_observer(enabled: bool = True) -> Observer:
    """A live observer (or the shared null one when disabled)."""
    if not enabled:
        return NULL_OBSERVER
    return Observer()
