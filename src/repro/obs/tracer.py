"""The tracer: append-only structured event recording.

:class:`Tracer` records :class:`~repro.obs.events.TraceEvent` objects;
call sites provide timestamps explicitly (the TBON passes its simulated
clock) or fall back to the wall clock via :meth:`Tracer.now_us`. A hard
event limit bounds memory on pathological runs: past the limit events
are dropped and counted, never silently — the first drop appends one
final ``truncated`` instant marker so the artifact itself records that
it is incomplete, and when a metrics registry is bound via
:meth:`Tracer.bind_metrics` every drop also bumps the
``obs.tracer.dropped`` counter surfaced by ``repro stats``.

:class:`NullTracer` is the disabled backend: every method is a no-op
and ``enabled`` is False, so instrumented hot paths can guard with one
attribute check.
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import TraceEvent

#: Default cap on recorded events (drops are counted, not silent).
DEFAULT_EVENT_LIMIT = 250_000


class Tracer:
    """Records structured events with explicit or wall-clock stamps."""

    enabled = True

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT) -> None:
        if limit <= 0:
            raise ValueError("event limit must be positive")
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._flushed = 0
        self._metrics = None
        self._epoch = time.perf_counter()

    def bind_metrics(self, metrics) -> None:
        """Mirror drop counts into ``obs.tracer.dropped`` on ``metrics``."""
        self._metrics = metrics

    # -- clock ----------------------------------------------------------

    def now_us(self) -> float:
        """Wall-clock microseconds since this tracer was created."""
        return (time.perf_counter() - self._epoch) * 1e6

    # -- recording ------------------------------------------------------

    def _push(self, event: TraceEvent) -> None:
        if self._flushed + len(self.events) >= self.limit:
            if self.dropped == 0:
                # One final marker, past the cap, so readers of the
                # artifact can tell truncation from a clean ending.
                self.events.append(
                    TraceEvent(
                        name="truncated",
                        cat="tracer",
                        ph="i",
                        ts=event.ts,
                        pid=event.pid,
                        tid=event.tid,
                        args={"limit": self.limit},
                    )
                )
            self.dropped += 1
            if self._metrics is not None:
                self._metrics.inc("obs.tracer.dropped")
            return
        self.events.append(event)

    def instant(
        self,
        name: str,
        *,
        cat: str,
        pid: int,
        tid: int,
        ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A zero-duration event (phase ``"i"``)."""
        self._push(
            TraceEvent(
                name=name, cat=cat, ph="i",
                ts=self.now_us() if ts is None else ts,
                pid=pid, tid=tid, args=args,
            )
        )

    def complete(
        self,
        name: str,
        *,
        cat: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A complete span (phase ``"X"``): start ``ts``, length ``dur``."""
        self._push(
            TraceEvent(
                name=name, cat=cat, ph="X", ts=ts, dur=max(dur, 0.0),
                pid=pid, tid=tid, args=args,
            )
        )

    def counter(
        self,
        name: str,
        *,
        ts: float,
        pid: int,
        values: Dict[str, float],
    ) -> None:
        """A counter sample (phase ``"C"``): Perfetto draws a track."""
        self._push(
            TraceEvent(
                name=name, cat="counter", ph="C", ts=ts, pid=pid,
                args=dict(values),
            )
        )

    def drain(self) -> List[TraceEvent]:
        """Take and clear the buffered events, keeping limit accounting.

        Shard workers stream their events back to the coordinator once
        per BSP round; draining counts the handed-off events against
        the limit (via an internal flushed total) so a worker cannot
        exceed its event budget by flushing — the cap bounds the whole
        run's stream, and the truncation marker still fires exactly
        once.
        """
        out = self.events
        self._flushed += len(out)
        self.events = []
        return out

    def absorb(self, events: List[TraceEvent]) -> None:
        """Merge events recorded by another tracer into this one.

        The sharded backend records wait-state events on per-worker
        tracers and folds them into the coordinator's at join; the
        event limit (and its truncation marker) applies to the merged
        stream as usual.
        """
        for event in events:
            self._push(event)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        """Wall-clock span around a ``with`` body."""
        start = self.now_us()
        try:
            yield
        finally:
            self.complete(
                name, cat=cat, ts=start, dur=self.now_us() - start,
                pid=pid, tid=tid, args=args,
            )


class NullTracer(Tracer):
    """The disabled backend: records nothing, costs (nearly) nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(limit=1)

    def _push(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    def instant(self, name, **kwargs) -> None:
        pass

    def complete(self, name, **kwargs) -> None:
        pass

    def counter(self, name, **kwargs) -> None:
        pass

    @contextmanager
    def span(self, name, **kwargs) -> Iterator[None]:
        yield
