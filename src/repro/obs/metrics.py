"""Counters, gauges, histograms: the metrics half of `repro.obs`.

:class:`MetricsRegistry` keys instruments by dotted names (e.g.
``tbon.sent.PassSend``, ``detection.phase.synchronization``) and is the
generalization of :class:`repro.perf.timers.PhaseTimers`: phase
breakdowns merge into histograms under ``detection.phase.*`` so the
same registry holds protocol traffic, wait-state dwell times, and the
Figure 10(b)/11(b) activity groups.

:class:`NullMetricsRegistry` is the disabled backend: it hands out
shared no-op instruments and snapshots empty, so unguarded call sites
stay safe and guarded ones cost one attribute check.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; the high-water mark is kept alongside."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """Stores raw observations; percentiles use linear interpolation.

    ``_values`` keeps insertion order (``dump_state`` ships it
    verbatim); percentile queries read a cached sorted copy that is
    maintained incrementally for in-order streams and invalidated by
    an out-of-order ``observe`` — the live snapshot loop calls
    ``percentile``/``summary`` every tick, so repeated queries must
    not re-sort the sample set each time.
    """

    __slots__ = ("_values", "_cache")

    def __init__(self) -> None:
        self._values: List[float] = []
        self._cache: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        cache = self._cache
        if cache is not None:
            if not cache or value >= cache[-1]:
                cache.append(value)
            else:
                self._cache = None
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return sum(self._values)

    def _ordered(self) -> List[float]:
        cache = self._cache
        if cache is None:
            cache = self._cache = sorted(self._values)
        return cache

    def percentile(self, p: float) -> float:
        """The p-th percentile (0 <= p <= 100), linearly interpolated.

        Uses the standard "linear" (inclusive) method: rank
        ``(n - 1) * p / 100`` interpolated between neighbours.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = self._ordered()
        if not ordered:
            raise ValueError("percentile of an empty histogram")
        rank = (len(ordered) - 1) * p / 100.0
        low = int(rank)
        frac = rank - low
        if frac == 0.0 or low + 1 >= len(ordered):
            return ordered[low]
        return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac

    def summary(self) -> Dict[str, float]:
        if not self._values:
            return {"count": 0, "sum": 0.0}
        ordered = self._ordered()
        total = sum(ordered)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first touch."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    # -- convenience ----------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def merge_phase_breakdown(
        self,
        breakdown: Mapping[str, float],
        *,
        prefix: str = "detection.phase.",
    ) -> None:
        """Fold a PhaseTimers-style breakdown into phase histograms."""
        for phase, seconds in breakdown.items():
            self.observe(prefix + phase, seconds)

    # -- export ---------------------------------------------------------

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``suffix -> value`` for counters under a dotted prefix."""
        return {
            name[len(prefix):]: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def dump_state(self) -> Dict[str, object]:
        """A picklable full-fidelity dump (raw histogram observations).

        Unlike :meth:`snapshot` (which summarizes histograms), the dump
        can be merged losslessly into another registry — the sharded
        backend ships each worker's registry back at join and folds it
        into the coordinator's via :meth:`merge_state`.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {
                n: (g.value, g.max_value) for n, g in self._gauges.items()
            },
            "histograms": {
                n: list(h._values) for n, h in self._histograms.items()
            },
        }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add, gauge high-water marks take the max (the value
        itself keeps the later write), histograms concatenate raw
        observations — so per-shard queue-depth gauges and dwell
        histograms merge at join without losing percentiles.
        """
        for name, value in state.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(value)
        for name, (value, max_value) in state.get("gauges", {}).items():  # type: ignore[union-attr]
            gauge = self.gauge(name)
            gauge.set(value)
            if max_value > gauge.max_value:
                gauge.max_value = max_value
        for name, values in state.get("histograms", {}).items():  # type: ignore[union-attr]
            hist = self.histogram(name)
            for value in values:
                hist.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable view of every instrument."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self._histograms.items())
            },
        }


class NullMetricsRegistry(MetricsRegistry):
    """The disabled backend: shared inert instruments, empty snapshot."""

    enabled = False

    class _NullCounter(Counter):
        __slots__ = ()

        def inc(self, n: int = 1) -> None:
            pass

    class _NullGauge(Gauge):
        __slots__ = ()

        def set(self, value: float) -> None:
            pass

    class _NullHistogram(Histogram):
        __slots__ = ()

        def observe(self, value: float) -> None:
            pass

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = self._NullCounter()
        self._null_gauge = self._NullGauge()
        self._null_histogram = self._NullHistogram()

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram
