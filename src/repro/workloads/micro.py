"""The paper's micro examples: Figures 2(a), 2(b), and 4.

Each example is provided as rank programs for the virtual runtime, so
tests and examples can execute them under both strict and relaxed MPI
semantics and compare detector verdicts with ground truth.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.mpi.constants import ANY_SOURCE
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def fig2a_programs() -> List[RankProgram]:
    """Figure 2(a): the classic recv-recv deadlock (always manifests).

    Process 0: Recv(from 1); Send(to 1) — Process 1: Recv(from 0);
    Send(to 0).
    """

    def worker(rank: Rank) -> Iterator[Call]:
        peer = 1 - rank.rank
        yield rank.recv(source=peer)
        yield rank.send(dest=peer)
        yield rank.finalize()

    return [worker, worker]


def fig2b_programs() -> List[RankProgram]:
    """Figure 2(b): send-send deadlock behind wildcards and a barrier.

    Manifests only if standard sends do not buffer; the strict analysis
    must detect it even when the execution completed.
    """

    def worker(rank: Rank) -> Iterator[Call]:
        if rank.rank == 0:
            yield rank.send(dest=1)
        elif rank.rank == 1:
            yield rank.recv(source=ANY_SOURCE)
            yield rank.recv(source=ANY_SOURCE)
        else:
            yield rank.send(dest=1)
        yield rank.barrier()
        yield rank.send(dest=(rank.rank + 1) % 3)
        yield rank.recv(source=(rank.rank - 1) % 3)
        yield rank.finalize()

    return [worker, worker, worker]


def fig4_programs() -> List[RankProgram]:
    """Figure 4: the unexpected-match scenario.

    Process 0: Send(to 1); Reduce — Process 1: Recv(ANY); Reduce;
    Recv(ANY) — Process 2: Reduce; Send(to 1). If the reduce does not
    synchronize (relaxed semantics, non-root ranks), process 2's send
    may match process 1's *first* wildcard receive; the strict analysis
    then cannot advance past its initial state and must flag the
    unexpected match rather than report a spurious deadlock as fact.
    """

    def worker(rank: Rank) -> Iterator[Call]:
        if rank.rank == 0:
            yield rank.send(dest=1)
            yield rank.reduce(root=1)
        elif rank.rank == 1:
            yield rank.recv(source=ANY_SOURCE)
            yield rank.reduce(root=1)
            yield rank.recv(source=ANY_SOURCE)
        else:
            yield rank.reduce(root=1)
            yield rank.send(dest=1)
        yield rank.finalize()

    return [worker, worker, worker]


def head_to_head_sendrecv_programs(n: int = 2) -> List[RankProgram]:
    """A safe head-to-head exchange via MPI_Sendrecv (footnote 1)."""

    def worker(rank: Rank) -> Iterator[Call]:
        peer = (rank.rank + 1) % rank.size if rank.rank % 2 == 0 else (
            rank.rank - 1
        ) % rank.size
        yield from rank.sendrecv(dest=peer, source=peer)
        yield rank.finalize()

    if n % 2 != 0:
        raise ValueError("head-to-head exchange needs an even rank count")
    return [worker] * n


def waitall_deadlock_programs() -> List[RankProgram]:
    """A completion-operation deadlock (rule 4): Waitall on an Irecv
    whose sender never sends, with a second completable Irecv."""

    def p0(rank: Rank) -> Iterator[Call]:
        r1 = yield rank.irecv(source=1, tag=1)
        r2 = yield rank.irecv(source=1, tag=2)
        yield rank.waitall([r1, r2])
        yield rank.finalize()

    def p1(rank: Rank) -> Iterator[Call]:
        yield rank.send(dest=0, tag=1)
        # tag=2 is never sent: p0's Waitall blocks forever.
        yield rank.recv(source=0)
        yield rank.finalize()

    return [p0, p1]


def waitany_survivor_programs() -> List[RankProgram]:
    """Waitany completes via one request although the other never can."""

    def p0(rank: Rank) -> Iterator[Call]:
        r1 = yield rank.irecv(source=1, tag=1)
        r2 = yield rank.irecv(source=1, tag=2)
        idx, _status = yield rank.waitany([r1, r2])
        yield rank.send(dest=1, tag=9)
        yield rank.finalize()

    def p1(rank: Rank) -> Iterator[Call]:
        yield rank.send(dest=0, tag=2)
        yield rank.recv(source=0, tag=9)
        yield rank.finalize()

    return [p0, p1]
