"""Soft-hang workloads: deadlock-free programs that *look* stuck.

The live health engine's job is triage — telling a stalled-but-live
run (one straggling rank, everyone else parked waiting for it) apart
from a true deadlock. These workloads are the true-negative material:
every one of them terminates, so any run that grades them
``DEADLOCK-CONFIRMED`` is a health-engine bug (pinned in
``tests/property/test_live_verdicts.py``).

The straggler's "computation" is a loop of IPROBE no-ops: each iprobe
is one engine step that blocks nobody, so the scheduler keeps picking
the straggler while its partners sit parked in their receives — dwell
grows on the waiting ranks exactly the way an imbalanced real
application produces wait states without a cycle.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def soft_hang_imbalance_programs(
    p: int, rounds: int = 3, straggler_ops: int = 64
) -> List[RankProgram]:
    """All-to-one exchange with one heavily-delayed straggler.

    Each round, every rank sends to and receives from the last rank
    (``p - 1``); that rank burns ``straggler_ops`` iprobe steps before
    servicing its peers. Deadlock-free for any parameters — the other
    ranks just dwell long in ``RECV`` while the straggler computes.
    """
    if p < 2:
        raise ValueError("need at least two ranks")

    def worker(rank: Rank) -> Iterator[Call]:
        straggler = rank.size - 1
        for r in range(rounds):
            if rank.rank == straggler:
                for _ in range(straggler_ops):
                    yield rank.iprobe()
                for peer in range(rank.size - 1):
                    yield rank.recv(source=peer, tag=r)
                    yield rank.send(dest=peer, tag=r)
            else:
                yield rank.send(dest=straggler, tag=r)
                yield rank.recv(source=straggler, tag=r)
        yield rank.finalize()

    return [worker] * p


def straggler_collective_programs(
    p: int, iterations: int = 4, delay_ops: int = 48
) -> List[RankProgram]:
    """Iterated allreduce with rank 0 arriving late every time.

    Rank 0 burns ``delay_ops`` iprobe steps before each collective, so
    every other rank parks in ``ALLREDUCE`` waiting on the same
    straggler — the collective flavour of a soft hang. Deadlock-free:
    all ranks reach every wave.
    """
    if p < 2:
        raise ValueError("need at least two ranks")

    def worker(rank: Rank) -> Iterator[Call]:
        for _ in range(iterations):
            if rank.rank == 0:
                for _ in range(delay_ops):
                    yield rank.iprobe()
            yield rank.allreduce()
        yield rank.finalize()

    return [worker] * p
