"""SPEC MPI2007 proxies (the paper's Figure 11/12 workloads).

The real suite is proprietary; each benchmark is replaced by (a) a
*communication-profile* entry driving the Figure 12 overhead model and
(b) where the paper's findings depend on the benchmark's communication
*structure*, a synthetic skeleton program exercising the same code
path:

* **126.lammps** — contains a potential send-send deadlock that never
  manifests with buffering MPIs but is detected by the strict blocking
  semantics (Figure 11). :func:`lammps_skeleton_programs` embeds the
  same structure: a neighbour exchange whose forward sends form a
  blocking cycle, preceded by healthy halo iterations.
* **128.GAPgeofem** — issues so many communication calls that MUST's
  trace windows outgrow main memory; the paper excludes it.
  :func:`gapgeofem_skeleton_programs` emits a long dense stream of
  p2p calls so the window-limit detection path is exercised.
* **137.lu** — the buffered-send "gain": many outstanding standard
  sends; the paper reproduces the effect by replacing every 50th
  MPI_Send with MPI_Ssend. :func:`lu_skeleton_programs` implements a
  wavefront pipeline with that exact knob.

Profile constants (call rates, collective shares) are synthesized to
match the published relative communication intensities of the suite
(121.pop2 and 143.dleslie communication-bound; tachyon embarrassingly
parallel; etc.) — absolute rates are calibration, relative ordering is
the reproduced fact.
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from repro.perf.slowdown import AppProfile
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank

#: Figure 12's application set with modelled communication profiles.
SPEC_PROFILES: Dict[str, AppProfile] = {
    p.name: p
    for p in (
        AppProfile("104.milc", call_rate=2100, collective_share=0.12),
        AppProfile("107.leslie3d", call_rate=1350, collective_share=0.05),
        AppProfile("113.GemsFDTD", call_rate=1100, collective_share=0.20),
        AppProfile("115.fds4", call_rate=530, collective_share=0.08),
        AppProfile("121.pop2", call_rate=11500, collective_share=0.25,
                   scale_exponent=0.6),
        AppProfile("122.tachyon", call_rate=120, collective_share=0.02),
        AppProfile("126.lammps", call_rate=1400, collective_share=0.10,
                   potential_deadlock=True),
        AppProfile("127.wrf2", call_rate=1600, collective_share=0.15),
        AppProfile("128.GAPgeofem", call_rate=30000, collective_share=0.05,
                   window_blowup=True),
        AppProfile("129.tera_tf", call_rate=550, collective_share=0.30),
        AppProfile("130.socorro", call_rate=2450, collective_share=0.40),
        AppProfile("132.zeusmp2", call_rate=1340, collective_share=0.06),
        AppProfile("137.lu", call_rate=2600, collective_share=0.02,
                   buffered_send_relief=0.35),
        AppProfile("142.dmilc", call_rate=1200, collective_share=0.12,
                   buffered_send_relief=0.21),
        AppProfile("143.dleslie", call_rate=9200, collective_share=0.05,
                   scale_exponent=0.6),
    )
}

#: Applications excluded from the paper's 34% average at 2,048.
EXCLUDED_FROM_AVERAGE = ("126.lammps", "128.GAPgeofem")


def figure12_apps() -> Sequence[str]:
    return tuple(sorted(SPEC_PROFILES))


# ---------------------------------------------------------------------------
# Structural skeletons
# ---------------------------------------------------------------------------


def lammps_skeleton_programs(
    p: int, healthy_iterations: int = 3
) -> List[RankProgram]:
    """126.lammps proxy with the potential send-send deadlock.

    Healthy halo-exchange iterations (Isend/Irecv/Waitall) are followed
    by a forward neighbour shift written with blocking standard sends:
    every rank sends before receiving, forming a send cycle. Buffering
    MPIs complete it; the strict analysis reports the two-process (per
    neighbour pair, cycle across the ring) dependency cycle.
    """
    if p < 2:
        raise ValueError("need at least two ranks")

    def worker(rank: Rank) -> Iterator[Call]:
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        for it in range(healthy_iterations):
            sreq = yield rank.isend(right, tag=it, nbytes=2048)
            rreq = yield rank.irecv(source=left, tag=it, nbytes=2048)
            yield rank.waitall([sreq, rreq])
            if it % 2 == 1:
                yield rank.allreduce(nbytes=8)
        # The unsafe forward shift: blocking send before receive.
        yield rank.send(dest=right, tag=99, nbytes=4096)
        yield rank.recv(source=left, tag=99, nbytes=4096)
        yield rank.finalize()

    return [worker] * p


def gapgeofem_skeleton_programs(
    p: int, iterations: int = 400
) -> List[RankProgram]:
    """128.GAPgeofem proxy: a dense stream of tiny p2p calls.

    Run under a small tool window limit, this triggers the
    ResourceLimitError path that mirrors the paper's memory exhaustion.
    """

    def worker(rank: Rank) -> Iterator[Call]:
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        reqs = []
        for it in range(iterations):
            req = yield rank.isend(right, tag=it, nbytes=64)
            reqs.append(req)
            rr = yield rank.irecv(source=left, tag=it, nbytes=64)
            reqs.append(rr)
        yield rank.waitall(reqs)
        yield rank.finalize()

    return [worker] * p


def lu_skeleton_programs(
    p: int,
    iterations: int = 10,
    ssend_every: int = 0,
) -> List[RankProgram]:
    """137.lu proxy: pipelined wavefront with many outstanding sends.

    ``ssend_every=50`` reproduces the paper's experiment that replaces
    every 50th MPI_Send with MPI_Ssend to mimic the tool's drain effect
    on buffered-send queues.
    """

    def worker(rank: Rank) -> Iterator[Call]:
        sent = 0
        for it in range(iterations):
            if rank.rank > 0:
                yield rank.recv(source=rank.rank - 1, tag=it)
            if rank.rank < rank.size - 1:
                sent += 1
                if ssend_every and sent % ssend_every == 0:
                    yield rank.ssend(rank.rank + 1, tag=it, nbytes=512)
                else:
                    yield rank.send(rank.rank + 1, tag=it, nbytes=512)
        yield rank.barrier()
        yield rank.finalize()

    return [worker] * p


def halo2d_programs(
    px: int, py: int, iterations: int = 4
) -> List[RankProgram]:
    """A generic 2-D halo exchange (the dominant SPEC pattern)."""
    p = px * py

    def worker(rank: Rank) -> Iterator[Call]:
        x, y = rank.rank % px, rank.rank // px
        neighbours = []
        if x > 0:
            neighbours.append(rank.rank - 1)
        if x < px - 1:
            neighbours.append(rank.rank + 1)
        if y > 0:
            neighbours.append(rank.rank - px)
        if y < py - 1:
            neighbours.append(rank.rank + px)
        for it in range(iterations):
            reqs = []
            for n in neighbours:
                reqs.append((yield rank.isend(n, tag=it, nbytes=1024)))
            for n in neighbours:
                reqs.append((yield rank.irecv(source=n, tag=it, nbytes=1024)))
            yield rank.waitall(reqs)
            yield rank.allreduce(nbytes=8)
        yield rank.finalize()

    return [worker] * p
