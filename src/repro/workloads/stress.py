"""The Section 6 synthetic stress test: iterated cyclic exchange.

Each process sends one integer to its right neighbour and receives
from its left; every ``barrier_every``-th iteration adds an
MPI_Barrier. The exchange uses Isend + Recv + Wait, which is safe
under the strict blocking semantics (a blocking-send ring would itself
be an unsafe program and trip the detector — see
:func:`unsafe_blocking_ring_programs`, which tests exactly that).

Two constructions are provided: rank programs for the virtual runtime
(used at small/medium scale, where engine execution is affordable) and
:func:`build_stress_trace`, which writes the identical matched trace
directly (used by the benches at larger scale). A consistency test
asserts both agree.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import CollectiveMatch, MatchedTrace, Trace
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def stress_programs(
    p: int, iterations: int = 20, barrier_every: int = 10
) -> List[RankProgram]:
    """Rank programs for the cyclic-exchange stress test."""
    if p < 2:
        raise ValueError("stress test needs at least two ranks")

    def worker(rank: Rank) -> Iterator[Call]:
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        for it in range(iterations):
            req = yield rank.isend(right, tag=it, nbytes=4)
            yield rank.recv(source=left, tag=it, nbytes=4)
            yield rank.wait(req)
            if (it + 1) % barrier_every == 0:
                yield rank.barrier()
        yield rank.finalize()

    return [worker] * p


def unsafe_blocking_ring_programs(p: int) -> List[RankProgram]:
    """A cyclic exchange with *blocking* sends first: unsafe by the
    strict semantics (send-send cycle), usually masked by buffering."""

    def worker(rank: Rank) -> Iterator[Call]:
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        yield rank.send(dest=right, nbytes=4)
        yield rank.recv(source=left, nbytes=4)
        yield rank.finalize()

    return [worker] * p


def build_stress_trace(
    p: int, iterations: int = 20, barrier_every: int = 10
) -> MatchedTrace:
    """Directly construct the stress test's matched trace.

    Equivalent to executing :func:`stress_programs` (any schedule —
    the pattern is deterministic) but without engine overhead, so
    larger scales stay affordable for the protocol benches.
    """
    if p < 2:
        raise ValueError("stress test needs at least two ranks")
    sequences: List[List[Operation]] = []
    barrier_ts: List[List[int]] = []  # per barrier wave, ts per rank
    num_barriers = iterations // barrier_every
    barrier_ts = [[0] * p for _ in range(num_barriers)]
    for rank in range(p):
        right = (rank + 1) % p
        left = (rank - 1) % p
        seq: List[Operation] = []
        wave = 0
        for it in range(iterations):
            ts = len(seq)
            seq.append(
                Operation(
                    kind=OpKind.ISEND, rank=rank, ts=ts, peer=right,
                    tag=it, nbytes=4, request=it,
                )
            )
            seq.append(
                Operation(
                    kind=OpKind.RECV, rank=rank, ts=ts + 1, peer=left,
                    tag=it, nbytes=4,
                )
            )
            seq.append(
                Operation(
                    kind=OpKind.WAIT, rank=rank, ts=ts + 2,
                    requests=(it,),
                )
            )
            if (it + 1) % barrier_every == 0:
                barrier_ts[wave][rank] = len(seq)
                seq.append(
                    Operation(kind=OpKind.BARRIER, rank=rank, ts=len(seq))
                )
                wave += 1
        seq.append(Operation(kind=OpKind.FINALIZE, rank=rank, ts=len(seq)))
        sequences.append(seq)
    trace = Trace(sequences)
    comms = CommRegistry(p)
    matched = MatchedTrace(trace, comms)
    ops_per_iter = 3
    for rank in range(p):
        right = (rank + 1) % p
        for it in range(iterations):
            extra = (it // barrier_every) if barrier_every else 0
            send_ts = it * ops_per_iter + extra
            recv_ts = it * ops_per_iter + extra + 1
            matched.add_p2p_match((rank, send_ts), (right, recv_ts))
            matched.register_request(rank, it, (rank, send_ts))
    for wave in range(num_barriers):
        matched.add_collective_match(
            CollectiveMatch(
                comm_id=0,
                members=frozenset(
                    (rank, barrier_ts[wave][rank]) for rank in range(p)
                ),
            )
        )
    return matched
