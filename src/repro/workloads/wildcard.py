"""The wildcard-receive deadlock case of Figure 10.

Every process issues a wildcard receive without any send being issued:
the run hangs immediately and the wait-for graph has maximal size —
``p * (p - 1)`` arcs (the paper rounds to ``p^2``), every process
OR-waiting on every other. This is the graph-detection stress case for
the centralized WfgCheck at the root.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import MatchedTrace, Trace
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def wildcard_deadlock_programs(p: int) -> List[RankProgram]:
    """Rank programs: one unmatched wildcard receive per process."""

    def worker(rank: Rank) -> Iterator[Call]:
        yield rank.recv(source=ANY_SOURCE)
        yield rank.finalize()

    return [worker] * p


def wildcard_master_worker_programs() -> List[RankProgram]:
    """Three ranks whose deadlock hinges on one wildcard choice.

    Rank 0 posts a wildcard receive and then a receive directed at
    rank 1; ranks 1 and 2 each send one message to rank 0. When the
    wildcard matches rank 2 the directed receive pairs with rank 1 and
    everything completes; when it matches rank 1 first, rank 1 has
    nothing left to send — rank 0 blocks forever in the directed
    receive and rank 2's rendezvous send never pairs. Only match-set
    exploration (``repro verify``) sees the deadlocking branch; a
    single random run usually completes.
    """

    def master(rank: Rank) -> Iterator[Call]:
        yield rank.recv(source=ANY_SOURCE, tag=0)
        yield rank.recv(source=1, tag=0)
        yield rank.finalize()

    def worker(rank: Rank) -> Iterator[Call]:
        yield rank.send(0, tag=0)
        yield rank.finalize()

    return [master, worker, worker]


def wildcard_stress_programs(p: int, rounds: int = 3) -> List[RankProgram]:
    """Fig. 10-style wildcard stress, deadlock-free variant.

    Ranks pair up (0,1), (2,3), …; each pair ping-pongs ``rounds``
    times with the odd rank receiving via ``MPI_ANY_SOURCE``. Every
    matching completes, so proving deadlock freedom requires visiting
    the whole interleaving space — the partial-order reduction
    benchmark workload (its counters back the >=5x claim).
    """
    if p < 2 or p % 2:
        raise ValueError("need a positive even rank count")

    def even(rank: Rank) -> Iterator[Call]:
        peer = rank.rank + 1
        for _ in range(rounds):
            yield rank.send(peer, tag=0)
            yield rank.recv(source=peer, tag=0)
        yield rank.finalize()

    def odd(rank: Rank) -> Iterator[Call]:
        peer = rank.rank - 1
        for _ in range(rounds):
            yield rank.recv(source=ANY_SOURCE, tag=0)
            yield rank.send(peer, tag=0)
        yield rank.finalize()

    return [even if i % 2 == 0 else odd for i in range(p)]


def ping_pong_pairs_programs(p: int, rounds: int = 3) -> List[RankProgram]:
    """Directed (wildcard-free) pair ping-pong, deadlock-free.

    Same shape as :func:`wildcard_stress_programs` but fully directed:
    every transition is independent across pairs, so naive enumeration
    is exponential in the pair count while the partial-order reduction
    collapses the graph to a single chain.
    """
    if p < 2 or p % 2:
        raise ValueError("need a positive even rank count")

    def even(rank: Rank) -> Iterator[Call]:
        peer = rank.rank + 1
        for _ in range(rounds):
            yield rank.send(peer, tag=0)
            yield rank.recv(source=peer, tag=0)
        yield rank.finalize()

    def odd(rank: Rank) -> Iterator[Call]:
        peer = rank.rank - 1
        for _ in range(rounds):
            yield rank.recv(source=peer, tag=0)
            yield rank.send(peer, tag=0)
        yield rank.finalize()

    return [even if i % 2 == 0 else odd for i in range(p)]


def build_wildcard_trace(p: int) -> MatchedTrace:
    """Directly construct the hung trace: one pending Recv(ANY) each.

    The receives never completed, so their wildcard source is
    unresolved and no match exists — exactly what the tool sees when
    the application hangs before any message flows.
    """
    if p < 2:
        raise ValueError("need at least two ranks")
    sequences = [
        [
            Operation(
                kind=OpKind.RECV, rank=rank, ts=0, peer=ANY_SOURCE, nbytes=4
            )
        ]
        for rank in range(p)
    ]
    trace = Trace(sequences)
    return MatchedTrace(trace, CommRegistry(p))
