"""The wildcard-receive deadlock case of Figure 10.

Every process issues a wildcard receive without any send being issued:
the run hangs immediately and the wait-for graph has maximal size —
``p * (p - 1)`` arcs (the paper rounds to ``p^2``), every process
OR-waiting on every other. This is the graph-detection stress case for
the centralized WfgCheck at the root.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import MatchedTrace, Trace
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def wildcard_deadlock_programs(p: int) -> List[RankProgram]:
    """Rank programs: one unmatched wildcard receive per process."""

    def worker(rank: Rank) -> Iterator[Call]:
        yield rank.recv(source=ANY_SOURCE)
        yield rank.finalize()

    return [worker] * p


def build_wildcard_trace(p: int) -> MatchedTrace:
    """Directly construct the hung trace: one pending Recv(ANY) each.

    The receives never completed, so their wildcard source is
    unresolved and no match exists — exactly what the tool sees when
    the application hangs before any message flows.
    """
    if p < 2:
        raise ValueError("need at least two ranks")
    sequences = [
        [
            Operation(
                kind=OpKind.RECV, rank=rank, ts=0, peer=ANY_SOURCE, nbytes=4
            )
        ]
        for rank in range(p)
    ]
    trace = Trace(sequences)
    return MatchedTrace(trace, CommRegistry(p))
