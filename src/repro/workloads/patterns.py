"""Additional communication patterns for coverage beyond the paper.

These exercise the analyses on the structures real applications use:
butterfly exchanges, master/worker pools with wildcards, software
tree broadcasts built from point-to-point calls, 3-D stencils, and
pipelines over derived communicators. Each comes in a healthy variant
and (where instructive) a subtly broken one.
"""
from __future__ import annotations

from typing import Iterator, List

from repro.mpi.constants import ANY_SOURCE
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


def butterfly_programs(p: int, rounds: int | None = None) -> List[RankProgram]:
    """A power-of-two butterfly (allreduce skeleton) via Sendrecv."""
    if p & (p - 1) or p < 2:
        raise ValueError("butterfly needs a power-of-two rank count")
    if rounds is None:
        rounds = p.bit_length() - 1

    def worker(rank: Rank) -> Iterator[Call]:
        for k in range(rounds):
            partner = rank.rank ^ (1 << k)
            yield from rank.sendrecv(dest=partner, source=partner,
                                     sendtag=k, recvtag=k)
        yield rank.finalize()

    return [worker] * p


def master_worker_programs(
    p: int, tasks_per_worker: int = 3
) -> List[RankProgram]:
    """Wildcard master/worker pool: the canonical ANY_SOURCE pattern."""
    if p < 2:
        raise ValueError("need a master and at least one worker")

    def master(rank: Rank) -> Iterator[Call]:
        outstanding = (rank.size - 1) * tasks_per_worker
        for _ in range(outstanding):
            status = yield rank.recv(source=ANY_SOURCE, tag=1)
            yield rank.send(dest=status.source, tag=2)
        for dest in range(1, rank.size):
            yield rank.send(dest=dest, tag=3)  # shutdown
        yield rank.finalize()

    def worker(rank: Rank) -> Iterator[Call]:
        for _ in range(tasks_per_worker):
            yield rank.send(dest=0, tag=1)
            yield rank.recv(source=0, tag=2)
        yield rank.recv(source=0, tag=3)
        yield rank.finalize()

    return [master] + [worker] * (p - 1)


def software_bcast_programs(p: int, root: int = 0) -> List[RankProgram]:
    """A binomial-tree broadcast written with point-to-point calls."""

    def worker(rank: Rank) -> Iterator[Call]:
        me = (rank.rank - root) % rank.size
        if me == 0:
            k = 1
        else:
            highest = 1 << (me.bit_length() - 1)
            parent = me - highest
            yield rank.recv(source=(parent + root) % rank.size, tag=9)
            k = highest << 1
        while me + k < rank.size:
            yield rank.send(dest=(me + k + root) % rank.size, tag=9)
            k <<= 1
        yield rank.finalize()

    return [worker] * p


def stencil3d_programs(
    nx: int, ny: int, nz: int, iterations: int = 2
) -> List[RankProgram]:
    """A 3-D halo exchange (6 neighbours) with Isend/Irecv/Waitall."""
    p = nx * ny * nz

    def worker(rank: Rank) -> Iterator[Call]:
        r = rank.rank
        x, y, z = r % nx, (r // nx) % ny, r // (nx * ny)
        neighbours = []
        for dx, dy, dz in (
            (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0),
            (0, 0, 1), (0, 0, -1),
        ):
            xx, yy, zz = x + dx, y + dy, z + dz
            if 0 <= xx < nx and 0 <= yy < ny and 0 <= zz < nz:
                neighbours.append(xx + yy * nx + zz * nx * ny)
        for it in range(iterations):
            reqs = []
            for n in neighbours:
                reqs.append((yield rank.isend(n, tag=it, nbytes=4096)))
            for n in neighbours:
                reqs.append(
                    (yield rank.irecv(source=n, tag=it, nbytes=4096))
                )
            yield rank.waitall(reqs)
            if it % 2 == 1:
                yield rank.allreduce()
        yield rank.finalize()

    return [worker] * p


def comm_pipeline_programs(
    p: int, stages: int = 2, items: int = 3
) -> List[RankProgram]:
    """A pipeline over derived communicators.

    Ranks split into ``stages`` groups; within each group the members
    synchronize with group barriers while item tokens flow from stage
    to stage through the stage leaders.
    """
    if p < stages * 1:
        raise ValueError("need at least one rank per stage")

    def worker(rank: Rank) -> Iterator[Call]:
        stage = rank.rank % stages
        team = yield rank.comm_split(color=stage)
        leader = team.world_rank(0)
        # With the modulo split (world-rank keys), the leader of stage
        # s is world rank s, so tokens flow s-1 -> s between leaders.
        for item in range(items):
            if rank.rank == leader:
                if stage > 0:
                    yield rank.recv(source=stage - 1, tag=item)
                if stage < stages - 1:
                    yield rank.send(dest=stage + 1, tag=item)
            yield rank.barrier(comm=team)
        yield rank.finalize()

    return [worker] * p


def deferred_deadlock_programs(p: int, healthy_rounds: int = 5):
    """Healthy rounds, then a deadlock late in the run — exercises
    sliding windows plus a detection long after startup."""
    if p < 3:
        raise ValueError("need at least three ranks")

    def worker(rank: Rank) -> Iterator[Call]:
        right = (rank.rank + 1) % rank.size
        left = (rank.rank - 1) % rank.size
        for it in range(healthy_rounds):
            req = yield rank.isend(right, tag=it)
            yield rank.recv(source=left, tag=it)
            yield rank.wait(req)
        # The bug: ranks 0 and 1 enter a recv-recv deadlock; the rest
        # wait in a barrier that can never complete.
        if rank.rank == 0:
            yield rank.recv(source=1, tag=99)
            yield rank.barrier()
        elif rank.rank == 1:
            yield rank.recv(source=0, tag=99)
            yield rank.barrier()
        else:
            yield rank.barrier()
        yield rank.finalize()

    return [worker] * p
