"""Seeded random MPI program generation for property testing.

Programs are straight-line per rank (no control flow depending on
results), so the *trace* of a run is schedule-independent and the same
program set can be executed under strict and relaxed semantics for
oracle comparisons.

:func:`safe_program_set` builds deadlock-free programs by
construction: every communication event gets a global logical time;
each rank's operations are ordered by that time. A blocking operation
at time *t* only waits for operations at time *t*, and all operations
before *t* complete inductively — the classic happens-before argument,
valid even under the strict blocking semantics (rendezvous sends,
synchronizing collectives).

:func:`mutate_program_set` then damages a safe set — dropping sends,
swapping adjacent operations — producing "maybe-deadlocking" inputs
whose ground truth comes from executing them on the virtual runtime.
"""
from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.runtime.engine import RankProgram
from repro.runtime.program import Call, Rank


@dataclass(frozen=True)
class _Action:
    """One scripted action of a rank program."""

    kind: str  # send/ssend/bsend/isend/recv/wildcard_recv/irecv/wait/
    #           waitall/barrier/allreduce/reduce/bcast/probe/iprobe/noop
    peer: Optional[int] = None
    tag: int = 0
    root: Optional[int] = None
    #: Indices (into the rank's action list) of the request-creating
    #: actions a completion waits on.
    wait_on: Tuple[int, ...] = ()
    nbytes: int = 8


@dataclass
class GeneratedPrograms:
    """A scripted program set plus generation metadata."""

    scripts: List[List[_Action]]
    safe_by_construction: bool
    uses_wildcards: bool
    seed: int

    @property
    def num_ranks(self) -> int:
        return len(self.scripts)

    def programs(self) -> List[RankProgram]:
        return [_script_to_program(script) for script in self.scripts]

    def total_actions(self) -> int:
        return sum(len(s) for s in self.scripts)


def _script_to_program(script: Sequence[_Action]) -> RankProgram:
    def program(rank: Rank) -> Iterator[Call]:
        requests: dict = {}
        for idx, action in enumerate(script):
            kind = action.kind
            if kind == "send":
                yield rank.send(action.peer, tag=action.tag,
                                nbytes=action.nbytes)
            elif kind == "ssend":
                yield rank.ssend(action.peer, tag=action.tag,
                                 nbytes=action.nbytes)
            elif kind == "bsend":
                yield rank.bsend(action.peer, tag=action.tag,
                                 nbytes=action.nbytes)
            elif kind == "isend":
                requests[idx] = yield rank.isend(
                    action.peer, tag=action.tag, nbytes=action.nbytes
                )
            elif kind == "recv":
                yield rank.recv(source=action.peer, tag=action.tag)
            elif kind == "wildcard_recv":
                yield rank.recv(source=ANY_SOURCE, tag=ANY_TAG)
            elif kind == "irecv":
                requests[idx] = yield rank.irecv(
                    source=action.peer, tag=action.tag
                )
            elif kind == "wildcard_irecv":
                requests[idx] = yield rank.irecv(
                    source=ANY_SOURCE, tag=ANY_TAG
                )
            elif kind == "wait":
                yield rank.wait(requests[action.wait_on[0]])
            elif kind == "waitall":
                yield rank.waitall(
                    [requests[i] for i in action.wait_on]
                )
            elif kind == "waitany":
                yield rank.waitany(
                    [requests[i] for i in action.wait_on]
                )
            elif kind == "barrier":
                yield rank.barrier()
            elif kind == "allreduce":
                yield rank.allreduce()
            elif kind == "reduce":
                yield rank.reduce(root=action.root or 0)
            elif kind == "bcast":
                yield rank.bcast(root=action.root or 0)
            elif kind == "probe":
                yield rank.probe(source=action.peer, tag=action.tag)
            elif kind == "iprobe":
                yield rank.iprobe(source=action.peer, tag=action.tag)
            elif kind == "noop":
                pass
            else:
                raise ValueError(f"unknown scripted action {kind}")
        yield rank.finalize()

    return program


def safe_program_set(
    p: int,
    events: int,
    seed: int,
    *,
    allow_wildcards: bool = False,
    allow_collectives: bool = True,
    allow_nonblocking: bool = True,
) -> GeneratedPrograms:
    """Generate a deadlock-free program set (see module docstring)."""
    if p < 2:
        raise ValueError("need at least two ranks")
    rng = random.Random(seed)
    scripts: List[List[_Action]] = [[] for _ in range(p)]
    #: Per rank: indices of isend/irecv actions with no completion yet.
    open_requests: List[List[int]] = [[] for _ in range(p)]
    uses_wildcards = False

    def flush_requests(rank: int) -> None:
        """Complete all open requests of ``rank`` with one Waitall."""
        if open_requests[rank]:
            scripts[rank].append(
                _Action("waitall", wait_on=tuple(open_requests[rank]))
            )
            open_requests[rank].clear()

    for _event in range(events):
        roll = rng.random()
        if allow_collectives and roll < 0.12:
            # A global event: everyone participates (after completing
            # their open requests so Wait* stays well-ordered).
            kind = rng.choice(["barrier", "allreduce", "reduce", "bcast"])
            root = rng.randrange(p) if kind in ("reduce", "bcast") else None
            for rank in range(p):
                flush_requests(rank)
                scripts[rank].append(_Action(kind, root=root))
            continue
        src = rng.randrange(p)
        dst = rng.randrange(p - 1)
        if dst >= src:
            dst += 1
        tag = rng.randrange(4)
        nbytes = rng.choice([8, 64, 1024])
        wildcard = allow_wildcards and rng.random() < 0.3
        nonblocking_send = allow_nonblocking and rng.random() < 0.5
        nonblocking_recv = allow_nonblocking and rng.random() < 0.3
        # Sender side.
        if nonblocking_send:
            idx = len(scripts[src])
            scripts[src].append(_Action("isend", peer=dst, tag=tag,
                                        nbytes=nbytes))
            open_requests[src].append(idx)
            if rng.random() < 0.5:
                flush_requests(src)
        else:
            kind = rng.choice(["send", "ssend", "bsend"])
            scripts[src].append(_Action(kind, peer=dst, tag=tag,
                                        nbytes=nbytes))
        # Receiver side. A wildcard receive must still be safe: the
        # happens-before order guarantees the intended message is
        # available, but an *earlier unmatched* message could also be
        # pending — safety (no hang) is preserved either way because
        # every generated receive has at least one available message;
        # matching may differ from intent, so wildcard program sets are
        # only used where the oracle is the runtime itself.
        if rng.random() < 0.15 and not wildcard:
            scripts[dst].append(_Action("probe", peer=src, tag=tag))
        if wildcard:
            uses_wildcards = True
            scripts[dst].append(_Action("wildcard_recv"))
        elif nonblocking_recv:
            idx = len(scripts[dst])
            scripts[dst].append(_Action("irecv", peer=src, tag=tag))
            open_requests[dst].append(idx)
            if rng.random() < 0.6:
                flush_requests(dst)
        else:
            scripts[dst].append(_Action("recv", peer=src, tag=tag))
    for rank in range(p):
        flush_requests(rank)
    return GeneratedPrograms(
        scripts=scripts,
        safe_by_construction=not uses_wildcards,
        uses_wildcards=uses_wildcards,
        seed=seed,
    )


def mutate_program_set(
    generated: GeneratedPrograms, seed: int, mutations: int = 1
) -> GeneratedPrograms:
    """Damage a program set to (possibly) introduce deadlocks.

    Mutations: drop a send-like action, drop a receive-like action, or
    swap two adjacent actions of one rank. Completion actions are
    re-indexed; a dropped request-creator also drops its completions'
    references.
    """
    rng = random.Random(seed)
    scripts = [list(s) for s in generated.scripts]
    for _ in range(mutations):
        rank = rng.randrange(len(scripts))
        script = scripts[rank]
        if not script:
            continue
        choice = rng.random()
        if choice < 0.5:
            # Drop one non-completion action.
            droppable = [
                i for i, a in enumerate(script)
                if a.kind not in ("wait", "waitall", "waitany")
            ]
            if not droppable:
                continue
            victim = rng.choice(droppable)
            script = _drop_action(script, victim)
        elif len(script) >= 2:
            i = rng.randrange(len(script) - 1)
            if not _reorder_breaks_requests(script, i):
                script[i], script[i + 1] = script[i + 1], script[i]
        scripts[rank] = script
    return GeneratedPrograms(
        scripts=scripts,
        safe_by_construction=False,
        uses_wildcards=generated.uses_wildcards,
        seed=seed,
    )


def _drop_action(script: List[_Action], victim: int) -> List[_Action]:
    """Remove action ``victim`` and fix completion wait indices.

    Completions that lose *all* their requests are dropped too, and
    every surviving reference is re-indexed against the full set of
    removed positions (the victim plus cascaded completions).
    """
    from bisect import bisect_left

    dropped = {victim}
    for i, action in enumerate(script):
        if action.wait_on and all(r in dropped for r in action.wait_on):
            dropped.add(i)
    dropped_sorted = sorted(dropped)
    out: List[_Action] = []
    for i, action in enumerate(script):
        if i in dropped:
            continue
        if action.wait_on:
            new_refs = tuple(
                r - bisect_left(dropped_sorted, r)
                for r in action.wait_on
                if r not in dropped
            )
            action = _Action(
                action.kind,
                peer=action.peer,
                tag=action.tag,
                root=action.root,
                wait_on=new_refs,
                nbytes=action.nbytes,
            )
        out.append(action)
    return out


def _reorder_breaks_requests(script: List[_Action], i: int) -> bool:
    """Swapping ``i`` and ``i+1`` must not move a completion before its
    request-creating action (that would be invalid MPI, not a bug)."""
    a, b = script[i], script[i + 1]
    if b.wait_on and i in b.wait_on:
        return True
    # Swapping shifts indices of the two positions: any completion
    # later referencing i or i+1 still sees both present (indices are
    # positional): conservative — forbid swaps involving request
    # creators referenced by completions.
    creators = {i, i + 1}
    for j in range(i + 2, len(script)):
        if set(script[j].wait_on) & creators:
            return True
    if a.kind in ("wait", "waitall", "waitany") or b.kind in (
        "wait", "waitall", "waitany"
    ):
        return True
    return False
