"""Workloads: paper micro examples, stress tests, SPEC MPI2007 proxies."""
from repro.workloads.micro import (
    fig2a_programs,
    fig2b_programs,
    fig4_programs,
    head_to_head_sendrecv_programs,
    waitall_deadlock_programs,
    waitany_survivor_programs,
)
from repro.workloads.patterns import (
    butterfly_programs,
    comm_pipeline_programs,
    deferred_deadlock_programs,
    master_worker_programs,
    software_bcast_programs,
    stencil3d_programs,
)
from repro.workloads.randomgen import (
    GeneratedPrograms,
    mutate_program_set,
    safe_program_set,
)
from repro.workloads.softhang import (
    soft_hang_imbalance_programs,
    straggler_collective_programs,
)
from repro.workloads.specmpi import (
    EXCLUDED_FROM_AVERAGE,
    SPEC_PROFILES,
    figure12_apps,
    gapgeofem_skeleton_programs,
    halo2d_programs,
    lammps_skeleton_programs,
    lu_skeleton_programs,
)
from repro.workloads.stress import (
    build_stress_trace,
    stress_programs,
    unsafe_blocking_ring_programs,
)
from repro.workloads.wildcard import (
    build_wildcard_trace,
    ping_pong_pairs_programs,
    wildcard_deadlock_programs,
    wildcard_master_worker_programs,
    wildcard_stress_programs,
)

__all__ = [
    "EXCLUDED_FROM_AVERAGE",
    "GeneratedPrograms",
    "butterfly_programs",
    "comm_pipeline_programs",
    "deferred_deadlock_programs",
    "master_worker_programs",
    "mutate_program_set",
    "ping_pong_pairs_programs",
    "safe_program_set",
    "software_bcast_programs",
    "stencil3d_programs",
    "SPEC_PROFILES",
    "build_stress_trace",
    "build_wildcard_trace",
    "fig2a_programs",
    "fig2b_programs",
    "fig4_programs",
    "figure12_apps",
    "gapgeofem_skeleton_programs",
    "halo2d_programs",
    "head_to_head_sendrecv_programs",
    "lammps_skeleton_programs",
    "lu_skeleton_programs",
    "soft_hang_imbalance_programs",
    "straggler_collective_programs",
    "stress_programs",
    "unsafe_blocking_ring_programs",
    "waitall_deadlock_programs",
    "waitany_survivor_programs",
    "wildcard_deadlock_programs",
    "wildcard_master_worker_programs",
    "wildcard_stress_programs",
]
