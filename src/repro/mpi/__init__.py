"""MPI model: operations, communicators, traces, blocking predicate."""
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    WORLD_COMM_ID,
    OpKind,
)
from repro.mpi.blocking import BlockingSemantics, is_blocking
from repro.mpi.communicator import Communicator, CommRegistry
from repro.mpi.ops import Operation, OpRef, make_op
from repro.mpi.serialize import load_trace, save_trace
from repro.mpi.trace import CollectiveMatch, MatchedTrace, Trace

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "WORLD_COMM_ID",
    "OpKind",
    "BlockingSemantics",
    "is_blocking",
    "Communicator",
    "CommRegistry",
    "Operation",
    "OpRef",
    "make_op",
    "CollectiveMatch",
    "load_trace",
    "save_trace",
    "MatchedTrace",
    "Trace",
]
