"""Communicator model: process groups and communicator identities.

The analyses only need two facts about a communicator: its identity (to
separate matching contexts) and its process group (to know which ranks
participate in a collective). Creation collectives (``MPI_Comm_dup``,
``MPI_Comm_split``, ``MPI_Comm_create``) are themselves matched as
collectives over the *parent* group, as Section 3.1 prescribes.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.mpi.constants import WORLD_COMM_ID


@dataclass(frozen=True)
class Communicator:
    """An immutable communicator: identity plus ordered process group."""

    comm_id: int
    #: World ranks of the group members, in local-rank order.
    group: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(set(self.group)) != len(self.group):
            raise ValueError("communicator group contains duplicate ranks")

    @property
    def size(self) -> int:
        return len(self.group)

    def local_rank(self, world_rank: int) -> int:
        """Translate a world rank to this communicator's local rank."""
        try:
            return self.group.index(world_rank)
        except ValueError:
            raise KeyError(
                f"rank {world_rank} is not in communicator {self.comm_id}"
            ) from None

    def world_rank(self, local_rank: int) -> int:
        """Translate a local rank to the world rank."""
        return self.group[local_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self.group


class CommRegistry:
    """Registry of communicators known to a run of the tool.

    Both the virtual runtime and the tool sides use one registry: the
    runtime assigns ids when creation collectives complete, and the tool
    reconstructs the same ids deterministically because creation
    collectives are matched in a defined order per parent communicator.
    """

    def __init__(self, world_size: int) -> None:
        if world_size <= 0:
            raise ValueError("world size must be positive")
        self._comms: Dict[int, Communicator] = {}
        self._next_id = WORLD_COMM_ID + 1
        world = Communicator(WORLD_COMM_ID, tuple(range(world_size)))
        self._comms[WORLD_COMM_ID] = world

    @property
    def world(self) -> Communicator:
        return self._comms[WORLD_COMM_ID]

    @property
    def world_size(self) -> int:
        return self.world.size

    def get(self, comm_id: int) -> Communicator:
        try:
            return self._comms[comm_id]
        except KeyError:
            raise KeyError(f"unknown communicator id {comm_id}") from None

    def __contains__(self, comm_id: int) -> bool:
        return comm_id in self._comms

    def create(self, group: Iterable[int]) -> Communicator:
        """Register a new communicator over ``group`` and return it."""
        comm = Communicator(self._next_id, tuple(group))
        for rank in comm.group:
            if not (0 <= rank < self.world_size):
                raise ValueError(f"rank {rank} outside world")
        self._comms[comm.comm_id] = comm
        self._next_id += 1
        return comm

    def dup(self, comm_id: int) -> Communicator:
        """Duplicate an existing communicator (``MPI_Comm_dup``)."""
        return self.create(self.get(comm_id).group)

    def split(
        self, comm_id: int, colors: Dict[int, Optional[int]]
    ) -> Dict[int, Optional[Communicator]]:
        """Split ``comm_id`` by color (``MPI_Comm_split``).

        ``colors`` maps every member world rank to its color (``None``
        meaning ``MPI_UNDEFINED``). Returns the new communicator of each
        rank (``None`` for undefined colors). Within a color, members are
        ordered by their key; like MPI we use the world rank as the key
        (callers wanting custom keys can pre-sort).
        """
        parent = self.get(comm_id)
        missing = set(parent.group) - set(colors)
        if missing:
            raise ValueError(f"split missing colors for ranks {sorted(missing)}")
        by_color: Dict[int, List[int]] = {}
        for rank in parent.group:
            color = colors[rank]
            if color is not None:
                by_color.setdefault(color, []).append(rank)
        result: Dict[int, Optional[Communicator]] = {
            rank: None for rank in parent.group
        }
        for color in sorted(by_color):
            comm = self.create(sorted(by_color[color]))
            for rank in comm.group:
                result[rank] = comm
        return result

    def all_ids(self) -> Tuple[int, ...]:
        return tuple(self._comms)
