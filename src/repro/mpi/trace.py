"""Traces and matched traces.

A :class:`Trace` is the family ``t(i) = o_{i,0}, ..., o_{i,m_i}`` of
per-process operation sequences; a :class:`MatchedTrace` additionally
carries the output of point-to-point and collective matching, i.e. the
exact input of the wait state transition system of Section 3.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.mpi.communicator import CommRegistry
from repro.mpi.ops import Operation, OpRef


class Trace:
    """The per-process operation sequences of one (partial) execution."""

    def __init__(self, sequences: Iterable[Iterable[Operation]]) -> None:
        self._seqs: List[List[Operation]] = [list(s) for s in sequences]
        for rank, seq in enumerate(self._seqs):
            for ts, op in enumerate(seq):
                if op.rank != rank or op.ts != ts:
                    raise ValueError(
                        f"operation {op.describe()} filed at position "
                        f"({rank}, {ts})"
                    )

    @property
    def num_processes(self) -> int:
        return len(self._seqs)

    def length(self, rank: int) -> int:
        """``m_i + 1``: the number of operations of process ``rank``."""
        return len(self._seqs[rank])

    def lengths(self) -> Tuple[int, ...]:
        return tuple(len(s) for s in self._seqs)

    def sequence(self, rank: int) -> Tuple[Operation, ...]:
        return tuple(self._seqs[rank])

    def op(self, ref: OpRef) -> Operation:
        rank, ts = ref
        return self._seqs[rank][ts]

    def has_op(self, ref: OpRef) -> bool:
        rank, ts = ref
        return 0 <= rank < len(self._seqs) and 0 <= ts < len(self._seqs[rank])

    def __iter__(self) -> Iterator[Operation]:
        for seq in self._seqs:
            yield from seq

    def total_ops(self) -> int:
        return sum(len(s) for s in self._seqs)


@dataclass(frozen=True)
class CollectiveMatch:
    """A complete set ``C`` of matching collective operations (rule 3)."""

    comm_id: int
    #: One participating operation per group member.
    members: FrozenSet[OpRef]

    def __contains__(self, ref: OpRef) -> bool:
        return ref in self.members


@dataclass
class PendingCollective:
    """An *incomplete* collective wave: some group members never arrived.

    Rule (3) needs only complete matches, but wait-for reporting uses
    pending waves to say precisely *which* ranks a collective blocks on.
    """

    comm_id: int
    index: int
    arrived: Dict[int, OpRef] = field(default_factory=dict)


@dataclass
class MatchedTrace:
    """A trace together with its matching information.

    ``send_of`` / ``recv_of`` encode the bijection between matched sends
    and receives; ``probe_match`` maps each probe to the send it
    observed (probes do not consume the send — rule 2's "only differs
    ... since it does not receive a message"); ``collective_of`` maps
    every participating op to its complete match set, which only exists
    once the set is complete; ``request_op`` resolves request ids to the
    non-blocking operation that created them.

    Unmatched operations (possible in deadlocked traces) simply have no
    entry.
    """

    trace: Trace
    comms: CommRegistry
    send_of: Dict[OpRef, OpRef] = field(default_factory=dict)
    recv_of: Dict[OpRef, OpRef] = field(default_factory=dict)
    probe_match: Dict[OpRef, OpRef] = field(default_factory=dict)
    collectives: List[CollectiveMatch] = field(default_factory=list)
    pending_collectives: List[PendingCollective] = field(default_factory=list)
    request_op: Dict[Tuple[int, int], OpRef] = field(default_factory=dict)
    _coll_index: Dict[OpRef, CollectiveMatch] = field(default_factory=dict)
    _pending_index: Dict[OpRef, PendingCollective] = field(default_factory=dict)

    def add_p2p_match(self, send: OpRef, recv: OpRef) -> None:
        """Record that send ``send`` matches receive ``recv``."""
        if recv in self.send_of or send in self.recv_of:
            raise ValueError(
                f"duplicate p2p match: send {send} / recv {recv}"
            )
        self.send_of[recv] = send
        self.recv_of[send] = recv

    def add_probe_match(self, probe: OpRef, send: OpRef) -> None:
        if probe in self.probe_match:
            raise ValueError(f"duplicate probe match for {probe}")
        self.probe_match[probe] = send

    def add_collective_match(self, match: CollectiveMatch) -> None:
        self.collectives.append(match)
        for ref in match.members:
            if ref in self._coll_index:
                raise ValueError(f"operation {ref} in two collective matches")
            self._coll_index[ref] = match

    def add_pending_collective(self, pending: PendingCollective) -> None:
        self.pending_collectives.append(pending)
        for ref in pending.arrived.values():
            if ref in self._coll_index or ref in self._pending_index:
                raise ValueError(f"operation {ref} already in a wave")
            self._pending_index[ref] = pending

    def pending_collective_of(self, ref: OpRef) -> Optional[PendingCollective]:
        return self._pending_index.get(ref)

    def register_request(self, rank: int, request: int, creator: OpRef) -> None:
        key = (rank, request)
        if key in self.request_op:
            raise ValueError(f"request {request} of rank {rank} reused")
        self.request_op[key] = creator

    # -- queries the transition system needs ----------------------------

    def match_of(self, ref: OpRef) -> Optional[OpRef]:
        """Matching partner of a send/receive, or the send a probe saw."""
        op = self.trace.op(ref)
        if op.is_send():
            return self.recv_of.get(ref)
        if op.is_recv():
            return self.send_of.get(ref)
        if op.is_probe():
            return self.probe_match.get(ref)
        raise ValueError(f"{op.describe()} has no p2p match partner")

    def collective_match(self, ref: OpRef) -> Optional[CollectiveMatch]:
        return self._coll_index.get(ref)

    def request_creator(self, rank: int, request: int) -> OpRef:
        try:
            return self.request_op[(rank, request)]
        except KeyError:
            raise KeyError(
                f"request {request} of rank {rank} has no creator in trace"
            ) from None

    def completion_targets(self, ref: OpRef) -> Tuple[OpRef, ...]:
        """The non-blocking ops ``o_{i,j_0}..o_{i,j_x}`` a completion uses."""
        op = self.trace.op(ref)
        if not op.is_completion():
            raise ValueError(f"{op.describe()} is not a completion")
        return tuple(
            self.request_creator(op.rank, req) for req in op.requests
        )

    def validate(self) -> None:
        """Internal consistency checks (used by tests and the matchers)."""
        for recv_ref, send_ref in self.send_of.items():
            send = self.trace.op(send_ref)
            recv = self.trace.op(recv_ref)
            if not recv.envelope_matches_send(send):
                raise ValueError(
                    f"recorded match {send.describe()} -> {recv.describe()}"
                    " violates envelope matching"
                )
        for match in self.collectives:
            comm = self.comms.get(match.comm_id)
            ranks = sorted(r for r, _ in match.members)
            if ranks != sorted(comm.group):
                raise ValueError(
                    f"collective match on comm {match.comm_id} has ranks"
                    f" {ranks}, expected {sorted(comm.group)}"
                )
            kinds = {self.trace.op(ref).kind for ref in match.members}
            if len(kinds) != 1:
                raise ValueError(
                    f"collective match mixes operation kinds {kinds}"
                )
        for (rank, _req), creator in self.request_op.items():
            if creator[0] != rank:
                raise ValueError("request creator recorded on wrong rank")
