"""Trace and message (de)serialization: record once, analyze anywhere.

Matched traces serialize to a versioned JSON document so runs recorded
by the virtual runtime (or, in principle, a real PMPI interception
layer producing the same schema) can be stored, shipped, and analyzed
offline. The format is intentionally plain: one object per operation
with only the fields deadlock analysis consumes.

The second half is the wire codec for the distributed tool's message
vocabulary (:mod:`repro.core.messages`): :func:`encode_message` turns
any protocol message into a plain ``(tag, payload)`` tuple of
primitives and :func:`decode_message` reverses it. The sharded
analysis backend ships batches of these tuples across process
boundaries — plain tuples pickle an order of magnitude faster than
dataclass instances and pin the cross-process wire format explicitly
instead of leaning on pickle's class-by-reference behaviour.
"""
from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Tuple, Type

from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import OpKind, WORLD_COMM_ID
from repro.mpi.ops import Operation
from repro.mpi.trace import (
    CollectiveMatch,
    MatchedTrace,
    PendingCollective,
    Trace,
)
from repro.util.errors import TraceError

FORMAT_VERSION = 1

_KIND_BY_NAME = {kind.name: kind for kind in OpKind}


def _op_to_dict(op: Operation) -> Dict[str, Any]:
    out: Dict[str, Any] = {"kind": op.kind.name}
    if op.comm_id != WORLD_COMM_ID:
        out["comm"] = op.comm_id
    for attr, key in (
        ("peer", "peer"),
        ("root", "root"),
        ("request", "request"),
        ("observed_peer", "obs_peer"),
        ("observed_tag", "obs_tag"),
        ("sendrecv_group", "srg"),
    ):
        value = getattr(op, attr)
        if value is not None:
            out[key] = value
    if op.tag:
        out["tag"] = op.tag
    if op.requests:
        out["requests"] = list(op.requests)
    if op.completed_indices:
        out["completed"] = list(op.completed_indices)
    if op.test_flag:
        out["flag"] = True
    if op.nbytes:
        out["nbytes"] = op.nbytes
    if op.location:
        out["location"] = op.location
    return out


def _op_from_dict(rank: int, ts: int, data: Dict[str, Any]) -> Operation:
    try:
        kind = _KIND_BY_NAME[data["kind"]]
    except KeyError:
        raise TraceError(f"unknown operation kind {data.get('kind')!r}")
    return Operation(
        kind=kind,
        rank=rank,
        ts=ts,
        comm_id=data.get("comm", WORLD_COMM_ID),
        peer=data.get("peer"),
        tag=data.get("tag", 0),
        root=data.get("root"),
        request=data.get("request"),
        requests=tuple(data.get("requests", ())),
        observed_peer=data.get("obs_peer"),
        observed_tag=data.get("obs_tag"),
        completed_indices=tuple(data.get("completed", ())),
        test_flag=data.get("flag", False),
        nbytes=data.get("nbytes", 0),
        sendrecv_group=data.get("srg"),
        location=data.get("location", ""),
    )


def matched_trace_to_dict(matched: MatchedTrace) -> Dict[str, Any]:
    """Serialize a matched trace to a JSON-compatible dict."""
    trace = matched.trace
    comms: List[Dict[str, Any]] = []
    for comm_id in matched.comms.all_ids():
        if comm_id == WORLD_COMM_ID:
            continue
        comm = matched.comms.get(comm_id)
        comms.append({"id": comm.comm_id, "group": list(comm.group)})
    return {
        "format": FORMAT_VERSION,
        "num_processes": trace.num_processes,
        "communicators": comms,
        "ranks": [
            [_op_to_dict(op) for op in trace.sequence(rank)]
            for rank in range(trace.num_processes)
        ],
        "p2p_matches": [
            [list(send), list(recv)]
            for recv, send in sorted(matched.send_of.items())
        ],
        "probe_matches": [
            [list(probe), list(send)]
            for probe, send in sorted(matched.probe_match.items())
        ],
        "collectives": [
            {"comm": m.comm_id, "members": sorted(map(list, m.members))}
            for m in matched.collectives
        ],
        "pending_collectives": [
            {
                "comm": p.comm_id,
                "index": p.index,
                "arrived": {str(r): list(ref) for r, ref in p.arrived.items()},
            }
            for p in matched.pending_collectives
        ],
        "requests": [
            [rank, req, list(creator)]
            for (rank, req), creator in sorted(matched.request_op.items())
        ],
    }


def matched_trace_from_dict(data: Dict[str, Any]) -> MatchedTrace:
    """Reconstruct a matched trace; validates internal consistency."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    num = data["num_processes"]
    sequences = [
        [
            _op_from_dict(rank, ts, op_data)
            for ts, op_data in enumerate(data["ranks"][rank])
        ]
        for rank in range(num)
    ]
    trace = Trace(sequences)
    comms = CommRegistry(num)
    for entry in sorted(data.get("communicators", ()), key=lambda e: e["id"]):
        comm = comms.create(entry["group"])
        if comm.comm_id != entry["id"]:
            raise TraceError(
                f"communicator ids must be dense and ordered; got "
                f"{entry['id']}, expected {comm.comm_id}"
            )
    matched = MatchedTrace(trace, comms)
    for send, recv in data.get("p2p_matches", ()):
        matched.add_p2p_match(tuple(send), tuple(recv))
    for probe, send in data.get("probe_matches", ()):
        matched.add_probe_match(tuple(probe), tuple(send))
    for entry in data.get("collectives", ()):
        matched.add_collective_match(
            CollectiveMatch(
                comm_id=entry["comm"],
                members=frozenset(tuple(m) for m in entry["members"]),
            )
        )
    for entry in data.get("pending_collectives", ()):
        matched.add_pending_collective(
            PendingCollective(
                comm_id=entry["comm"],
                index=entry["index"],
                arrived={
                    int(r): tuple(ref)
                    for r, ref in entry["arrived"].items()
                },
            )
        )
    for rank, req, creator in data.get("requests", ()):
        matched.register_request(rank, req, tuple(creator))
    matched.validate()
    return matched


def save_trace(matched: MatchedTrace, path: str) -> None:
    """Write a matched trace to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(matched_trace_to_dict(matched), handle)


def load_trace(path: str) -> MatchedTrace:
    """Read a matched trace from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise TraceError(f"{path} does not hold a trace document")
    return matched_trace_from_dict(document)


# ----------------------------------------------------------------------
# protocol message codec (cross-process wire format)
# ----------------------------------------------------------------------

#: tag -> (encode(msg) -> payload, decode(payload) -> msg). Built
#: lazily: repro.core.messages sits above this module in the import
#: graph (it pulls in repro.mpi.constants, which initializes the
#: repro.mpi package, which imports this module), so binding the
#: message classes at import time would trip the partial-init cycle.
#: A primitive wire tuple — heterogeneous by design.
WireTuple = Tuple[Any, ...]

_CODEC: Dict[str, Tuple[Callable[[Any], WireTuple],
                        Callable[[WireTuple], Any]]] = {}
_TAG_OF: Dict[Type[Any], str] = {}


def _encode_wait_entry(entry: Any) -> WireTuple:
    from repro.core.messages import CollectiveWait, P2PWait

    if isinstance(entry, P2PWait):
        return ("p", tuple(entry.or_targets), entry.reason)
    if isinstance(entry, CollectiveWait):
        return ("c", entry.comm_id, entry.wave_index)
    raise TraceError(f"cannot encode wait entry {type(entry).__name__}")


def _decode_wait_entry(data: WireTuple) -> Any:
    from repro.core.messages import CollectiveWait, P2PWait

    if data[0] == "p":
        return P2PWait(or_targets=tuple(data[1]), reason=data[2])
    if data[0] == "c":
        return CollectiveWait(comm_id=data[1], wave_index=data[2])
    raise TraceError(f"cannot decode wait entry tagged {data[0]!r}")


def _encode_wait_info(info: Any) -> WireTuple:
    return (
        info.rank,
        info.op_description,
        tuple(_encode_wait_entry(e) for e in info.entries),
        info.or_semantics,
    )


def _decode_wait_info(data: WireTuple) -> Any:
    from repro.core.messages import RankWaitInfo

    return RankWaitInfo(
        rank=data[0],
        op_description=data[1],
        entries=tuple(_decode_wait_entry(e) for e in data[2]),
        or_semantics=data[3],
    )


def _build_codec() -> None:
    from repro.core import messages as m

    def fields(cls: Type[Any], *names: str) -> None:
        tag = cls.__name__

        def enc(msg: Any, _names: Tuple[str, ...] = names) -> WireTuple:
            return tuple(getattr(msg, n) for n in _names)

        def dec(
            payload: WireTuple,
            _cls: Type[Any] = cls,
            _names: Tuple[str, ...] = names,
        ) -> Any:
            return _cls(**dict(zip(_names, payload)))

        _CODEC[tag] = (enc, dec)
        _TAG_OF[cls] = tag

    fields(m.RankDoneMsg, "rank")
    fields(m.PassSend, "send_rank", "send_ts", "comm_id", "dest", "tag",
           "nbytes")
    fields(m.RecvActive, "send_rank", "send_ts", "recv_rank", "recv_ts",
           "probe")
    fields(m.RecvActiveAck, "recv_rank", "recv_ts", "probe")
    fields(m.CollectiveAck, "comm_id", "wave_index")
    fields(m.RequestConsistentState, "detection_id")
    fields(m.Ping, "detection_id", "remaining")
    fields(m.Pong, "detection_id", "remaining")
    fields(m.AckConsistentState, "detection_id", "count")
    fields(m.RequestWaits, "detection_id")

    _CODEC["NewOpMsg"] = (
        lambda msg: (msg.op.rank, msg.op.ts, _op_to_dict(msg.op)),
        lambda p: m.NewOpMsg(_op_from_dict(p[0], p[1], p[2])),
    )
    _TAG_OF[m.NewOpMsg] = "NewOpMsg"
    _CODEC["CollectiveReady"] = (
        lambda msg: (msg.comm_id, msg.wave_index, msg.kind.name, msg.root,
                     msg.count),
        lambda p: m.CollectiveReady(
            comm_id=p[0], wave_index=p[1], kind=_KIND_BY_NAME[p[2]],
            root=p[3], count=p[4],
        ),
    )
    _TAG_OF[m.CollectiveReady] = "CollectiveReady"
    _CODEC["WaitInfoMsg"] = (
        lambda msg: (
            msg.detection_id,
            msg.node_id,
            tuple(_encode_wait_info(i) for i in msg.infos),
            tuple(msg.unblocked),
            tuple(msg.finished),
        ),
        lambda p: m.WaitInfoMsg(
            detection_id=p[0],
            node_id=p[1],
            infos=tuple(_decode_wait_info(i) for i in p[2]),
            unblocked=tuple(p[3]),
            finished=tuple(p[4]),
        ),
    )
    _TAG_OF[m.WaitInfoMsg] = "WaitInfoMsg"


def encode_message(msg: Any, context: Any = None) -> WireTuple:
    """Encode a protocol message as a primitive wire tuple.

    Without ``context`` the result is the exact two-element
    ``(tag, payload)`` tuple the sharded backend has always shipped —
    bit-identical to the context-free wire format, so enabling
    observability later cannot perturb equivalence baselines. With
    ``context`` (any primitive tuple; in practice a
    :class:`repro.obs.dist.TraceContext` wire form) the result is
    ``(tag, payload, context)`` — :func:`decode_message` ignores the
    third element and :func:`message_context` retrieves it.
    """
    if not _TAG_OF:
        _build_codec()
    try:
        tag = _TAG_OF[type(msg)]
    except KeyError:
        raise TraceError(
            f"no wire codec for message type {type(msg).__name__}"
        ) from None
    payload = _CODEC[tag][0](msg)
    if context is None:
        return (tag, payload)
    return (tag, payload, tuple(context))


def decode_message(data: WireTuple) -> Any:
    """Reverse of :func:`encode_message` (trace context, if any, is
    ignored here — see :func:`message_context`)."""
    if not _CODEC:
        _build_codec()
    tag = data[0]
    try:
        decoder = _CODEC[tag][1]
    except KeyError:
        raise TraceError(f"no wire codec for message tag {tag!r}") from None
    return decoder(data[1])


def message_context(data: WireTuple) -> Any:
    """The trace context riding on a wire tuple, or None."""
    return data[2] if len(data) > 2 else None
