"""MPI-model constants and operation kinds.

This module defines the vocabulary of the MPI subset the paper's wait
state analysis covers: every call class named in the blocking predicate
``b`` of Section 3.1, plus the communicator-management collectives that
Section 3.1 treats "as collectives" (e.g. ``MPI_Comm_dup``).

The integer sentinels mirror MPI's wildcard conventions so that rank
programs read like mpi4py code.
"""
from __future__ import annotations

import enum

#: Wildcard source for receive operations (``MPI_ANY_SOURCE``).
ANY_SOURCE: int = -1

#: Wildcard tag for receive operations (``MPI_ANY_TAG``).
ANY_TAG: int = -1

#: Null process: operations addressed here complete immediately and
#: match nothing (``MPI_PROC_NULL``).
PROC_NULL: int = -2

#: Identifier of the predefined world communicator.
WORLD_COMM_ID: int = 0


class OpKind(enum.Enum):
    """Kind of an intercepted MPI operation.

    The grouping properties (:func:`is_send_kind` etc.) encode the
    classification that the paper's transition rules dispatch on.
    """

    # Blocking point-to-point.
    SEND = "MPI_Send"
    SSEND = "MPI_Ssend"
    BSEND = "MPI_Bsend"
    RSEND = "MPI_Rsend"
    RECV = "MPI_Recv"
    PROBE = "MPI_Probe"

    # Persistent communication (Section 3.1: handled like
    # non-blocking point-to-point operations). The *_INIT calls create
    # inactive persistent requests; each MPI_Start activation is
    # recorded as its own request-creating operation instance.
    SEND_INIT = "MPI_Send_init"
    RECV_INIT = "MPI_Recv_init"
    PSTART_SEND = "MPI_Start[send]"
    PSTART_RECV = "MPI_Start[recv]"
    REQUEST_FREE = "MPI_Request_free"

    # Non-blocking point-to-point.
    ISEND = "MPI_Isend"
    ISSEND = "MPI_Issend"
    IBSEND = "MPI_Ibsend"
    IRSEND = "MPI_Irsend"
    IRECV = "MPI_Irecv"
    IPROBE = "MPI_Iprobe"

    # Completion operations.
    WAIT = "MPI_Wait"
    WAITANY = "MPI_Waitany"
    WAITSOME = "MPI_Waitsome"
    WAITALL = "MPI_Waitall"
    TEST = "MPI_Test"
    TESTANY = "MPI_Testany"
    TESTSOME = "MPI_Testsome"
    TESTALL = "MPI_Testall"

    # Collectives (all considered synchronizing by the strict ``b``).
    BARRIER = "MPI_Barrier"
    BCAST = "MPI_Bcast"
    REDUCE = "MPI_Reduce"
    ALLREDUCE = "MPI_Allreduce"
    GATHER = "MPI_Gather"
    ALLGATHER = "MPI_Allgather"
    SCATTER = "MPI_Scatter"
    ALLTOALL = "MPI_Alltoall"
    SCAN = "MPI_Scan"
    REDUCE_SCATTER = "MPI_Reduce_scatter"
    COMM_DUP = "MPI_Comm_dup"
    COMM_SPLIT = "MPI_Comm_split"
    COMM_CREATE = "MPI_Comm_create"
    COMM_FREE = "MPI_Comm_free"

    # Termination. MPI_Finalize is collective in MPI, but the paper makes
    # it the designated terminal operation with *no* applicable rule.
    FINALIZE = "MPI_Finalize"

    # A Sendrecv is decomposed into Isend+Irecv+Waitall by the runtime
    # (footnote 1 of the paper); this marker tags the decomposed ops so
    # deadlock reports can present them as a single call.
    SENDRECV_MARKER = "MPI_Sendrecv"


_SEND_KINDS = frozenset(
    {
        OpKind.SEND,
        OpKind.SSEND,
        OpKind.BSEND,
        OpKind.RSEND,
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
        OpKind.PSTART_SEND,
    }
)

_RECV_KINDS = frozenset({OpKind.RECV, OpKind.IRECV, OpKind.PSTART_RECV})

_PROBE_KINDS = frozenset({OpKind.PROBE, OpKind.IPROBE})

_NONBLOCKING_P2P_KINDS = frozenset(
    {
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
        OpKind.IRECV,
        OpKind.PSTART_SEND,
        OpKind.PSTART_RECV,
    }
)

_COLLECTIVE_KINDS = frozenset(
    {
        OpKind.BARRIER,
        OpKind.BCAST,
        OpKind.REDUCE,
        OpKind.ALLREDUCE,
        OpKind.GATHER,
        OpKind.ALLGATHER,
        OpKind.SCATTER,
        OpKind.ALLTOALL,
        OpKind.SCAN,
        OpKind.REDUCE_SCATTER,
        OpKind.COMM_DUP,
        OpKind.COMM_SPLIT,
        OpKind.COMM_CREATE,
        OpKind.COMM_FREE,
    }
)

_ROOTED_COLLECTIVE_KINDS = frozenset(
    {OpKind.BCAST, OpKind.REDUCE, OpKind.GATHER, OpKind.SCATTER}
)

_WAIT_KINDS = frozenset(
    {OpKind.WAIT, OpKind.WAITANY, OpKind.WAITSOME, OpKind.WAITALL}
)

_TEST_KINDS = frozenset(
    {OpKind.TEST, OpKind.TESTANY, OpKind.TESTSOME, OpKind.TESTALL}
)

# Completion kinds whose transition rule is satisfied by *one* matched and
# active associated operation (rule 4(I)); the complement of the wait
# kinds needs *all* of them (rule 4(II)).
_ANY_COMPLETION_KINDS = frozenset(
    {OpKind.WAITANY, OpKind.WAITSOME, OpKind.TESTANY, OpKind.TESTSOME}
)


def is_send_kind(kind: OpKind) -> bool:
    """Return ``True`` for any send flavour, blocking or not."""
    return kind in _SEND_KINDS


def is_recv_kind(kind: OpKind) -> bool:
    """Return ``True`` for blocking and non-blocking receives."""
    return kind in _RECV_KINDS


def is_probe_kind(kind: OpKind) -> bool:
    """Return ``True`` for ``MPI_Probe`` / ``MPI_Iprobe``."""
    return kind in _PROBE_KINDS


def is_p2p_kind(kind: OpKind) -> bool:
    """Return ``True`` for any point-to-point or probe operation."""
    return kind in _SEND_KINDS or kind in _RECV_KINDS or kind in _PROBE_KINDS


def is_nonblocking_p2p_kind(kind: OpKind) -> bool:
    """Return ``True`` for request-creating point-to-point operations."""
    return kind in _NONBLOCKING_P2P_KINDS


def is_collective_kind(kind: OpKind) -> bool:
    """Return ``True`` for operations matched by collective matching."""
    return kind in _COLLECTIVE_KINDS


def is_rooted_collective_kind(kind: OpKind) -> bool:
    """Return ``True`` for collectives that carry a root argument."""
    return kind in _ROOTED_COLLECTIVE_KINDS


def is_wait_kind(kind: OpKind) -> bool:
    """Return ``True`` for blocking completion operations."""
    return kind in _WAIT_KINDS


def is_test_kind(kind: OpKind) -> bool:
    """Return ``True`` for non-blocking completion operations."""
    return kind in _TEST_KINDS


def is_completion_kind(kind: OpKind) -> bool:
    """Return ``True`` for operations completing MPI requests."""
    return kind in _WAIT_KINDS or kind in _TEST_KINDS


def completion_needs_all(kind: OpKind) -> bool:
    """Whether a completion op requires *all* its requests completable.

    ``MPI_Wait`` and ``MPI_Waitall`` (rule 4(II)) need every associated
    non-blocking operation matched with an active partner, while
    ``MPI_Waitany``/``MPI_Waitsome`` (rule 4(I)) need just one.
    """
    if not is_completion_kind(kind):
        raise ValueError(f"{kind} is not a completion operation")
    return kind not in _ANY_COMPLETION_KINDS
