"""Operation records: the elements of the traces ``t(i)``.

Every intercepted MPI call becomes one :class:`Operation`. The record
carries exactly the fields that point-to-point matching, collective
matching, and the wait state transition system consume:

* identity: ``(rank, ts)`` — the pair ``(i, j)`` of the paper;
* call classification: :class:`~repro.mpi.constants.OpKind`;
* p2p envelope: ``peer``/``tag``/``comm_id`` (``peer`` is the destination
  for sends, the source for receives/probes — possibly ``ANY_SOURCE``);
* observed runtime outcome: ``observed_peer``/``observed_tag`` record the
  matching decision of the (virtual) MPI implementation for wildcard
  receives, mirroring how MUST "uses return values of MPI calls to
  observe the interleaving that occurs at runtime";
* request linkage for non-blocking operations and their completions.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    OpKind,
    is_collective_kind,
    is_completion_kind,
    is_nonblocking_p2p_kind,
    is_p2p_kind,
    is_probe_kind,
    is_recv_kind,
    is_send_kind,
)

#: Reference to an operation as the paper writes it: ``(i, j)`` with the
#: process identifier first and the local logical timestamp second.
OpRef = Tuple[int, int]


@dataclass
class Operation:
    """One MPI operation ``o_{i,j}`` of a process trace.

    Parameters mirror the call arguments that matter for matching and
    blocking analysis; payload contents are irrelevant to deadlock
    detection and only a byte count is kept for the cost model.
    """

    kind: OpKind
    rank: int
    ts: int
    comm_id: int = 0
    #: Destination rank for sends, source rank for receives/probes
    #: (world-rank numbering; may be ``ANY_SOURCE`` or ``PROC_NULL``).
    peer: Optional[int] = None
    tag: int = 0
    #: Root world rank for rooted collectives.
    root: Optional[int] = None
    #: Request id created by a non-blocking p2p operation.
    request: Optional[int] = None
    #: Request ids a completion operation waits/tests on.
    requests: Tuple[int, ...] = ()
    #: Matching decision observed at runtime for wildcard receives: the
    #: actual source rank (and tag) of the received message.
    observed_peer: Optional[int] = None
    observed_tag: Optional[int] = None
    #: Indices (into ``requests``) that the runtime observed completing
    #: for WAITANY/WAITSOME/TEST* operations.
    completed_indices: Tuple[int, ...] = ()
    #: For TEST*: whether the runtime observed the test succeed. Tests
    #: are non-blocking either way; this only affects request bookkeeping.
    test_flag: bool = False
    #: Payload size in bytes (cost model only).
    nbytes: int = 0
    #: Set when this op is part of a decomposed MPI_Sendrecv; the value
    #: groups the decomposed ops of one Sendrecv for report rendering.
    sendrecv_group: Optional[int] = None
    #: Free-form source location for reports ("file.c:123").
    location: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"negative rank {self.rank}")
        if self.ts < 0:
            raise ValueError(f"negative timestamp {self.ts}")
        if is_p2p_kind(self.kind) and self.peer is None:
            raise ValueError(f"{self.kind.value} requires a peer rank")
        if is_send_kind(self.kind) and self.peer == ANY_SOURCE:
            raise ValueError("sends cannot target ANY_SOURCE")
        if is_nonblocking_p2p_kind(self.kind) and self.request is None:
            raise ValueError(f"{self.kind.value} requires a request id")
        if is_completion_kind(self.kind) and not self.requests:
            raise ValueError(f"{self.kind.value} requires request ids")

    # -- classification helpers (used pervasively by the analyses) ------

    @property
    def ref(self) -> OpRef:
        """The ``(i, j)`` pair identifying this operation."""
        return (self.rank, self.ts)

    def is_send(self) -> bool:
        return is_send_kind(self.kind)

    def is_recv(self) -> bool:
        return is_recv_kind(self.kind)

    def is_probe(self) -> bool:
        return is_probe_kind(self.kind)

    def is_p2p(self) -> bool:
        return is_p2p_kind(self.kind)

    def is_collective(self) -> bool:
        return is_collective_kind(self.kind)

    def is_completion(self) -> bool:
        return is_completion_kind(self.kind)

    def is_finalize(self) -> bool:
        return self.kind is OpKind.FINALIZE

    def is_wildcard_receive(self) -> bool:
        """True for receives/probes posted with ``MPI_ANY_SOURCE``."""
        return (self.is_recv() or self.is_probe()) and self.peer == ANY_SOURCE

    def uses_any_tag(self) -> bool:
        return (self.is_recv() or self.is_probe()) and self.tag == ANY_TAG

    def effective_source(self) -> Optional[int]:
        """Source rank after resolving wildcards with runtime knowledge.

        ``None`` when a wildcard receive never matched (e.g. it is part
        of a manifest deadlock and the runtime observed no message).
        """
        if not (self.is_recv() or self.is_probe()):
            raise ValueError("effective_source applies to receives/probes")
        if self.peer != ANY_SOURCE:
            return self.peer
        return self.observed_peer

    def envelope_matches_send(self, send: "Operation") -> bool:
        """Whether ``send``'s envelope is admissible for this receive.

        This is MPI envelope matching: communicator and tag must agree
        (modulo ``ANY_TAG``) and the source must agree (modulo
        ``ANY_SOURCE``). Order constraints are the matcher's job.
        """
        if not (self.is_recv() or self.is_probe()) or not send.is_send():
            return False
        if self.comm_id != send.comm_id:
            return False
        if self.tag != ANY_TAG and self.tag != send.tag:
            return False
        if self.peer != ANY_SOURCE and self.peer != send.rank:
            return False
        return send.peer == self.rank

    def describe(self) -> str:
        """Short human-readable rendering for reports and errors."""
        if self.sendrecv_group is not None:
            base = f"{OpKind.SENDRECV_MARKER.value}[part {self.kind.value}]"
        else:
            base = self.kind.value
        details = []
        if self.is_send():
            details.append(f"to={self.peer}")
        elif self.is_recv() or self.is_probe():
            src = "ANY" if self.peer == ANY_SOURCE else str(self.peer)
            details.append(f"from={src}")
        if self.is_p2p() and self.tag not in (0, ANY_TAG):
            details.append(f"tag={self.tag}")
        if self.root is not None:
            details.append(f"root={self.root}")
        if self.comm_id != 0:
            details.append(f"comm={self.comm_id}")
        suffix = f"({', '.join(details)})" if details else "()"
        return f"{base}{suffix}@{self.rank}:{self.ts}"


def make_op(kind: OpKind, rank: int, ts: int, **kwargs: object) -> Operation:
    """Convenience constructor used heavily by tests and workloads."""
    return Operation(kind=kind, rank=rank, ts=ts, **kwargs)  # type: ignore[arg-type]
