"""The blocking predicate ``b : Op -> {True, False}`` of Section 3.1.

The paper fixes a *strict* interpretation of the MPI standard: every
standard-mode send blocks (no buffering assumed) and every collective
synchronizes. Section 3.3 discusses the freedoms MPI grants
implementations; :class:`BlockingSemantics` makes those freedoms
explicit so that

* the tool analyses default to the strict ``b`` (detecting potential
  deadlocks that a buffering MPI would mask, like 126.lammps's), and
* the virtual runtime can execute with a *relaxed* ``b`` that models a
  realistic MPI (buffered standard sends, non-synchronizing non-barrier
  collectives), which is what makes "detected but not manifest"
  scenarios representable at all.
"""
from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.constants import (
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_test_kind,
    is_wait_kind,
)
from repro.mpi.ops import Operation

# Collectives where even a relaxed MPI must synchronize all participants
# (data flows from/to everyone, or the call is explicitly a barrier).
_ALWAYS_SYNC_COLLECTIVES = frozenset(
    {
        OpKind.BARRIER,
        OpKind.ALLREDUCE,
        OpKind.ALLGATHER,
        OpKind.ALLTOALL,
    }
)


@dataclass(frozen=True)
class BlockingSemantics:
    """Configuration of the MPI freedoms of Section 3.3.

    ``strict()`` is the paper's ``b``; ``relaxed(threshold)`` models a
    typical eager-protocol MPI implementation.
    """

    #: If True, standard-mode MPI_Send with payloads up to
    #: ``eager_threshold`` completes without a matching receive
    #: (implementation-internal buffering).
    buffer_standard_sends: bool = False
    #: Eager-protocol cutoff in bytes; only meaningful when
    #: ``buffer_standard_sends`` is set.
    eager_threshold: int = 1 << 16
    #: If True, every collective synchronizes its whole group (the strict
    #: reading). If False, rooted/non-barrier collectives let
    #: non-participating-in-data ranks leave early.
    synchronizing_collectives: bool = True

    @staticmethod
    def strict() -> "BlockingSemantics":
        """The paper's fixed definition of ``b`` (Section 3.1)."""
        return BlockingSemantics(
            buffer_standard_sends=False, synchronizing_collectives=True
        )

    @staticmethod
    def relaxed(eager_threshold: int = 1 << 16) -> "BlockingSemantics":
        """A realistic MPI: eager sends buffer, collectives relax."""
        return BlockingSemantics(
            buffer_standard_sends=True,
            eager_threshold=eager_threshold,
            synchronizing_collectives=False,
        )

    def send_buffers(self, op: Operation) -> bool:
        """Whether a standard-mode send of ``op``'s size may buffer."""
        if op.kind not in (OpKind.SEND, OpKind.ISEND):
            return False
        return self.buffer_standard_sends and op.nbytes <= self.eager_threshold

    def collective_synchronizes(self, kind: OpKind) -> bool:
        """Whether a collective kind synchronizes its full group."""
        if not is_collective_kind(kind):
            raise ValueError(f"{kind} is not a collective")
        if self.synchronizing_collectives:
            return True
        return kind in _ALWAYS_SYNC_COLLECTIVES


def is_blocking(op: Operation, semantics: BlockingSemantics | None = None) -> bool:
    """The predicate ``b(i, j)`` from Section 3.1.

    With the default (strict) semantics this is verbatim the paper's
    definition: MPI_Send, MPI_Recv, MPI_Probe, collectives and
    MPI_Wait[any,some,all] block; MPI_Iprobe, the non-blocking
    point-to-point flavours, MPI_Bsend/MPI_Rsend and MPI_Test* do not.
    """
    if semantics is None:
        semantics = BlockingSemantics.strict()
    kind = op.kind
    if op.is_p2p() and op.peer == PROC_NULL:
        # Operations on MPI_PROC_NULL return immediately and match
        # nothing, under every MPI implementation.
        return False
    if kind is OpKind.FINALIZE:
        # Finalize is the designated terminal operation: treated as
        # blocking so no rule-(1) transition fires past it.
        return True
    if kind in (OpKind.SEND, OpKind.SSEND):
        if kind is OpKind.SEND and semantics.send_buffers(op):
            return False
        return True
    if kind in (OpKind.BSEND, OpKind.RSEND):
        return False
    if kind in (OpKind.RECV, OpKind.PROBE):
        return True
    if kind in (
        OpKind.ISEND,
        OpKind.ISSEND,
        OpKind.IBSEND,
        OpKind.IRSEND,
        OpKind.IRECV,
        OpKind.IPROBE,
        OpKind.PSTART_SEND,
        OpKind.PSTART_RECV,
    ):
        return False
    if kind in (OpKind.SEND_INIT, OpKind.RECV_INIT, OpKind.REQUEST_FREE):
        # Persistent-request management is purely local.
        return False
    if is_collective_kind(kind):
        return True
    if is_wait_kind(kind):
        return True
    if is_test_kind(kind):
        return False
    raise ValueError(f"blocking predicate undefined for {kind}")
