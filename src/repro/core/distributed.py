"""Distributed wait state tracking: the first-layer TBON node.

This implements Figure 7's handler set plus the Section 5 protocol
endpoints, over the per-operation state of :mod:`repro.core.opstate`:

* ``newOp``      — an application operation arrives (sends route their
  ``passSend``; receives/probes enter the local matcher);
* ``activate``   — the transition system reaches an operation (emits
  ``collectiveReady`` / ``recvActive`` / deferred ``recvActiveAck``);
* ``handlePassSend`` / ``handleRecvActive`` / ``handleRecvActiveAck``
  / ``handleCollectiveAck`` — exactly the paper's message handlers;
* ``handleRequestConsistentState`` (Figure 8: freeze + double
  ping-pong), ``handleRequestWaits`` — the detection protocol.

Each node owns the state components ``l_i`` of exactly the ranks that
report to it and advances them whenever an operation's ``canAdvance``
holds; trace windows slide, so memory stays bounded when the tool
keeps up (Section 4.2).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.messages import (
    AckConsistentState,
    CollectiveAck,
    CollectiveReady,
    CollectiveWait,
    NewOpMsg,
    P2PWait,
    PassSend,
    Ping,
    Pong,
    RankDoneMsg,
    RankWaitInfo,
    RecvActive,
    RecvActiveAck,
    RequestConsistentState,
    RequestWaits,
    WaitInfoMsg,
)
from repro.core.opstate import OpState, RankWindow
from repro.matching.distributed_p2p import MatchEvent, NodeP2PMatcher
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, PROC_NULL, OpKind
from repro.mpi.ops import Operation, OpRef
from repro.obs.events import PID_TBON, PID_WAIT
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightRecorder
from repro.tbon.aggregation import WaveAggregator, WaveContribution
from repro.tbon.network import Transport
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError


@dataclass
class _DetectionState:
    detection_id: int
    outstanding_pongs: Set[int] = field(default_factory=set)
    acked: bool = False


def wait_info_args(info: RankWaitInfo, comms: CommRegistry) -> Dict[str, object]:
    """Serialize a :class:`RankWaitInfo` into trace-event ``args``.

    This is the wire format :mod:`repro.obs.causal` parses back when it
    reconstructs wait-for conditions from a trace artifact, so both
    sides live off this one function. Collective entries carry the
    communicator group because the artifact reader has no registry to
    resolve it against.
    """
    entries: List[Dict[str, object]] = []
    for entry in info.entries:
        if isinstance(entry, P2PWait):
            entries.append(
                {"targets": list(entry.or_targets), "reason": entry.reason}
            )
        elif isinstance(entry, CollectiveWait):
            entries.append(
                {
                    "collective": {
                        "comm": entry.comm_id,
                        "wave": entry.wave_index,
                        "group": list(comms.get(entry.comm_id).group),
                    }
                }
            )
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unknown wait entry {entry!r}")
    return {
        "rank": info.rank,
        "op": info.op_description,
        "or": info.or_semantics,
        "entries": entries,
    }


class FirstLayerNode:
    """One first-layer tool node: hosts a contiguous block of ranks."""

    def __init__(
        self,
        node_id: int,
        topology: TbonTopology,
        comms: CommRegistry,
        *,
        window_limit: int = 1_000_000,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.comms = comms
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        self.hosted: Tuple[int, ...] = topology.ranks_of_host(node_id)
        # Live ring-buffer handles for the per-op record sites (see
        # FlightRecorder.live_buffer): the wait-state tracker appends
        # inline to stay within the observability parity bound.
        self._flight_bufs = (
            {rank: self.flight.live_buffer(rank) for rank in self.hosted}
            if self.flight.enabled
            else None
        )
        self._flight_trim_at = self.flight.trim_at
        self.windows: Dict[int, RankWindow] = {
            rank: RankWindow(rank, max_ops=window_limit)
            for rank in self.hosted
        }
        self.matcher = NodeP2PMatcher()
        #: Next collective wave index per (rank, comm).
        self._next_wave: Dict[Tuple[int, int], int] = {}
        #: Wave key -> {rank: op ts} of local participants seen so far.
        self._wave_ops: Dict[Tuple[int, int], Dict[int, int]] = {}
        #: Op ref -> wave key (O(1) lookup; evicted with the wave).
        self._wave_key_by_op: Dict[OpRef, Tuple[int, int]] = {}
        #: Local readiness aggregation with consistency checks.
        self._wave_agg = WaveAggregator()
        self._local_participant_cache: Dict[int, int] = {}
        self.frozen = False
        self._detection: Optional[_DetectionState] = None
        #: Statistics (message counts by type name).
        self.stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(self, msg: object, net: Transport, src: int) -> None:
        self.stats[type(msg).__name__] = self.stats.get(type(msg).__name__, 0) + 1
        if isinstance(msg, NewOpMsg):
            self._handle_new_op(msg.op, net)
        elif isinstance(msg, RankDoneMsg):
            self._handle_rank_done(msg, net)
        elif isinstance(msg, PassSend):
            self._handle_pass_send(msg, net)
        elif isinstance(msg, RecvActive):
            self._handle_recv_active(msg, net)
        elif isinstance(msg, RecvActiveAck):
            self._handle_recv_active_ack(msg, net)
        elif isinstance(msg, CollectiveAck):
            self._handle_collective_ack(msg, net)
        elif isinstance(msg, RequestConsistentState):
            self._handle_request_consistent_state(msg, net)
        elif isinstance(msg, Ping):
            net.send(self.node_id, src,
                     Pong(msg.detection_id, msg.remaining), Pong.wire_size)
        elif isinstance(msg, Pong):
            self._handle_pong(msg, net, src)
        elif isinstance(msg, RequestWaits):
            self._handle_request_waits(msg, net)
        else:
            raise ProtocolError(
                f"first-layer node {self.node_id} cannot handle "
                f"{type(msg).__name__}"
            )

    # ------------------------------------------------------------------
    # newOp / activate / advance (Figure 7 core)
    # ------------------------------------------------------------------

    def _handle_new_op(self, op: Operation, net: Transport) -> None:
        window = self.windows.get(op.rank)
        if window is None:
            raise ProtocolError(
                f"rank {op.rank} not hosted on node {self.node_id}"
            )
        state = window.add(op)
        fbufs = self._flight_bufs
        if fbufs is not None:
            fbuf = fbufs[op.rank]
            fbuf.append((net.now, "newOp", op))
            if len(fbuf) >= self._flight_trim_at:
                self.flight.trim(op.rank)
        if net.obs.enabled:
            net.obs.metrics.gauge(
                f"waitstate.window.node{self.node_id}"
            ).set(len(window))
        if op.is_send() and op.peer is not None and op.peer >= 0:
            # newOp: route the send's matching info to the node hosting
            # the matching receive (possibly ourselves — uniform path).
            info = PassSend(
                send_rank=op.rank,
                send_ts=op.ts,
                comm_id=op.comm_id,
                dest=op.peer,
                tag=op.tag,
                nbytes=op.nbytes,
            )
            net.send(
                self.node_id,
                self.topology.host_of_rank(op.peer),
                info,
                PassSend.wire_size,
            )
        elif (
            op.kind in (
                OpKind.RECV, OpKind.IRECV, OpKind.PSTART_RECV, OpKind.PROBE
            )
            and op.peer != PROC_NULL
        ):
            event = self.matcher.post_receive(op)
            if event is not None:
                self._process_match(event, net)
        elif op.is_collective() or op.is_finalize():
            key = (op.rank, op.comm_id)
            index = self._next_wave.get(key, 0)
            self._next_wave[key] = index + 1
            if not op.is_finalize():
                wave = (op.comm_id, index)
                self._wave_ops.setdefault(wave, {})[op.rank] = op.ts
                self._wave_key_by_op[op.ref] = wave
        self._try_advance(op.rank, net)

    def _handle_rank_done(self, msg: RankDoneMsg, net: Transport) -> None:
        window = self.windows.get(msg.rank)
        if window is None:
            raise ProtocolError(
                f"rank {msg.rank} not hosted on node {self.node_id}"
            )
        window.done = True

    def _wave_of(self, op: Operation) -> Tuple[int, int]:
        wave = self._wave_key_by_op.get(op.ref)
        if wave is None:
            raise ProtocolError(f"no wave recorded for {op.describe()}")
        return wave

    def _local_participants(self, comm_id: int) -> int:
        cached = self._local_participant_cache.get(comm_id)
        if cached is None:
            group = set(self.comms.get(comm_id).group)
            cached = sum(1 for r in self.hosted if r in group)
            self._local_participant_cache[comm_id] = cached
        return cached

    def _activate(self, state: OpState, net: Transport) -> None:
        """The transition system reached this operation (Figure 7)."""
        op = state.op
        state.active = True
        state.activated = True
        # Unconditional: one float store; both the dwell events and the
        # always-on flight recorder need the activation stamp.
        state.activated_at = net.now
        if op.is_collective():
            wave = self._wave_of(op)
            emitted = self._wave_agg.add(
                wave,
                WaveContribution(count=1, kind=op.kind, root=op.root),
                expected=self._local_participants(op.comm_id),
            )
            if emitted is not None:
                # isLastInactiveCollectivOnNode: all local participants
                # active -> aggregate readiness towards the root.
                net.send(
                    self.node_id,
                    self.topology.parent(self.node_id),
                    CollectiveReady(
                        comm_id=wave[0],
                        wave_index=wave[1],
                        kind=emitted.kind,
                        root=emitted.root,
                        count=emitted.count,
                    ),
                    CollectiveReady.wire_size,
                )
            return
        if (op.is_recv() or op.is_probe()) and state.matched_send is not None:
            self._send_recv_active(state, net)
            return
        if op.is_send():
            if state.got_recv_active:
                self._send_ack(state.matched_recv, probe=False, net=net)
            for probe_ref in state.pending_probe_acks:
                self._send_ack(probe_ref, probe=True, net=net)
            state.pending_probe_acks.clear()

    def _send_recv_active(self, state: OpState, net: Transport) -> None:
        assert state.matched_send is not None
        send_rank, send_ts = state.matched_send
        msg = RecvActive(
            send_rank=send_rank,
            send_ts=send_ts,
            recv_rank=state.op.rank,
            recv_ts=state.op.ts,
            probe=state.op.is_probe(),
        )
        net.send(
            self.node_id,
            self.topology.host_of_rank(send_rank),
            msg,
            RecvActive.wire_size,
        )

    def _send_ack(
        self, recv_ref: Optional[OpRef], probe: bool, net: Transport
    ) -> None:
        if recv_ref is None:
            raise ProtocolError("acknowledging unknown receive")
        msg = RecvActiveAck(
            recv_rank=recv_ref[0], recv_ts=recv_ref[1], probe=probe
        )
        net.send(
            self.node_id,
            self.topology.host_of_rank(recv_ref[0]),
            msg,
            RecvActiveAck.wire_size,
        )

    def _can_advance(self, state: OpState, window: RankWindow) -> bool:
        op = state.op
        if op.is_finalize():
            return False
        if op.is_p2p() and op.peer == PROC_NULL:
            return True
        if not state.is_blocking():
            return True
        if op.is_send():
            return state.got_recv_active
        if op.is_recv() or op.is_probe():
            return state.got_ack
        if op.is_collective():
            return state.collective_acked
        if op.is_completion():
            return window.completion_ready(state)
        return False

    def _try_advance(self, rank: int, net: Transport) -> None:
        if self.frozen:
            return
        window = self.windows[rank]
        obs = net.obs
        fbufs = self._flight_bufs
        fbuf = None if fbufs is None else fbufs[rank]
        while True:
            state = window.current_op()
            if state is None:
                return  # awaiting events / rank finished past window
            if not state.activated:
                self._activate(state, net)
            if not self._can_advance(state, window):
                if not state.was_blocked:
                    state.was_blocked = True
                    if obs.enabled:
                        obs.metrics.inc("waitstate.blocked_ops")
                        # Ops like finalize can stall transiently but
                        # carry no wait-for description.
                        op = state.op
                        if (
                            op.is_p2p()
                            or op.is_collective()
                            or op.is_completion()
                        ):
                            state.blocked_info = self._wait_info(
                                rank, state, window
                            )
                    if fbuf is not None:
                        fbuf.append((net.now, "block", state.op))
                        if len(fbuf) >= self._flight_trim_at:
                            self.flight.trim(rank)
                return
            if obs.enabled:
                if state.was_blocked:
                    obs.metrics.inc("waitstate.can_advance_flips")
                if state.activated_at >= 0.0:
                    dwell = net.now - state.activated_at
                    obs.metrics.observe(f"waitstate.dwell.rank{rank}", dwell)
                    if state.was_blocked:
                        args = (
                            wait_info_args(state.blocked_info, self.comms)
                            if state.blocked_info is not None
                            else None
                        )
                        obs.tracer.complete(
                            "dwell",
                            cat="waitstate.dwell",
                            ts=state.activated_at * 1e6,
                            dur=dwell * 1e6,
                            pid=PID_WAIT,
                            tid=rank,
                            args=args,
                        )
            if fbuf is not None:
                fbuf.append((net.now, "advance", state.op))
                if len(fbuf) >= self._flight_trim_at:
                    self.flight.trim(rank)
            window.advance()

    def _resume_all(self, net: Transport) -> None:
        self.frozen = False
        for rank in self.hosted:
            self._try_advance(rank, net)

    # ------------------------------------------------------------------
    # intralayer handlers (Figure 7)
    # ------------------------------------------------------------------

    def _process_match(self, event: MatchEvent, net: Transport) -> None:
        recv_rank, recv_ts = event.recv_ref
        window = self.windows[recv_rank]
        state = window.require(recv_ts)
        state.matched_send = event.send.send_ref
        if state.activated:
            self._send_recv_active(state, net)

    def _handle_pass_send(self, msg: PassSend, net: Transport) -> None:
        for event in self.matcher.store_send(msg):
            self._process_match(event, net)

    def _handle_recv_active(self, msg: RecvActive, net: Transport) -> None:
        window = self.windows.get(msg.send_rank)
        if window is None:
            raise ProtocolError(
                f"recvActive for rank {msg.send_rank} reached node "
                f"{self.node_id}"
            )
        state = window.require(msg.send_ts)
        if msg.probe:
            if state.activated:
                self._send_ack(msg.recv_ref, probe=True, net=net)
            else:
                state.pending_probe_acks.append(msg.recv_ref)
            return
        state.matched_recv = msg.recv_ref
        state.got_recv_active = True
        state.completion_satisfied = True
        if state.activated:
            self._send_ack(msg.recv_ref, probe=False, net=net)
            window.evict_completed_send(msg.send_ts)
        self._try_advance(msg.send_rank, net)

    def _handle_recv_active_ack(self, msg: RecvActiveAck, net: Transport) -> None:
        window = self.windows.get(msg.recv_rank)
        if window is None:
            raise ProtocolError(
                f"recvActiveAck for rank {msg.recv_rank} reached node "
                f"{self.node_id}"
            )
        state = window.require(msg.recv_ts)
        state.got_ack = True
        state.completion_satisfied = True
        self._try_advance(msg.recv_rank, net)

    def _handle_collective_ack(self, msg: CollectiveAck, net: Transport) -> None:
        # A root ack implies every participant (including all hosted
        # ones) already activated its wave op, so the local records are
        # complete and can be retired after marking.
        wave = (msg.comm_id, msg.wave_index)
        members = self._wave_ops.pop(wave, {})
        for rank, ts in members.items():
            state = self.windows[rank].get(ts)
            if state is not None:
                state.collective_acked = True
            self._wave_key_by_op.pop((rank, ts), None)
        for rank in members:
            self._try_advance(rank, net)

    # ------------------------------------------------------------------
    # consistent state & wait gathering (Section 5)
    # ------------------------------------------------------------------

    def _handle_request_consistent_state(
        self, msg: RequestConsistentState, net: Transport
    ) -> None:
        """Figure 8, with a symmetric ping set.

        The paper pings the hosts of matching receives for active
        sends. That alone leaves one race open: a receive host that
        activates a matched receive *after* answering the send host's
        ping but *before* its own freeze emits a ``recvActive`` that
        can arrive after the send host replied its wait info. Pinging
        symmetrically — the receive host also ping-pongs with the host
        of its matched send — closes it: the receive host's ping
        travels the same FIFO channel as (behind) its ``recvActive``,
        so the send host processes the handshake before answering, and
        its ``requestWaits`` reply (gated on *all* acks) reflects it.
        """
        self.frozen = True  # stopProgress()
        if net.obs.enabled:
            net.obs.tracer.instant(
                "freeze",
                cat="detection",
                ts=net.now * 1e6,
                pid=PID_TBON,
                tid=self.node_id,
                args={"detection": msg.detection_id},
            )
        peers: Set[int] = set()
        for window in self.windows.values():
            for state in window.iter_states():
                if not state.activated:
                    continue
                op = state.op
                if (
                    op.is_send()
                    and not state.got_recv_active
                    and op.peer is not None
                    and op.peer >= 0
                ):
                    peers.add(self.topology.host_of_rank(op.peer))
                elif (
                    (op.is_recv() or op.is_probe())
                    and not state.got_ack
                    and state.matched_send is not None
                ):
                    peers.add(
                        self.topology.host_of_rank(state.matched_send[0])
                    )
        detection = _DetectionState(
            detection_id=msg.detection_id, outstanding_pongs=peers
        )
        self._detection = detection
        if not peers:
            self._ack_consistent(net)
            return
        for peer in sorted(peers):
            net.send(
                self.node_id, peer, Ping(msg.detection_id, 1), Ping.wire_size
            )

    def _handle_pong(self, msg: Pong, net: Transport, src: int) -> None:
        detection = self._detection
        if detection is None or detection.detection_id != msg.detection_id:
            raise ProtocolError(
                f"node {self.node_id}: pong for unknown detection "
                f"{msg.detection_id}"
            )
        if msg.remaining > 0:
            net.send(
                self.node_id,
                src,
                Ping(msg.detection_id, msg.remaining - 1),
                Ping.wire_size,
            )
            return
        detection.outstanding_pongs.discard(src)
        if not detection.outstanding_pongs:
            self._ack_consistent(net)

    def _ack_consistent(self, net: Transport) -> None:
        detection = self._detection
        assert detection is not None and not detection.acked
        detection.acked = True
        net.send(
            self.node_id,
            self.topology.parent(self.node_id),
            AckConsistentState(detection.detection_id),
            AckConsistentState.wire_size,
        )

    def _handle_request_waits(self, msg: RequestWaits, net: Transport) -> None:
        infos: List[RankWaitInfo] = []
        blocked_states: List[OpState] = []
        unblocked: List[int] = []
        finished: List[int] = []
        for rank in self.hosted:
            window = self.windows[rank]
            if window.finished():
                finished.append(rank)
                continue
            state = window.current_op()
            if state is None:
                # Awaiting events: the rank is still producing ops.
                unblocked.append(rank)
                continue
            if not state.activated:
                # The operation arrived *during* the freeze: it is not
                # part of the frozen transition-system state (its
                # activation is a transition, which stopProgress
                # suspended). The rank is still progressing, not
                # blocked — reporting it would fabricate wait-for arcs
                # that were never evaluated against the cut.
                unblocked.append(rank)
                continue
            if self._can_advance(state, window):
                unblocked.append(rank)
                continue
            infos.append(self._wait_info(rank, state, window))
            blocked_states.append(state)
        reply = WaitInfoMsg(
            detection_id=msg.detection_id,
            node_id=self.node_id,
            infos=tuple(infos),
            unblocked=tuple(unblocked),
            finished=tuple(finished),
        )
        net.send(
            self.node_id,
            self.topology.parent(self.node_id),
            reply,
            reply.wire_size,
        )
        self._detection = None
        if self.flight.enabled:
            for info, state in zip(infos, blocked_states):
                self.flight.record(
                    info.rank, "blocked@detection", net.now, state.op
                )
        if net.obs.enabled:
            net.obs.metrics.inc("waitstate.blocked_reported", len(infos))
            for info, state in zip(infos, blocked_states):
                # Terminal wait state of this rank at the consistent
                # cut: the raw material for `repro blame` on artifacts.
                args = wait_info_args(info, self.comms)
                args["since"] = state.activated_at * 1e6
                args["detection"] = msg.detection_id
                net.obs.tracer.instant(
                    "blocked",
                    cat="waitstate.final",
                    ts=net.now * 1e6,
                    pid=PID_WAIT,
                    tid=info.rank,
                    args=args,
                )
            net.obs.tracer.instant(
                "resume",
                cat="detection",
                ts=net.now * 1e6,
                pid=PID_TBON,
                tid=self.node_id,
                args={
                    "detection": msg.detection_id,
                    "blocked": len(infos),
                    "unblocked": len(unblocked),
                    "finished": len(finished),
                    "finished_ranks": list(finished),
                    "unblocked_ranks": list(unblocked),
                },
            )
        self._resume_all(net)

    def _p2p_wait_entry(self, state: OpState) -> P2PWait:
        op = state.op
        if op.is_send():
            if state.matched_recv is not None:
                return P2PWait(
                    (state.matched_recv[0],), "matched receive not active"
                )
            return P2PWait((op.peer,), "no matching receive posted")  # type: ignore[arg-type]
        # Receive or probe.
        if state.matched_send is not None:
            return P2PWait((state.matched_send[0],), "matched send not active")
        if op.peer == ANY_SOURCE:
            group = self.comms.get(op.comm_id).group
            return P2PWait(
                tuple(k for k in group if k != op.rank),
                "wildcard receive: any sender qualifies",
            )
        return P2PWait((op.peer,), "no matching send posted")  # type: ignore[arg-type]

    def _wait_info(
        self, rank: int, state: OpState, window: RankWindow
    ) -> RankWaitInfo:
        op = state.op
        entries: List[object] = []
        or_semantics = False
        if op.is_p2p():
            entries.append(self._p2p_wait_entry(state))
        elif op.is_collective():
            wave = self._wave_of(op)
            entries.append(
                CollectiveWait(comm_id=wave[0], wave_index=wave[1])
            )
        elif op.is_completion():
            from repro.mpi.constants import completion_needs_all

            or_semantics = not completion_needs_all(op.kind)
            for target in window.completion_targets(state):
                if target.completion_satisfied or target.completes_locally():
                    continue
                entries.append(self._p2p_wait_entry(target))
        else:
            raise ProtocolError(
                f"{op.describe()} cannot be blocked; tool bug"
            )
        return RankWaitInfo(
            rank=rank,
            op_description=op.describe(),
            entries=tuple(entries),
            or_semantics=or_semantics,
        )

    # ------------------------------------------------------------------
    # introspection (tests / detector)
    # ------------------------------------------------------------------

    def state_vector(self) -> Dict[int, int]:
        """Current ``l_i`` for every hosted rank."""
        return {rank: w.current for rank, w in self.windows.items()}

    def peak_window_size(self) -> int:
        return max((w.peak_size for w in self.windows.values()), default=0)
