"""Wait-for condition extraction for blocked processes.

Given a state of the transition system and a blocked process, this
module derives *why* the process cannot advance, as a CNF condition:
an AND of clauses, each clause an OR of target ranks. This is the
payload of the ``requestWaits`` reply in the distributed protocol
(Section 5) and the input to wait-for-graph construction [9]:

* a send/receive/probe waits for its (potential) partner — a single
  singleton clause, except wildcard receives which wait for *any*
  possible sender (one OR clause, the paper's "OR semantic");
* a collective yields one singleton clause per group member that has
  not activated its participating operation (AND semantics);
* ``Wait``/``Waitall`` yields the AND of its unsatisfied requests'
  conditions; ``Waitany``/``Waitsome`` the OR (one flattened clause).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.mpi.constants import ANY_SOURCE
from repro.mpi.ops import Operation, OpRef
from repro.core.transition import TransitionSystem


@dataclass(frozen=True)
class WaitTarget:
    """One rank a blocked process waits for, with the reason."""

    rank: int
    reason: str


_TARGET_CACHE: Dict[Tuple[int, str], WaitTarget] = {}


def intern_target(rank: int, reason: str) -> WaitTarget:
    """Shared WaitTarget instances.

    The p^2-arc wildcard case (Figure 10) creates p-1 targets per
    blocked process with identical reasons; interning keeps the memory
    footprint linear in p rather than quadratic in object count.
    """
    key = (rank, reason)
    cached = _TARGET_CACHE.get(key)
    if cached is None:
        cached = WaitTarget(rank, reason)
        if len(_TARGET_CACHE) < 1_000_000:
            _TARGET_CACHE[key] = cached
    return cached


@dataclass
class WaitForCondition:
    """CNF wait-for condition of one blocked process."""

    rank: int
    op_ref: OpRef
    op_description: str
    #: AND over clauses; each clause is an OR over targets.
    clauses: List[Tuple[WaitTarget, ...]] = field(default_factory=list)

    def target_ranks(self) -> Set[int]:
        return {t.rank for clause in self.clauses for t in clause}

    def arc_count(self) -> int:
        return sum(len(clause) for clause in self.clauses)

    def is_pure_and(self) -> bool:
        return all(len(clause) == 1 for clause in self.clauses)


def _p2p_clause(
    ts: TransitionSystem,
    state: Sequence[int],
    ref: OpRef,
    op: Operation,
) -> Optional[Tuple[WaitTarget, ...]]:
    """Clause for an unsatisfied point-to-point operation (or target)."""
    match = ts.matched.match_of(ref)
    if match is not None:
        k, n = match
        if state[k] >= n:
            return None  # satisfied — contributes no clause
        partner = ts.trace.op(match).describe()
        return (WaitTarget(k, f"matched with {partner}, not yet active"),)
    # Unmatched: derive potential partners from the envelope.
    if op.is_send():
        return (
            WaitTarget(
                op.peer,  # type: ignore[arg-type]
                "no matching receive posted",
            ),
        )
    # Receive or probe.
    if op.peer == ANY_SOURCE:
        comm = ts.matched.comms.get(op.comm_id)
        targets = tuple(
            intern_target(k, "wildcard receive: any sender qualifies")
            for k in comm.group
            if k != op.rank
        )
        # A wildcard receive on a self-communicator waits for nobody —
        # an unconditional deadlock, encoded as an empty clause.
        return targets
    return (
        WaitTarget(
            op.peer,  # type: ignore[arg-type]
            "no matching send posted",
        ),
    )


def _collective_clauses(
    ts: TransitionSystem,
    state: Sequence[int],
    ref: OpRef,
    op: Operation,
) -> List[Tuple[WaitTarget, ...]]:
    comm = ts.matched.comms.get(op.comm_id)
    match = ts.matched.collective_match(ref)
    if match is not None:
        members: Dict[int, int] = {k: n for (k, n) in match.members}
    else:
        pending = ts.matched.pending_collective_of(ref)
        members = (
            {r: rref[1] for r, rref in pending.arrived.items()}
            if pending is not None
            else {}
        )
    clauses: List[Tuple[WaitTarget, ...]] = []
    name = op.kind.value
    for k in comm.group:
        if k == op.rank:
            continue
        if k in members:
            if state[k] >= members[k]:
                continue
            reason = f"{name} participant not yet active"
        else:
            reason = f"never called {name} on communicator {op.comm_id}"
        clauses.append((WaitTarget(k, reason),))
    return clauses


def wait_for_condition(
    ts: TransitionSystem, state: Sequence[int], rank: int
) -> WaitForCondition:
    """Derive the wait-for condition of ``rank``, blocked in ``state``."""
    l = state[rank]
    op = ts.trace.op((rank, l))
    cond = WaitForCondition(
        rank=rank, op_ref=(rank, l), op_description=op.describe()
    )
    if op.is_p2p():
        clause = _p2p_clause(ts, state, (rank, l), op)
        if clause is not None:
            cond.clauses.append(clause)
        else:
            raise ValueError(
                f"{op.describe()} reported blocked but its p2p premise holds"
            )
        return cond
    if op.is_collective():
        cond.clauses.extend(_collective_clauses(ts, state, (rank, l), op))
        return cond
    if op.is_completion():
        sub: List[Tuple[WaitTarget, ...]] = []
        for target in ts.matched.completion_targets((rank, l)):
            if ts._completion_target_satisfied(state, target):
                continue
            top = ts.trace.op(target)
            clause = _p2p_clause(ts, state, target, top)
            if clause is not None:
                sub.append(clause)
        from repro.mpi.constants import completion_needs_all

        if completion_needs_all(op.kind):
            cond.clauses.extend(sub)
        else:
            # OR over all sub-conditions: flatten into one clause.
            flat: List[WaitTarget] = []
            for clause in sub:
                flat.extend(clause)
            cond.clauses.append(tuple(flat))
        return cond
    raise ValueError(f"{op.describe()} cannot be a blocked operation")


def wait_for_conditions(
    ts: TransitionSystem, state: Sequence[int]
) -> Dict[int, WaitForCondition]:
    """Conditions for every blocked process of ``state``."""
    return {
        i: wait_for_condition(ts, state, i)
        for i in sorted(ts.blocked_processes(state))
    }
