"""Message vocabulary of the distributed tool (Sections 4 and 5).

Intralayer wait-state messages (Section 4.1):

* :class:`PassSend` — send information forwarded to the node hosting
  the matching receive (also carries the p2p matching envelope);
* :class:`RecvActive` — the matched receive is now active;
* :class:`RecvActiveAck` — the matched send is (also) active.

Tree flows:

* :class:`NewOpMsg` — an intercepted application operation, streamed
  from rank to its first-layer host;
* :class:`CollectiveReady` / :class:`CollectiveAck` — aggregated wave
  readiness up, completion broadcast down (doubles as the distributed
  collective matching of [10]);

Consistent-state / detection protocol (Section 5, Figure 8):

* :class:`RequestConsistentState`, :class:`Ping`, :class:`Pong`,
  :class:`AckConsistentState`, :class:`RequestWaits`,
  :class:`WaitInfoMsg`.

Every message is a plain frozen dataclass with a ``wire_size`` used by
the cost accounting — wait-state messages cannot be aggregated into
streamed buffers (Section 4.2), so each pays full per-message cost.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation, OpRef


@dataclass(frozen=True)
class NewOpMsg:
    """One intercepted MPI call, in issue order per rank."""

    op: Operation

    wire_size = 64


@dataclass(frozen=True)
class RankDoneMsg:
    """The application rank finished (returned from its program)."""

    rank: int

    wire_size = 16


@dataclass(frozen=True)
class PassSend:
    """Send info routed to the node hosting the matching receive.

    Carries the full matching envelope plus the send's timestamp
    (``o.l`` in Figure 7) so the receive side can later address
    ``RecvActive`` precisely.
    """

    send_rank: int
    send_ts: int
    comm_id: int
    dest: int
    tag: int
    nbytes: int

    wire_size = 48

    @property
    def send_ref(self) -> OpRef:
        return (self.send_rank, self.send_ts)


@dataclass(frozen=True)
class RecvActive:
    """The receive matching send ``(send_rank, send_ts)`` is active.

    ``recv_ref`` is included so the send-hosting node can echo it back
    in the acknowledgement (``recv.l`` in Figure 7).
    """

    send_rank: int
    send_ts: int
    recv_rank: int
    recv_ts: int
    #: The "receive" is an MPI_Probe: the send side must acknowledge
    #: activation but not treat the probe as its rule-(2) partner.
    probe: bool = False

    wire_size = 32

    @property
    def send_ref(self) -> OpRef:
        return (self.send_rank, self.send_ts)

    @property
    def recv_ref(self) -> OpRef:
        return (self.recv_rank, self.recv_ts)


@dataclass(frozen=True)
class RecvActiveAck:
    """The send matching receive ``(recv_rank, recv_ts)`` is active."""

    recv_rank: int
    recv_ts: int
    probe: bool = False

    wire_size = 24

    @property
    def recv_ref(self) -> OpRef:
        return (self.recv_rank, self.recv_ts)


@dataclass(frozen=True)
class CollectiveReady:
    """Subtree readiness for one collective wave, aggregated upward."""

    comm_id: int
    wave_index: int
    kind: OpKind
    root: Optional[int]
    #: Number of participating ranks active in the sending subtree.
    count: int

    wire_size = 40


@dataclass(frozen=True)
class CollectiveAck:
    """Root-confirmed wave completion, broadcast to the first layer."""

    comm_id: int
    wave_index: int

    wire_size = 24


@dataclass(frozen=True)
class RequestConsistentState:
    """Root -> first layer: freeze transitions, settle in-flight msgs."""

    detection_id: int

    wire_size = 16


@dataclass(frozen=True)
class Ping:
    """Double ping-pong synchronization (Figure 8)."""

    detection_id: int
    #: Remaining pings after this one (1 on the first round, 0 after).
    remaining: int

    wire_size = 16


@dataclass(frozen=True)
class Pong:
    detection_id: int
    remaining: int

    wire_size = 16


@dataclass(frozen=True)
class AckConsistentState:
    """First layer -> root (aggregated): node is consistent."""

    detection_id: int
    #: Number of first-layer nodes covered by this (aggregated) ack.
    count: int = 1

    wire_size = 16


@dataclass(frozen=True)
class RequestWaits:
    """Root -> first layer: send wait-for conditions, then resume."""

    detection_id: int

    wire_size = 16


@dataclass(frozen=True)
class P2PWait:
    """A point-to-point style wait-for entry of one blocked process.

    ``or_targets`` carries the alternative target ranks (wildcard OR
    semantics); directed waits have a single target.
    """

    or_targets: Tuple[int, ...]
    reason: str


@dataclass(frozen=True)
class CollectiveWait:
    """A collective wait-for entry, resolved rank-wise at the root."""

    comm_id: int
    wave_index: int


@dataclass(frozen=True)
class RankWaitInfo:
    """Wait-for condition of one blocked rank (CNF over entries)."""

    rank: int
    op_description: str
    #: AND over entries; each entry is a P2PWait (OR clause) or a
    #: CollectiveWait (expanded to AND clauses at the root).
    entries: Tuple[object, ...]
    #: Whether the entries of a completion op combine as one OR clause
    #: (Waitany/Waitsome) instead of an AND (everything else).
    or_semantics: bool = False


@dataclass(frozen=True)
class WaitInfoMsg:
    """First layer -> root: blocked-rank conditions of one node."""

    detection_id: int
    node_id: int
    infos: Tuple[RankWaitInfo, ...]
    #: Hosted ranks that can still advance or whose events are still
    #: streaming in (they may release waiters).
    unblocked: Tuple[int, ...] = ()
    #: Hosted ranks that terminated (reached MPI_Finalize or completed
    #: their program): they can release nobody.
    finished: Tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return 16 + sum(
            16 + 8 * sum(
                len(getattr(e, "or_targets", (0,))) for e in info.entries
            )
            for info in self.infos
        )
