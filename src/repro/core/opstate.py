"""Per-operation state objects and sliding windows (Section 4.1/4.2).

Each first-layer TBON node represents every hosted operation with an
object storing the attributes the paper names: the timestamp ``o.l``,
the matched send's timestamp ``o.l_s``, ``o.active``,
``o.gotRecvActive``, and ``o.canAdvance``. We additionally keep a
``completion_satisfied`` flag on request-creating operations — the
per-target fact that rule (4) completions aggregate — and sticky
``activated`` (an operation stays "activated" once its process's
timestamp reached it, matching the ``l_k >= n`` premises).

:class:`RankWindow` is the paper's trace window (Section 4.2): a node
never stores a full process trace; operations are evicted once the
transition system passed them *and* no pending protocol obligation
(outstanding recvActive handshake, unconsumed request) still needs
them. Window growth beyond a limit reproduces the paper's
128.GAPgeofem memory-exhaustion condition as a detectable
:class:`~repro.util.errors.ResourceLimitError`.
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mpi.blocking import BlockingSemantics, is_blocking
from repro.mpi.constants import OpKind, completion_needs_all
from repro.mpi.ops import Operation, OpRef
from repro.util.errors import ProtocolError, ResourceLimitError

_STRICT = BlockingSemantics.strict()

# Requests completing locally regardless of matching (rule 4 treats
# them as always satisfied).
_LOCAL_COMPLETION_KINDS = frozenset({OpKind.IBSEND, OpKind.IRSEND})


@dataclass
class OpState:
    """Tool-side state of one hosted operation (Figure 7's ``o``)."""

    op: Operation
    #: ``o.active``: the operation is the process's *current* operation.
    active: bool = False
    #: Sticky activation: the process timestamp reached this operation
    #: at some point (the ``l_k >= n`` sense of "active").
    activated: bool = False
    #: ``o.l_s``: reference of the matched send (receives/probes).
    matched_send: Optional[OpRef] = None
    #: ``o.l_r``: reference of the matched receive (sends).
    matched_recv: Optional[OpRef] = None
    #: ``o.gotRecvActive``.
    got_recv_active: bool = False
    #: A recvActiveAck arrived for this receive/probe.
    got_ack: bool = False
    #: collectiveAck arrived for this collective's wave.
    collective_acked: bool = False
    #: Rule-4 per-target fact: this request-creating op is matched with
    #: an *activated* partner (or completes locally).
    completion_satisfied: bool = False
    #: Probes that matched this send and await its activation.
    pending_probe_acks: List[OpRef] = field(default_factory=list)
    #: Observability: simulated time of activation (-1 = untracked);
    #: the dwell-time histograms measure activation -> advance.
    activated_at: float = -1.0
    #: ``canAdvance`` evaluated False at least once, so a later advance
    #: counts as a canAdvance flip (also feeds the flight recorder).
    was_blocked: bool = False
    #: Observability: the wait info captured when the op first blocked
    #: (serialized into the dwell span's args for blame analysis).
    blocked_info: Optional[object] = None

    @property
    def ref(self) -> OpRef:
        return self.op.ref

    def is_blocking(self) -> bool:
        return is_blocking(self.op, _STRICT)

    def completes_locally(self) -> bool:
        return self.op.kind in _LOCAL_COMPLETION_KINDS


class RankWindow:
    """Sliding window of operations for one hosted application rank."""

    def __init__(self, rank: int, max_ops: int = 1_000_000) -> None:
        self.rank = rank
        self.max_ops = max_ops
        #: Current transition-system timestamp ``l_i`` of this rank.
        self.current = 0
        #: Whether the application rank finished its program.
        self.done = False
        self._ops: "OrderedDict[int, OpState]" = OrderedDict()
        #: Request id -> creating op state (retained until consumed).
        self._requests: Dict[int, OpState] = {}
        #: Largest timestamp received so far (-1 = none yet).
        self.last_received = -1
        #: High-water mark of the window size (memory footprint study).
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._ops)

    def add(self, op: Operation) -> OpState:
        """Register a newly received operation (``newOp``)."""
        if op.rank != self.rank:
            raise ProtocolError(
                f"op of rank {op.rank} delivered to window of {self.rank}"
            )
        if op.ts != self.last_received + 1:
            raise ProtocolError(
                f"rank {self.rank}: op {op.ts} arrived after "
                f"{self.last_received} (events must stream in order)"
            )
        self.last_received = op.ts
        state = OpState(op=op)
        self._ops[op.ts] = state
        if op.request is not None:
            self._requests[op.request] = state
        if len(self._ops) > self.max_ops:
            raise ResourceLimitError(
                f"trace window of rank {self.rank} exceeded {self.max_ops} "
                "operations (cf. the paper's 128.GAPgeofem case)"
            )
        self.peak_size = max(self.peak_size, len(self._ops))
        return state

    def get(self, ts: int) -> Optional[OpState]:
        return self._ops.get(ts)

    def iter_states(self) -> Tuple[OpState, ...]:
        """Snapshot of all operations currently held in the window."""
        return tuple(self._ops.values())

    def require(self, ts: int) -> OpState:
        state = self._ops.get(ts)
        if state is None:
            raise ProtocolError(
                f"rank {self.rank}: operation {ts} not in window "
                f"(current={self.current}, last={self.last_received})"
            )
        return state

    def request_state(self, req_id: int) -> OpState:
        try:
            return self._requests[req_id]
        except KeyError:
            raise ProtocolError(
                f"rank {self.rank}: unknown request {req_id}"
            ) from None

    def current_op(self) -> Optional[OpState]:
        """The active operation, or None if events are outstanding."""
        return self._ops.get(self.current)

    def finished(self) -> bool:
        """The rank reached MPI_Finalize or consumed its whole trace."""
        state = self._ops.get(self.current)
        if state is not None:
            return state.op.is_finalize()
        return self.done and self.current > self.last_received

    def awaiting_events(self) -> bool:
        """True when the analysis ran past the received prefix."""
        return not self.done and self.current > self.last_received

    def advance(self) -> None:
        """Advance ``l_i`` by one and evict unneeded passed operations."""
        state = self._ops.get(self.current)
        if state is None:
            raise ProtocolError(
                f"rank {self.rank}: advancing past unreceived op "
                f"{self.current}"
            )
        state.active = False
        if state.op.is_completion():
            # The completion consumed its requests: creators can go.
            for req_id in state.op.requests:
                creator = self._requests.pop(req_id, None)
                if creator is not None:
                    self._maybe_evict(creator.op.ts)
        self.current += 1
        self._maybe_evict(state.op.ts)

    def _retained(self, state: OpState) -> bool:
        """Does any pending obligation still need this passed op?"""
        op = state.op
        if op.ts >= self.current:
            return True
        if op.request is not None and op.request in self._requests:
            return True  # a completion may still reference it
        if op.peer is None or op.peer < 0:
            return False  # PROC_NULL / non-p2p: no handshake pending
        if op.kind is OpKind.IPROBE:
            return False  # non-blocking probes take part in no rule
        if op.is_send():
            # A matched send must answer its recvActive; an unmatched
            # send may still be matched by a late receive. Only sends
            # that completed the handshake are releasable.
            return not state.got_recv_active
        if op.is_recv() or op.is_probe():
            # The recvActiveAck may still be in flight (e.g. a Waitany
            # advanced on a sibling request), and unmatched receives may
            # match a late passSend.
            return not state.got_ack
        return False

    def _maybe_evict(self, ts: int) -> None:
        state = self._ops.get(ts)
        if state is not None and not self._retained(state):
            del self._ops[ts]

    def evict_completed_send(self, ts: int) -> None:
        """Re-attempt eviction after a late handshake completed."""
        self._maybe_evict(ts)

    def completion_targets(self, state: OpState) -> Tuple[OpState, ...]:
        return tuple(
            self.request_state(req) for req in state.op.requests
        )

    def completion_ready(self, state: OpState) -> bool:
        """Rule-4 evaluation from the per-target flags."""
        targets = self.completion_targets(state)
        if not targets:
            return True
        satisfied = (
            t.completion_satisfied or t.completes_locally() for t in targets
        )
        if completion_needs_all(state.op.kind):
            return all(satisfied)
        return any(satisfied)
