"""The tool facade: distributed MPI deadlock detection end to end.

:class:`DistributedDeadlockDetector` assembles the full Figure 1(b)
architecture over a matched trace: a TBON of the requested fan-in,
first-layer nodes running distributed p2p matching + wait state
tracking, interior aggregation nodes, and the root with tree-wide
collective matching and graph-based detection. Application ranks
stream their intercepted operations into the tree on a simulated
clock; detections fire after quiescence (the paper's timeout) and/or
at requested simulated times (mid-run detections).

The result exposes the stable distributed state, every detection
record (graph, verdict, phase breakdown, DOT/HTML), message statistics
and peak trace-window sizes — everything the evaluation section
reports.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.distributed import FirstLayerNode
from repro.core.messages import NewOpMsg, RankDoneMsg
from repro.core.treenodes import DetectionRecord, InteriorNode, RootNode
from repro.mpi.trace import MatchedTrace
from repro.obs.flight import FlightRecorder
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.tbon.network import LatencyModel, Network, jittered_latency
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError


@dataclass
class DistributedOutcome:
    """Result of running the distributed tool over one trace."""

    topology: TbonTopology
    #: Stable per-process timestamps after all events settled — equals
    #: the transition system's terminal state when the tool is correct.
    stable_state: Tuple[int, ...]
    detections: List[DetectionRecord] = field(default_factory=list)
    messages_sent: int = 0
    bytes_sent: int = 0
    simulated_seconds: float = 0.0
    peak_window: int = 0
    node_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)

    @property
    def detection(self) -> DetectionRecord:
        if not self.detections:
            raise ValueError("no detection was run")
        return self.detections[-1]

    @property
    def has_deadlock(self) -> bool:
        return any(d.has_deadlock for d in self.detections)

    @property
    def deadlocked(self) -> Tuple[int, ...]:
        for record in reversed(self.detections):
            if record.has_deadlock:
                assert record.result is not None
                return record.result.deadlocked
        return ()


class DistributedDeadlockDetector:
    """Drive the distributed tool over a matched trace."""

    def __init__(
        self,
        matched: MatchedTrace,
        *,
        fan_in: int = 4,
        seed: int = 0,
        latency_model: LatencyModel | None = None,
        window_limit: int = 1_000_000,
        generate_outputs: bool = True,
        op_gap: float = 1e-6,
        observer: Observer | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        self.matched = matched
        self.trace = matched.trace
        self.observer = observer if observer is not None else NULL_OBSERVER
        # The flight recorder is ON by default (bounded ring, O(1)
        # appends); pass a NullFlightRecorder to opt out.
        self.flight = flight if flight is not None else FlightRecorder()
        p = self.trace.num_processes
        self.topology = TbonTopology.build(p, fan_in)
        self.net = Network(
            latency_model or jittered_latency(seed), observer=self.observer
        )
        self._rng = random.Random(seed)
        self._op_gap = op_gap
        self.first_layer: Dict[int, FirstLayerNode] = {}
        for node_id in self.topology.first_layer:
            node = FirstLayerNode(
                node_id,
                self.topology,
                matched.comms,
                window_limit=window_limit,
                flight=self.flight,
            )
            self.first_layer[node_id] = node
            self.net.attach(node)
        self.root = RootNode(
            self.topology.root,
            self.topology,
            matched.comms,
            generate_outputs=generate_outputs,
            flight=self.flight,
        )
        self.net.attach(self.root)
        for layer in self.topology.layers[2:-1]:
            for node_id in layer:
                self.net.attach(
                    InteriorNode(node_id, self.topology, matched.comms)
                )

    # ------------------------------------------------------------------

    def _schedule_events(self) -> None:
        """Inject every rank's operations in order, with seeded skew."""
        for rank in range(self.trace.num_processes):
            host = self.topology.host_of_rank(rank)
            start = self._rng.random() * self._op_gap * 4
            seq = self.trace.sequence(rank)

            def make_sender(r: int, h: int, ops: tuple) -> None:
                t = start
                for op in ops:
                    msg = NewOpMsg(op)

                    def fire(m=msg, rr=r, hh=h) -> None:
                        self.net.send(rr, hh, m, NewOpMsg.wire_size)

                    self.net.call_at(t, fire)
                    t += self._op_gap * (0.5 + self._rng.random())
                done = RankDoneMsg(r)

                def fire_done(m=done, rr=r, hh=h) -> None:
                    self.net.send(rr, hh, m, RankDoneMsg.wire_size)

                self.net.call_at(t, fire_done)

            make_sender(rank, host, seq)

    def run(
        self,
        *,
        detect_at_end: bool = True,
        detect_at: Sequence[float] = (),
    ) -> DistributedOutcome:
        """Stream the trace, run detections, return the outcome.

        ``detect_at`` schedules mid-run detections at the given
        simulated times (the paper's timeout-driven detections during
        execution); ``detect_at_end`` runs one detection after all
        events settled — the one that sees the terminal state.
        """
        self._schedule_events()
        for t in detect_at:
            self.net.call_at(t, lambda: self.root.start_detection(self.net))
        self.net.run()
        if detect_at_end:
            self.root.start_detection(self.net)
            self.net.run()
        if not self.net.idle():
            raise ProtocolError("network did not quiesce")
        for record in self.root.completed_detections:
            if not record.complete:
                raise ProtocolError(
                    f"detection {record.detection_id} incomplete"
                )
        state = [0] * self.trace.num_processes
        peak = 0
        node_stats: Dict[int, Dict[str, int]] = {}
        for node in self.first_layer.values():
            for rank, l in node.state_vector().items():
                state[rank] = l
            peak = max(peak, node.peak_window_size())
            node_stats[node.node_id] = dict(node.stats)
        node_stats[self.root.node_id] = dict(self.root.stats)
        if self.observer.enabled:
            metrics = self.observer.metrics
            metrics.set_gauge("tbon.peak_window", peak)
            metrics.set_gauge("tbon.simulated_seconds", self.net.now)
            metrics.set_gauge("tbon.messages_total", self.net.messages_sent)
            metrics.set_gauge("tbon.bytes_total", self.net.bytes_sent)
        return DistributedOutcome(
            topology=self.topology,
            stable_state=tuple(state),
            detections=list(self.root.completed_detections),
            messages_sent=self.net.messages_sent,
            bytes_sent=self.net.bytes_sent,
            simulated_seconds=self.net.now,
            peak_window=peak,
            node_stats=node_stats,
        )


def detect_deadlocks_distributed(
    matched: MatchedTrace,
    *,
    fan_in: int = 4,
    seed: int = 0,
    generate_outputs: bool = True,
    window_limit: int = 1_000_000,
    observer: Observer | None = None,
    flight: FlightRecorder | None = None,
) -> DistributedOutcome:
    """One-call convenience wrapper: stream, settle, detect once."""
    detector = DistributedDeadlockDetector(
        matched,
        fan_in=fan_in,
        seed=seed,
        generate_outputs=generate_outputs,
        window_limit=window_limit,
        observer=observer,
        flight=flight,
    )
    return detector.run()
