"""Interior and root TBON nodes.

Interior nodes are pure tree plumbing: they aggregate
``collectiveReady`` and ``ackConsistentState`` upward (forwarding a
wave's readiness only once *all* of their descendant participants
contributed — the order-preserving aggregation of [12]), broadcast
root messages downward, and relay wait-info replies upward.

The root node (``WfgCheck`` in Figure 1(b)) completes collective
matching tree-wide, drives the Section 5 detection protocol, resolves
the gathered wait-for conditions into the AND/OR wait-for graph, runs
the deadlock criterion, and renders DOT/HTML output. Detection-phase
durations are split into the paper's activity groups: synchronization
and WFG-gather times come from the simulated network clock, while
graph build / deadlock check / output generation are measured
computation times of the root itself.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.messages import (
    AckConsistentState,
    CollectiveAck,
    CollectiveReady,
    CollectiveWait,
    P2PWait,
    RankWaitInfo,
    RequestConsistentState,
    RequestWaits,
    WaitInfoMsg,
)
from repro.core.waitfor import WaitForCondition, WaitTarget, intern_target
from repro.mpi.communicator import CommRegistry
from repro.obs.events import PID_TBON
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightRecorder
from repro.perf.timers import (
    PHASE_DEADLOCK_CHECK,
    PHASE_GRAPH_BUILD,
    PHASE_OUTPUT,
    PHASE_SYNCHRONIZATION,
    PHASE_WFG_GATHER,
    PhaseTimers,
)
from repro.tbon.aggregation import WaveAggregator, WaveContribution
from repro.tbon.network import Transport
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.dot import render_dot
from repro.wfg.graph import WaitForGraph
from repro.wfg.report import render_html_report, render_json_report


class InteriorNode:
    """A non-root, non-first-layer tree node: aggregate and relay."""

    def __init__(
        self, node_id: int, topology: TbonTopology, comms: CommRegistry
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.comms = comms
        self._agg = WaveAggregator()
        self._subtree_ranks = set(topology.ranks_under(node_id))
        self._first_layer_below = sum(
            1 for n in topology.first_layer
            if node_id in topology.path_to_root(n)
        )
        self._ack_counts: Dict[int, int] = {}
        self._participant_cache: Dict[int, int] = {}
        self.stats: Dict[str, int] = {}

    def handle(self, msg: object, net: Transport, src: int) -> None:
        self.stats[type(msg).__name__] = self.stats.get(type(msg).__name__, 0) + 1
        parent = self.topology.parent(self.node_id)
        if isinstance(msg, CollectiveReady):
            emitted = self._agg.add(
                (msg.comm_id, msg.wave_index),
                WaveContribution(count=msg.count, kind=msg.kind, root=msg.root),
                expected=self._expected_participants(msg.comm_id),
            )
            if emitted is not None:
                net.send(
                    self.node_id,
                    parent,
                    CollectiveReady(
                        comm_id=msg.comm_id,
                        wave_index=msg.wave_index,
                        kind=emitted.kind,
                        root=emitted.root,
                        count=emitted.count,
                    ),
                    CollectiveReady.wire_size,
                )
        elif isinstance(msg, AckConsistentState):
            total = self._ack_counts.get(msg.detection_id, 0) + msg.count
            self._ack_counts[msg.detection_id] = total
            if total == self._first_layer_below:
                del self._ack_counts[msg.detection_id]
                net.send(
                    self.node_id,
                    parent,
                    AckConsistentState(msg.detection_id, count=total),
                    AckConsistentState.wire_size,
                )
            elif total > self._first_layer_below:
                raise ProtocolError("over-counted consistent-state acks")
        elif isinstance(msg, WaitInfoMsg):
            net.send(self.node_id, parent, msg, msg.wire_size)
        elif isinstance(
            msg, (CollectiveAck, RequestConsistentState, RequestWaits)
        ):
            for child in self.topology.children(self.node_id):
                net.send(self.node_id, child, msg, getattr(msg, "wire_size", 32))
        else:
            raise ProtocolError(
                f"interior node {self.node_id} cannot handle "
                f"{type(msg).__name__}"
            )

    def _expected_participants(self, comm_id: int) -> int:
        """Participants of the communicator under this subtree."""
        cached = self._participant_cache.get(comm_id)
        if cached is None:
            group = set(self.comms.get(comm_id).group)
            cached = sum(1 for r in self._subtree_ranks if r in group)
            self._participant_cache[comm_id] = cached
        return cached


@dataclass
class DetectionRecord:
    """One timeout-triggered detection run at the root."""

    detection_id: int
    requested_at: float
    consistent_at: Optional[float] = None
    gathered_at: Optional[float] = None
    graph: Optional[WaitForGraph] = None
    result: Optional[DetectionResult] = None
    conditions: Dict[int, WaitForCondition] = field(default_factory=dict)
    timers: PhaseTimers = field(default_factory=PhaseTimers)
    dot_text: Optional[str] = None
    html_report: Optional[str] = None
    #: Flight-recorder tails of the deadlocked ranks (rank -> events).
    flight_tails: Dict[int, List[dict]] = field(default_factory=dict)
    #: Human-readable blame chain along the witness cycle.
    blame: Tuple[str, ...] = ()
    #: Machine-readable deadlock report (``repro-deadlock-report/1``).
    json_report: Optional[dict] = None

    @property
    def complete(self) -> bool:
        return self.result is not None

    @property
    def has_deadlock(self) -> bool:
        return bool(self.result and self.result.has_deadlock)


class RootNode:
    """The TBON root: collective matching and graph-based detection."""

    def __init__(
        self,
        node_id: int,
        topology: TbonTopology,
        comms: CommRegistry,
        *,
        generate_outputs: bool = True,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.comms = comms
        self.generate_outputs = generate_outputs
        self.flight = flight if flight is not None else NULL_FLIGHT_RECORDER
        self._agg = WaveAggregator()
        self._detections: Dict[int, DetectionRecord] = {}
        self._next_detection = 0
        self._active_detection: Optional[int] = None
        self._deferred_detections = 0
        self._pending_acks: Dict[int, int] = {}
        self._pending_waits: Dict[int, List[WaitInfoMsg]] = {}
        self.completed_detections: List[DetectionRecord] = []
        self.stats: Dict[str, int] = {}

    # -- message handling --------------------------------------------------

    def handle(self, msg: object, net: Transport, src: int) -> None:
        self.stats[type(msg).__name__] = self.stats.get(type(msg).__name__, 0) + 1
        if isinstance(msg, CollectiveReady):
            group_size = self.comms.get(msg.comm_id).size
            emitted = self._agg.add(
                (msg.comm_id, msg.wave_index),
                WaveContribution(count=msg.count, kind=msg.kind, root=msg.root),
                expected=group_size,
            )
            if emitted is not None:
                self._broadcast(
                    net, CollectiveAck(msg.comm_id, msg.wave_index)
                )
        elif isinstance(msg, AckConsistentState):
            self._handle_ack(msg, net)
        elif isinstance(msg, WaitInfoMsg):
            self._handle_wait_info(msg, net)
        else:
            raise ProtocolError(
                f"root cannot handle {type(msg).__name__}"
            )

    def _broadcast(self, net: Transport, msg: object) -> None:
        for child in self.topology.children(self.node_id):
            net.send(self.node_id, child, msg, getattr(msg, "wire_size", 32))

    # -- detection protocol ---------------------------------------------------

    def start_detection(self, net: Transport) -> int:
        """Timeout fired: request a consistent state (Section 5).

        Detections are strictly serialized, as in MUST (the next
        timeout is armed only after a detection completes): a request
        arriving while one is in flight is deferred and fires as soon
        as the active one finishes.
        """
        if self._active_detection is not None:
            self._deferred_detections += 1
            return self._active_detection
        detection_id = self._next_detection
        self._next_detection += 1
        self._active_detection = detection_id
        record = DetectionRecord(
            detection_id=detection_id, requested_at=net.now
        )
        self._detections[detection_id] = record
        self._pending_acks[detection_id] = 0
        self._pending_waits[detection_id] = []
        self._broadcast(net, RequestConsistentState(detection_id))
        return detection_id

    def _handle_ack(self, msg: AckConsistentState, net: Transport) -> None:
        record = self._detections.get(msg.detection_id)
        if record is None:
            raise ProtocolError(f"ack for unknown detection {msg.detection_id}")
        total = self._pending_acks[msg.detection_id] + msg.count
        self._pending_acks[msg.detection_id] = total
        expected = len(self.topology.first_layer)
        if total < expected:
            return
        if total > expected:
            raise ProtocolError("more consistent-state acks than nodes")
        record.consistent_at = net.now
        record.timers.add(
            PHASE_SYNCHRONIZATION, net.now - record.requested_at
        )
        if net.obs.enabled:
            net.obs.tracer.complete(
                PHASE_SYNCHRONIZATION,
                cat="detection",
                ts=record.requested_at * 1e6,
                dur=(net.now - record.requested_at) * 1e6,
                pid=PID_TBON,
                tid=self.node_id,
                args={"detection": msg.detection_id},
            )
        self._broadcast(net, RequestWaits(msg.detection_id))

    def _handle_wait_info(self, msg: WaitInfoMsg, net: Transport) -> None:
        record = self._detections.get(msg.detection_id)
        if record is None:
            raise ProtocolError(
                f"wait info for unknown detection {msg.detection_id}"
            )
        waits = self._pending_waits[msg.detection_id]
        waits.append(msg)
        if len(waits) < len(self.topology.first_layer):
            return
        record.gathered_at = net.now
        assert record.consistent_at is not None
        record.timers.add(
            PHASE_WFG_GATHER, net.now - record.consistent_at
        )
        if net.obs.enabled:
            net.obs.tracer.complete(
                PHASE_WFG_GATHER,
                cat="detection",
                ts=record.consistent_at * 1e6,
                dur=(net.now - record.consistent_at) * 1e6,
                pid=PID_TBON,
                tid=self.node_id,
                args={"detection": msg.detection_id},
            )
        self._finish_detection(record, waits, net)
        del self._detections[msg.detection_id]
        del self._pending_acks[msg.detection_id]
        del self._pending_waits[msg.detection_id]
        self._active_detection = None
        if self._deferred_detections > 0:
            self._deferred_detections -= 1
            self.start_detection(net)

    # -- WFG construction at the root -----------------------------------------

    def _finish_detection(
        self,
        record: DetectionRecord,
        waits: Sequence[WaitInfoMsg],
        net: Optional[Network] = None,
    ) -> None:
        with record.timers.phase(PHASE_GRAPH_BUILD):
            conditions = self._resolve_conditions(waits)
            finished = {
                rank for msg in waits for rank in msg.finished
            }
            graph = WaitForGraph.from_conditions(
                self.topology.num_ranks,
                conditions.values(),
                finished=finished,
            )
        with record.timers.phase(PHASE_DEADLOCK_CHECK):
            result = detect_deadlock(graph)
        record.graph = graph
        record.result = result
        record.conditions = conditions
        if result.has_deadlock:
            # Imported lazily: repro.obs.causal itself builds on the
            # core WFG types, so a module-level import would cycle.
            from repro.obs.causal import blame_chain

            record.blame = tuple(blame_chain(graph, result, conditions))
        if self.generate_outputs and result.has_deadlock:
            with record.timers.phase(PHASE_OUTPUT):
                # Tails are rendered here, not on the tracking path:
                # snapshotting describes every retained operation, which
                # is report-generation work, not wait-state tracking.
                if self.flight.enabled:
                    record.flight_tails = self.flight.snapshot(
                        sorted(result.deadlocked)
                    )
                record.dot_text = render_dot(graph, result)
                record.html_report = render_html_report(
                    graph,
                    result,
                    conditions,
                    dot_text=record.dot_text,
                    flight_tails=record.flight_tails,
                    blame=record.blame,
                )
                record.json_report = render_json_report(
                    graph,
                    result,
                    conditions,
                    flight_tails=record.flight_tails,
                    blame=record.blame,
                )
        if net is not None and net.obs.enabled:
            obs = net.obs
            obs.metrics.inc("detection.runs")
            if record.has_deadlock:
                obs.metrics.inc("detection.deadlocks")
            obs.metrics.merge_phase_breakdown(record.timers.breakdown())
            # The root's computation phases are wall-clock durations;
            # lay them out sequentially after the gather on the
            # simulated timeline so the trace shows the full pipeline.
            assert record.gathered_at is not None
            cursor = record.gathered_at * 1e6
            for phase in (
                PHASE_GRAPH_BUILD, PHASE_DEADLOCK_CHECK, PHASE_OUTPUT
            ):
                dur = record.timers.elapsed(phase) * 1e6
                obs.tracer.complete(
                    phase,
                    cat="detection",
                    ts=cursor,
                    dur=dur,
                    pid=PID_TBON,
                    tid=self.node_id,
                    args={"detection": record.detection_id},
                )
                cursor += dur
        self.completed_detections.append(record)

    def _resolve_conditions(
        self, waits: Sequence[WaitInfoMsg]
    ) -> Dict[int, WaitForCondition]:
        """Expand collective waits rank-wise and build CNF conditions.

        A rank blocked in wave W waits (AND) for every group member
        whose own blocked operation is *not* W: under strict blocking
        semantics nobody can have passed an incomplete wave, so
        non-reporters of W provably have not activated it.
        """
        blocked_wave: Dict[int, Tuple[int, int]] = {}
        infos: Dict[int, RankWaitInfo] = {}
        for msg in waits:
            for info in msg.infos:
                infos[info.rank] = info
                for entry in info.entries:
                    if isinstance(entry, CollectiveWait):
                        blocked_wave[info.rank] = (
                            entry.comm_id, entry.wave_index
                        )
        conditions: Dict[int, WaitForCondition] = {}
        for rank in sorted(infos):
            info = infos[rank]
            cond = WaitForCondition(
                rank=rank,
                op_ref=(rank, -1),
                op_description=info.op_description,
            )
            or_clause: List[WaitTarget] = []
            for entry in info.entries:
                if isinstance(entry, CollectiveWait):
                    wave = (entry.comm_id, entry.wave_index)
                    group = self.comms.get(entry.comm_id).group
                    for k in group:
                        if k == rank or blocked_wave.get(k) == wave:
                            continue
                        cond.clauses.append(
                            (intern_target(k, "has not activated the wave"),)
                        )
                elif isinstance(entry, P2PWait):
                    targets = tuple(
                        intern_target(t, entry.reason)
                        for t in entry.or_targets
                    )
                    if info.or_semantics:
                        or_clause.extend(targets)
                    else:
                        cond.clauses.append(targets)
                else:
                    raise ProtocolError(
                        f"unknown wait entry {type(entry).__name__}"
                    )
            if info.or_semantics:
                cond.clauses.append(tuple(or_clause))
            conditions[rank] = cond
        return conditions

    # -- results ------------------------------------------------------------

    def last_detection(self) -> Optional[DetectionRecord]:
        return self.completed_detections[-1] if self.completed_detections else None
