"""The wait state transition system ``T = (States, ->ws, L0)`` (Section 3).

States are vectors ``(l_0, ..., l_{p-1})`` of per-process logical
timestamps: ``l_i`` is the index of process *i*'s currently active
operation. The transition relation is the smallest relation satisfying
the paper's rules:

(1) *nb*   — a non-blocking operation (``b(i,j) = False``) always advances;
(2) *p2p*  — a send/receive/probe advances once its matching operation is
             active (``l_k >= n``);
(3) *coll* — a collective advances once every member of its complete
             match set is active;
(4) *any* / *all* — a completion operation advances once one (Waitany /
             Waitsome) or all (Wait / Waitall) of its associated
             non-blocking operations are matched with active partners.

The system is confluent (independent transitions commute), so a unique
terminal state exists; :meth:`TransitionSystem.run` computes it with an
event-driven worklist, and :meth:`TransitionSystem.run_slow` is the
naive reference fixpoint used to cross-check it in tests.

A process is *blocked* in a state iff no rule advances it (Section
3.2); the blocked set of any reachable state is valid input for
graph-based deadlock detection.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.mpi.blocking import BlockingSemantics, is_blocking
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation, OpRef
from repro.mpi.trace import CollectiveMatch, MatchedTrace

State = Tuple[int, ...]

#: Transition labels as the paper writes them above the arrows.
RULE_NB = "nb"
RULE_P2P = "p2p"
RULE_COLL = "coll"
RULE_ANY = "any"
RULE_ALL = "all"

# Request-creating sends whose completion is always local (explicit user
# buffering / ready mode): rule 4 treats them as satisfied without a
# matched active partner.
_LOCALLY_COMPLETING_SENDS = frozenset({OpKind.IBSEND, OpKind.IRSEND})


@dataclass(frozen=True)
class UnexpectedMatch:
    """An unexpected match in the sense of Section 3.3.

    In a terminal state, ``receive`` is an active wildcard receive,
    ``candidate_send`` is an active send whose envelope could match it,
    yet point-to-point matching paired the receive with
    ``matched_send``, which is *not* active. The strict blocking
    predicate is too conservative for this trace; the analysis should
    re-run with semantics adapted to the MPI implementation's choices.
    """

    receive: OpRef
    candidate_send: OpRef
    matched_send: Optional[OpRef]


class TransitionSystem:
    """Executable form of the paper's transition system over one trace."""

    def __init__(
        self,
        matched: MatchedTrace,
        semantics: BlockingSemantics | None = None,
    ) -> None:
        self.matched = matched
        self.trace = matched.trace
        self.semantics = semantics or BlockingSemantics.strict()
        self._p = self.trace.num_processes
        self._lens = self.trace.lengths()

    # ------------------------------------------------------------------
    # basic state queries
    # ------------------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return self._p

    def initial_state(self) -> State:
        return (0,) * self._p

    def _check_state(self, state: Sequence[int]) -> None:
        if len(state) != self._p:
            raise ValueError("state arity does not match trace")
        for i, l in enumerate(state):
            if not (0 <= l <= self._lens[i]):
                raise ValueError(
                    f"timestamp {l} of process {i} outside [0, {self._lens[i]}]"
                )

    def finished(self, state: Sequence[int], i: int) -> bool:
        """Process *i* has nothing further to analyze in this state.

        Either it sits on its MPI_Finalize (the designated terminal
        operation) or it consumed its entire *recorded* trace — the
        latter occurs for trace prefixes/windows, where running off the
        end means "need more events", never "blocked".
        """
        l = state[i]
        if l >= self._lens[i]:
            return True
        op = self.trace.op((i, l))
        return op.is_finalize()

    # ------------------------------------------------------------------
    # rule evaluation
    # ------------------------------------------------------------------

    def rule_label(self, state: Sequence[int], i: int) -> Optional[str]:
        """The rule that advances process *i* in ``state``, if any."""
        l = state[i]
        if l >= self._lens[i]:
            return None
        op = self.trace.op((i, l))
        if op.is_finalize():
            return None
        if not is_blocking(op, self.semantics):
            return RULE_NB
        if op.is_p2p():
            match = self.matched.match_of((i, l))
            if match is not None and state[match[0]] >= match[1]:
                return RULE_P2P
            return None
        if op.is_collective():
            if self._collective_satisfied(state, op):
                return RULE_COLL
            return None
        if op.is_completion():
            label = RULE_ALL if _needs_all(op) else RULE_ANY
            if self._completion_satisfied(state, op):
                return label
            return None
        return None

    def can_advance(self, state: Sequence[int], i: int) -> bool:
        return self.rule_label(state, i) is not None

    def _collective_satisfied(self, state: Sequence[int], op: Operation) -> bool:
        match = self.matched.collective_match(op.ref)
        if self.semantics.collective_synchronizes(op.kind):
            if match is None:
                return False
            return all(state[k] >= n for (k, n) in match.members)
        # Relaxed analysis semantics (Section 3.3: adapt b to the MPI
        # implementation's choices): rooted collectives synchronize only
        # through the root.
        return self._relaxed_collective_satisfied(state, op, match)

    def _relaxed_collective_satisfied(
        self,
        state: Sequence[int],
        op: Operation,
        match: Optional[CollectiveMatch],
    ) -> bool:
        kind = op.kind
        if kind in (OpKind.REDUCE, OpKind.GATHER):
            if op.rank != op.root:
                return True
            if match is None:
                return False
            return all(state[k] >= n for (k, n) in match.members)
        if kind in (OpKind.BCAST, OpKind.SCATTER):
            if op.rank == op.root:
                return True
            members = self._wave_members(op.ref, match)
            for (k, n) in members:
                if k == op.root:
                    return state[k] >= n
            return False
        # Everything else synchronizes the full group even when relaxed.
        if match is None:
            return False
        return all(state[k] >= n for (k, n) in match.members)

    def _wave_members(
        self, ref: OpRef, match: Optional[CollectiveMatch]
    ) -> Sequence[OpRef]:
        if match is not None:
            return tuple(match.members)
        pending = self.matched.pending_collective_of(ref)
        if pending is None:
            return ()
        return tuple(pending.arrived.values())

    def _completion_target_satisfied(
        self, state: Sequence[int], target: OpRef
    ) -> bool:
        top = self.trace.op(target)
        if top.kind in _LOCALLY_COMPLETING_SENDS:
            return True
        if top.is_send() and self.semantics.send_buffers(top):
            return True
        match = self.matched.match_of(target)
        if match is None:
            return False
        return state[match[0]] >= match[1]

    def _completion_satisfied(self, state: Sequence[int], op: Operation) -> bool:
        targets = self.matched.completion_targets(op.ref)
        if not targets:
            return True
        if _needs_all(op):
            return all(
                self._completion_target_satisfied(state, t) for t in targets
            )
        return any(self._completion_target_satisfied(state, t) for t in targets)

    # ------------------------------------------------------------------
    # nondeterministic single-step interface (used by property tests)
    # ------------------------------------------------------------------

    def enabled_processes(self, state: Sequence[int]) -> List[int]:
        self._check_state(state)
        return [i for i in range(self._p) if self.can_advance(state, i)]

    def step(self, state: Sequence[int], i: int) -> State:
        if not self.can_advance(state, i):
            raise ValueError(f"no rule advances process {i} in {state}")
        new = list(state)
        new[i] += 1
        return tuple(new)

    def is_terminal(self, state: Sequence[int]) -> bool:
        return not self.enabled_processes(state)

    def blocked_processes(self, state: Sequence[int]) -> Set[int]:
        """Processes with no applicable rule that have not finished."""
        self._check_state(state)
        return {
            i
            for i in range(self._p)
            if not self.finished(state, i) and not self.can_advance(state, i)
        }

    def finished_processes(self, state: Sequence[int]) -> Set[int]:
        """Processes that produce no further operations in this trace.

        For a complete trace these are terminated processes — they can
        release no waiter, which the deadlock criterion must respect.
        """
        self._check_state(state)
        return {i for i in range(self._p) if self.finished(state, i)}

    # ------------------------------------------------------------------
    # terminal-state computation
    # ------------------------------------------------------------------

    def run_slow(self, start: Sequence[int] | None = None) -> State:
        """Naive fixpoint: repeatedly sweep all processes. O(p * steps)."""
        state = list(start) if start is not None else [0] * self._p
        self._check_state(state)
        progress = True
        while progress:
            progress = False
            for i in range(self._p):
                while self.can_advance(state, i):
                    state[i] += 1
                    progress = True
        return tuple(state)

    def run(self, start: Sequence[int] | None = None) -> State:
        """Event-driven computation of the unique terminal state.

        Confluence (Section 3.1) guarantees any maximal rule application
        order gives the same result, so a deterministic worklist order
        is sound. Watches implement the monotone premises: a process
        whose premise mentions ``l_k >= n`` re-checks when operation
        ``(k, n)`` activates; complete collective matches keep a
        counter of not-yet-active members.
        """
        state = list(start) if start is not None else [0] * self._p
        self._check_state(state)

        coll_remaining: Dict[int, int] = {}
        coll_ranks: Dict[int, List[int]] = {}
        for idx, match in enumerate(self.matched.collectives):
            remaining = sum(
                1 for (k, n) in match.members if state[k] < n
            )
            coll_remaining[idx] = remaining
            coll_ranks[idx] = [k for (k, _n) in match.members]
        coll_of_ref: Dict[OpRef, int] = {}
        for idx, match in enumerate(self.matched.collectives):
            for ref in match.members:
                coll_of_ref[ref] = idx

        watches: Dict[OpRef, List[int]] = {}
        queue: deque[int] = deque(range(self._p))
        queued = [True] * self._p

        def enqueue(i: int) -> None:
            if not queued[i]:
                queued[i] = True
                queue.append(i)

        def on_activated(ref: OpRef) -> None:
            # An operation became active (its process reached it).
            for waiter in watches.pop(ref, ()):
                enqueue(waiter)
            idx = coll_of_ref.get(ref)
            if idx is not None:
                coll_remaining[idx] -= 1
                if coll_remaining[idx] == 0:
                    for k in coll_ranks[idx]:
                        enqueue(k)

        # No explicit initial-activation pass is needed: the collective
        # counters above were initialized with `state[k] < n`, which
        # already treats every op at or below the start timestamps as
        # active, and no watches exist yet.
        while queue:
            i = queue.popleft()
            queued[i] = False
            while self.rule_label(state, i) is not None:
                state[i] += 1
                on_activated((i, state[i]))
            self._register_watch(state, i, watches)
        return tuple(state)

    def _register_watch(
        self,
        state: Sequence[int],
        i: int,
        watches: Dict[OpRef, List[int]],
    ) -> None:
        """Register wake-up triggers for a currently stuck process."""
        l = state[i]
        if l >= self._lens[i]:
            return
        op = self.trace.op((i, l))
        if op.is_finalize():
            return
        if op.is_p2p():
            match = self.matched.match_of((i, l))
            if match is not None and state[match[0]] < match[1]:
                watches.setdefault(match, []).append(i)
            return
        if op.is_collective():
            # Complete matches wake their members via the counter; for
            # relaxed rooted collectives the root's activation matters.
            if not self.semantics.collective_synchronizes(op.kind):
                members = self._wave_members(
                    (i, l), self.matched.collective_match((i, l))
                )
                for (k, n) in members:
                    if state[k] < n:
                        watches.setdefault((k, n), []).append(i)
            return
        if op.is_completion():
            targets = self.matched.completion_targets((i, l))
            for t in targets:
                if self._completion_target_satisfied(state, t):
                    continue
                match = self.matched.match_of(t)
                if match is not None and state[match[0]] < match[1]:
                    watches.setdefault(match, []).append(i)
                    if _needs_all(op):
                        # One unsatisfied watched premise suffices for
                        # AND; re-registration happens on re-check.
                        return
            return

    # ------------------------------------------------------------------
    # deadlock-level results
    # ------------------------------------------------------------------

    def terminal_state(self) -> State:
        return self.run()

    def deadlocked(self, terminal: Sequence[int] | None = None) -> bool:
        """True iff some process could not reach MPI_Finalize/trace end."""
        state = terminal if terminal is not None else self.run()
        return bool(self.blocked_processes(state))

    # ------------------------------------------------------------------
    # unexpected matches (Section 3.3)
    # ------------------------------------------------------------------

    def find_unexpected_matches(
        self, state: Sequence[int] | None = None
    ) -> List[UnexpectedMatch]:
        """Detect wildcard receives whose strict blocking is suspect.

        For each wildcard receive active in ``state`` (default: the
        terminal state), report every active send whose envelope could
        match it while point-to-point matching paired the receive with a
        send that is *not* active in the state.
        """
        if state is None:
            state = self.run()
        self._check_state(state)
        # Active sends by destination for quick lookup.
        active_sends: Dict[int, List[Operation]] = {}
        for k in range(self._p):
            l = state[k]
            if l >= self._lens[k]:
                continue
            op = self.trace.op((k, l))
            if op.is_send():
                active_sends.setdefault(op.peer, []).append(op)  # type: ignore[arg-type]
        result: List[UnexpectedMatch] = []
        for i in range(self._p):
            l = state[i]
            if l >= self._lens[i]:
                continue
            recv = self.trace.op((i, l))
            if not recv.is_wildcard_receive():
                continue
            matched_send = self.matched.match_of((i, l))
            if matched_send is not None:
                k, n = matched_send
                if state[k] == n:
                    continue  # the matched send is active: no surprise
            for send in active_sends.get(i, ()):  # sends targeting rank i
                if matched_send is not None and send.ref == matched_send:
                    continue
                if recv.envelope_matches_send(send):
                    result.append(
                        UnexpectedMatch(
                            receive=(i, l),
                            candidate_send=send.ref,
                            matched_send=matched_send,
                        )
                    )
        return result


def _needs_all(op: Operation) -> bool:
    return op.kind in (OpKind.WAIT, OpKind.WAITALL)
