"""Core analyses: transition system, wait state tracking, detection."""
from repro.core.adaptation import (
    AdaptiveAnalysis,
    Verdict,
    analyze_with_adaptation,
)
from repro.core.detector import (
    DistributedDeadlockDetector,
    DistributedOutcome,
    detect_deadlocks_distributed,
)
from repro.core.transition import (
    RULE_ALL,
    RULE_ANY,
    RULE_COLL,
    RULE_NB,
    RULE_P2P,
    State,
    TransitionSystem,
    UnexpectedMatch,
)
from repro.core.waitfor import WaitForCondition, WaitTarget, wait_for_conditions
from repro.core.waitstate import DeadlockAnalysis, analyze_trace

__all__ = [
    "AdaptiveAnalysis",
    "Verdict",
    "analyze_with_adaptation",
    "DeadlockAnalysis",
    "DistributedDeadlockDetector",
    "DistributedOutcome",
    "RULE_ALL",
    "RULE_ANY",
    "RULE_COLL",
    "RULE_NB",
    "RULE_P2P",
    "State",
    "TransitionSystem",
    "UnexpectedMatch",
    "WaitForCondition",
    "WaitTarget",
    "analyze_trace",
    "detect_deadlocks_distributed",
    "wait_for_conditions",
]
