"""Centralized wait state analysis — the Figure 1(a) baseline.

One tool process receives all operations, runs the transition system
to its terminal state, derives wait-for conditions, builds the
wait-for graph, checks the deadlock criterion, and renders the report.
This is both the scalability baseline of the evaluation and the
reference oracle the distributed implementation is validated against.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.transition import State, TransitionSystem, UnexpectedMatch
from repro.core.waitfor import WaitForCondition, wait_for_conditions
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.trace import MatchedTrace
from repro.perf.timers import (
    PHASE_DEADLOCK_CHECK,
    PHASE_GRAPH_BUILD,
    PHASE_OUTPUT,
    PHASE_WFG_GATHER,
    PhaseTimers,
)
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.dot import render_dot
from repro.wfg.graph import WaitForGraph
from repro.wfg.report import render_html_report


@dataclass
class DeadlockAnalysis:
    """Complete result of one deadlock analysis over a matched trace."""

    terminal_state: State
    blocked: Tuple[int, ...]
    conditions: Dict[int, WaitForCondition]
    graph: WaitForGraph
    detection: DetectionResult
    unexpected_matches: List[UnexpectedMatch]
    timers: PhaseTimers
    dot_text: Optional[str] = None
    html_report: Optional[str] = None

    @property
    def has_deadlock(self) -> bool:
        return self.detection.has_deadlock

    @property
    def deadlocked(self) -> Tuple[int, ...]:
        return self.detection.deadlocked


def analyze_trace(
    matched: MatchedTrace,
    *,
    semantics: BlockingSemantics | None = None,
    generate_outputs: bool = True,
) -> DeadlockAnalysis:
    """Run the full centralized analysis pipeline on ``matched``.

    ``generate_outputs=False`` skips DOT/HTML rendering (the dominant
    cost at scale — Figure 10(b)); detection results are unaffected.
    """
    timers = PhaseTimers()
    ts = TransitionSystem(matched, semantics=semantics)
    with timers.phase(PHASE_WFG_GATHER):
        terminal = ts.run()
        conditions = wait_for_conditions(ts, terminal)
    with timers.phase(PHASE_GRAPH_BUILD):
        graph = WaitForGraph.from_conditions(
            ts.num_processes,
            conditions.values(),
            finished=ts.finished_processes(terminal),
        )
    with timers.phase(PHASE_DEADLOCK_CHECK):
        detection = detect_deadlock(graph)
    unexpected = ts.find_unexpected_matches(terminal)
    dot_text = None
    html_report = None
    if generate_outputs:
        with timers.phase(PHASE_OUTPUT):
            if detection.has_deadlock:
                dot_text = render_dot(graph, detection)
                html_report = render_html_report(
                    graph,
                    detection,
                    conditions,
                    dot_text=dot_text,
                    unexpected=unexpected,
                )
    return DeadlockAnalysis(
        terminal_state=terminal,
        blocked=tuple(sorted(conditions)),
        conditions=conditions,
        graph=graph,
        detection=detection,
        unexpected_matches=unexpected,
        timers=timers,
        dot_text=dot_text,
        html_report=html_report,
    )
