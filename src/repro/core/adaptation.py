"""Semantics adaptation for unexpected matches (the paper's extension).

Section 3.3: the strict blocking predicate can stall on traces whose
point-to-point matching reflects implementation freedoms (e.g. a
non-synchronizing reduce letting a later send match an earlier
wildcard receive — Figure 4). The paper's conclusions plan to "extend
our model such that it correctly adapts to point-to-point matches that
we would otherwise not consider"; this module implements that loop:

1. analyze with the strict ``b``;
2. if the result contains *unexpected matches*, the strict verdict is
   untrustworthy for this trace: re-analyze under the semantics of the
   implementation that produced it (non-synchronizing collectives and
   buffered standard sends — the freedoms that make unexpected matches
   possible in the first place);
3. classify the outcome:

   * ``NO_DEADLOCK``   — the strict analysis already completes;
   * ``DEADLOCK``      — a deadlock survives the adapted semantics
     (it is real for the implementation that produced this trace);
   * ``UNSAFE``        — the strict analysis deadlocks *without*
     unexpected matches: the trace's execution completed only thanks
     to MPI freedoms; the program can deadlock on other
     implementations (the 126.lammps verdict);
   * ``ADAPTED_CLEAN`` — the strict stall was an artifact of
     unexpected matches; under the adapted semantics the trace
     completes. The program still deserves a diagnostic (it relies on
     non-synchronizing collectives), but no deadlock is reported.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.transition import UnexpectedMatch
from repro.core.waitstate import DeadlockAnalysis, analyze_trace
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.trace import MatchedTrace


class Verdict(enum.Enum):
    NO_DEADLOCK = "no deadlock"
    DEADLOCK = "deadlock"
    UNSAFE = "unsafe (potential deadlock under strict MPI semantics)"
    ADAPTED_CLEAN = "no deadlock after semantics adaptation"


@dataclass(frozen=True)
class AdaptationRound:
    """One analysis pass of the adaptation ladder."""

    description: str
    semantics: BlockingSemantics
    deadlocked: Tuple[int, ...]
    unexpected: Tuple[UnexpectedMatch, ...]


@dataclass
class AdaptiveAnalysis:
    """Outcome of the adaptive analysis loop."""

    verdict: Verdict
    final: DeadlockAnalysis
    rounds: List[AdaptationRound] = field(default_factory=list)

    @property
    def adapted(self) -> bool:
        return len(self.rounds) > 1

    @property
    def has_deadlock(self) -> bool:
        return self.verdict is Verdict.DEADLOCK or (
            self.verdict is Verdict.UNSAFE
        )

    def summary(self) -> str:
        lines = [f"verdict: {self.verdict.value}"]
        for r in self.rounds:
            lines.append(
                f"  [{r.description}] deadlocked={r.deadlocked or '()'} "
                f"unexpected_matches={len(r.unexpected)}"
            )
        return "\n".join(lines)


#: The adaptation ladder: the strict b, then the implementation-adapted
#: b (the freedoms that can produce unexpected matches, together).
_LADDER: Tuple[Tuple[str, BlockingSemantics], ...] = (
    ("strict b", BlockingSemantics.strict()),
    (
        "implementation-adapted b (non-synchronizing collectives, "
        "buffered standard sends)",
        BlockingSemantics.relaxed(),
    ),
)


def analyze_with_adaptation(
    matched: MatchedTrace,
    *,
    generate_outputs: bool = False,
) -> AdaptiveAnalysis:
    """Run the adaptive analysis loop over ``matched``."""
    rounds: List[AdaptationRound] = []
    analysis: Optional[DeadlockAnalysis] = None
    strict_analysis: Optional[DeadlockAnalysis] = None
    for description, semantics in _LADDER:
        analysis = analyze_trace(
            matched,
            semantics=semantics,
            generate_outputs=generate_outputs,
        )
        if strict_analysis is None:
            strict_analysis = analysis
        rounds.append(
            AdaptationRound(
                description=description,
                semantics=semantics,
                deadlocked=analysis.deadlocked,
                unexpected=tuple(analysis.unexpected_matches),
            )
        )
        if not analysis.unexpected_matches:
            break
    assert analysis is not None and strict_analysis is not None

    first = rounds[0]
    if not first.deadlocked and not first.unexpected:
        verdict = Verdict.NO_DEADLOCK
        final = strict_analysis
    elif first.deadlocked and not first.unexpected:
        # Sound strict verdict: deadlock, or unsafe if the execution
        # that produced this trace actually completed (the trace runs
        # to Finalize everywhere — e.g. buffered send-send cycles).
        verdict = Verdict.UNSAFE if _trace_completed(matched) else (
            Verdict.DEADLOCK
        )
        final = strict_analysis
    elif analysis.deadlocked:
        # Even the adapted semantics deadlock: real for this trace.
        verdict = Verdict.DEADLOCK
        final = analysis
    else:
        verdict = Verdict.ADAPTED_CLEAN
        final = analysis
    return AdaptiveAnalysis(verdict=verdict, final=final, rounds=rounds)


def _trace_completed(matched: MatchedTrace) -> bool:
    """Did every process's recorded trace end at MPI_Finalize?"""
    trace = matched.trace
    for rank in range(trace.num_processes):
        length = trace.length(rank)
        if length == 0:
            continue
        if not trace.op((rank, length - 1)).is_finalize():
            return False
    return True
