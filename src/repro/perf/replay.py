"""Timed trace replay: an executable check on the Figure 9 model.

The analytic slowdown model (:mod:`repro.perf.slowdown`) reduces the
tool's effect to a service-rate formula. This module validates that
reduction by *replaying* a matched trace on a simple timed machine:

* **Reference replay** computes each operation's completion time from
  the trace's real dependency structure (per-rank program order,
  matched rendezvous, collective barriers) under the cost model's
  latencies — a longest-path computation over the dependency DAG.
* **Tool-coupled replay** adds one tool server per first-layer node:
  every operation enqueues an event on its rank's host, hosts process
  events FIFO at ``tool_event_cost`` (plus immediate-message cost for
  handshakes crossing hosts), and a bounded per-rank event queue
  back-pressures the application — an operation cannot issue until the
  host has drained the rank's events ``queue_depth`` calls back.

``replay_slowdown`` returns tool-makespan / reference-makespan. It is
an app-level abstraction (it does not re-run the protocol machinery —
the correctness path does that), so agreement with the analytic model
within tens of percent, with the same trends, is the validation
target; EXPERIMENTS.md reports both.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mpi.blocking import BlockingSemantics
from repro.mpi.constants import OpKind
from repro.mpi.ops import Operation
from repro.mpi.trace import MatchedTrace
from repro.perf.costmodel import SIERRA, CostModel
from repro.tbon.topology import TbonTopology
from repro.util.errors import TraceError


@dataclass
class ReplayResult:
    """Timings of one replay pass."""

    makespan: float
    per_rank_finish: Tuple[float, ...]


def _completion_times(
    matched: MatchedTrace,
    model: CostModel,
    *,
    issue_gate: Optional[List[List[float]]] = None,
    compute_gap: float | None = None,
) -> ReplayResult:
    """Longest-path completion times over the trace dependency DAG.

    ``issue_gate[rank][ts]`` (optional) is an extra lower bound on the
    *issue* time of each operation — the tool back-pressure hook.
    Relaxed-run semantics are used (buffered standard sends), matching
    how the traces driving the overhead study were produced.
    """
    trace = matched.trace
    p = trace.num_processes
    gap = model.stress_compute if compute_gap is None else compute_gap
    semantics = BlockingSemantics.relaxed()
    completion: List[List[Optional[float]]] = [
        [None] * trace.length(rank) for rank in range(p)
    ]

    def issue_time(rank: int, ts: int) -> Optional[float]:
        prev = completion[rank][ts - 1] if ts > 0 else 0.0
        if prev is None:
            return None
        start = prev + gap
        if issue_gate is not None:
            start = max(start, issue_gate[rank][ts])
        return start

    def try_complete(op: Operation) -> Optional[float]:
        rank, ts = op.rank, op.ts
        start = issue_time(rank, ts)
        if start is None:
            return None
        kind = op.kind
        if op.is_send():
            if semantics.send_buffers(op) or kind in (
                OpKind.BSEND, OpKind.IBSEND, OpKind.RSEND, OpKind.IRSEND,
            ) or not op.is_p2p() or (op.peer is not None and op.peer < 0):
                return start
            if kind in (OpKind.ISEND, OpKind.ISSEND, OpKind.PSTART_SEND):
                return start  # request creation is local
            # Blocking rendezvous: wait for the matched receive's issue.
            match = matched.match_of(op.ref)
            if match is None:
                raise TraceError(f"replaying unmatched send {op.describe()}")
            partner_issue = issue_time(*match)
            if partner_issue is None:
                return None
            return max(start, partner_issue) + model.p2p_latency(
                rank, op.peer, op.nbytes  # type: ignore[arg-type]
            )
        if op.is_recv() or op.is_probe():
            if kind in (OpKind.IRECV, OpKind.PSTART_RECV, OpKind.IPROBE):
                return start
            if op.peer is not None and op.peer < 0 and op.peer != -1:
                return start  # PROC_NULL
            match = matched.match_of(op.ref)
            if match is None:
                raise TraceError(f"replaying unmatched {op.describe()}")
            sender_issue = issue_time(*match)
            if sender_issue is None:
                return None
            src = match[0]
            return max(start, sender_issue + model.p2p_latency(
                src, rank, op.nbytes
            ))
        if op.is_collective() or op.is_finalize():
            if op.is_finalize():
                return start
            match = matched.collective_match(op.ref)
            if match is None:
                raise TraceError(
                    f"replaying incomplete collective {op.describe()}"
                )
            latest = start
            for (k, n) in match.members:
                member_issue = issue_time(k, n)
                if member_issue is None:
                    return None
                latest = max(latest, member_issue)
            comm = matched.comms.get(op.comm_id)
            return latest + model.barrier_time(comm.size)
        if op.is_completion():
            latest = start
            for target in matched.completion_targets(op.ref):
                top = trace.op(target)
                if top.is_send():
                    match = matched.match_of(target)
                    if match is None:
                        # Buffered/eager: locally complete.
                        continue
                    partner_issue = issue_time(*match)
                    if partner_issue is None:
                        return None
                    latest = max(latest, partner_issue)
                else:
                    match = matched.match_of(target)
                    if match is None:
                        raise TraceError(
                            f"replaying unmatched {top.describe()}"
                        )
                    sender_issue = issue_time(*match)
                    if sender_issue is None:
                        return None
                    latest = max(
                        latest,
                        sender_issue + model.p2p_latency(
                            match[0], rank, top.nbytes
                        ),
                    )
            return latest
        return start  # local management calls

    # Fixpoint sweeps: each sweep resolves at least one more op.
    remaining = trace.total_ops()
    while remaining:
        progressed = 0
        for rank in range(p):
            for ts in range(trace.length(rank)):
                if completion[rank][ts] is not None:
                    continue
                value = try_complete(trace.op((rank, ts)))
                if value is None:
                    break  # later ops of this rank depend on this one
                completion[rank][ts] = value
                progressed += 1
        if progressed == 0:
            raise TraceError(
                "timed replay made no progress (deadlocked trace?)"
            )
        remaining -= progressed
    finishes = tuple(
        completion[rank][-1] if completion[rank] else 0.0
        for rank in range(p)
    )
    return ReplayResult(
        makespan=max(finishes, default=0.0), per_rank_finish=finishes
    )


def replay_reference(
    matched: MatchedTrace, model: CostModel = SIERRA
) -> ReplayResult:
    """Reference-run replay (no tool attached)."""
    return _completion_times(matched, model)


def replay_with_tool(
    matched: MatchedTrace,
    fan_in: int,
    model: CostModel = SIERRA,
    *,
    queue_depth: int = 4,
    centralized: bool = False,
) -> ReplayResult:
    """Tool-coupled replay: FIFO tool servers + bounded event queues.

    Two passes: the reference pass fixes each operation's *uncoupled*
    issue order; the tool pass then serializes the per-host event work
    and feeds the resulting drain times back as issue gates. One
    feedback round captures the dominant effect (the steady-state
    service-rate limit) without iterating to a fixpoint.
    """
    trace = matched.trace
    p = trace.num_processes
    if centralized:
        host_of = {rank: 0 for rank in range(p)}
        events_per_op = 2.0
        event_cost = 0.8e-6
    else:
        topo = TbonTopology.build(p, fan_in)
        host_of = {rank: topo.host_of_rank(rank) for rank in range(p)}
        events_per_op = 2.0
        event_cost = model.tool_event_cost

    # Serialize tool work per host, in each host's event-arrival order.
    # The per-op event arrival times use a monotone per-rank
    # approximation of the uncoupled pass: the rank's finish time
    # spread uniformly across its ops (sufficient for event ordering).
    base = _completion_times(matched, model)
    events: Dict[int, List[Tuple[float, int, int]]] = {}
    times: List[List[float]] = [
        [0.0] * trace.length(rank) for rank in range(p)
    ]
    for rank in range(p):
        n = trace.length(rank)
        finish = base.per_rank_finish[rank]
        for ts in range(n):
            times[rank][ts] = finish * (ts + 1) / max(n, 1)
    for rank in range(p):
        for ts in range(trace.length(rank)):
            host = host_of[rank]
            op = trace.op((rank, ts))
            cost = events_per_op * event_cost
            if not centralized and op.is_p2p() and op.peer is not None:
                if op.peer >= 0 and host_of.get(op.peer) != host:
                    cost += model.immediate_msg_cost
            events.setdefault(host, []).append((times[rank][ts], rank, ts))
    drain: Dict[Tuple[int, int], float] = {}
    for host, host_events in events.items():
        host_events.sort()
        clock = 0.0
        for arrival, rank, ts in host_events:
            op = trace.op((rank, ts))
            cost = events_per_op * event_cost
            if not centralized and op.is_p2p() and op.peer is not None:
                if op.peer >= 0 and host_of.get(op.peer) != host:
                    cost += model.immediate_msg_cost
            clock = max(clock, arrival) + cost
            drain[(rank, ts)] = clock

    # Back-pressure gates: op ts may not issue before the host drained
    # the rank's event from queue_depth calls earlier.
    gates: List[List[float]] = [
        [0.0] * trace.length(rank) for rank in range(p)
    ]
    for rank in range(p):
        for ts in range(trace.length(rank)):
            if ts >= queue_depth:
                gates[rank][ts] = drain[(rank, ts - queue_depth)]
    return _completion_times(matched, model, issue_gate=gates)


def replay_slowdown(
    matched: MatchedTrace,
    fan_in: int,
    model: CostModel = SIERRA,
    *,
    centralized: bool = False,
) -> float:
    """Tool-coupled / reference makespan ratio for one trace."""
    ref = replay_reference(matched, model)
    tool = replay_with_tool(
        matched, fan_in, model, centralized=centralized
    )
    if ref.makespan <= 0:
        return 1.0
    return max(1.0, tool.makespan / ref.makespan)
