"""Phase timers for the detection-time breakdowns of Figures 10(b)/11(b).

The paper splits total deadlock-detection time into five activity
groups: Synchronization, WFG gather, Graph build, Deadlock check, and
Output generation. :class:`PhaseTimers` accumulates wall-clock time per
named phase so benches can print the same breakdown.
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: Canonical phase names, in the paper's presentation order.
PHASE_SYNCHRONIZATION = "synchronization"
PHASE_WFG_GATHER = "wfg_gather"
PHASE_GRAPH_BUILD = "graph_build"
PHASE_DEADLOCK_CHECK = "deadlock_check"
PHASE_OUTPUT = "output_generation"

ALL_PHASES = (
    PHASE_SYNCHRONIZATION,
    PHASE_WFG_GATHER,
    PHASE_GRAPH_BUILD,
    PHASE_DEADLOCK_CHECK,
    PHASE_OUTPUT,
)


class PhaseTimers:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] = (
                self._elapsed.get(name, 0.0) + time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("negative phase time")
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds

    def elapsed(self, name: str) -> float:
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        return sum(self._elapsed.values())

    def breakdown(self) -> Dict[str, float]:
        """Phase -> seconds, in canonical order first, extras after."""
        ordered: Dict[str, float] = {}
        for name in ALL_PHASES:
            if name in self._elapsed:
                ordered[name] = self._elapsed[name]
        for name, value in self._elapsed.items():
            if name not in ordered:
                ordered[name] = value
        return ordered

    def shares(self) -> Dict[str, float]:
        """Phase -> fraction of total (the Figure 10(b) ratios)."""
        total = self.total()
        if total <= 0:
            return {name: 0.0 for name in self._elapsed}
        return {name: v / total for name, v in self.breakdown().items()}
