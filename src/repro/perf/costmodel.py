"""Cost constants and primitive time formulas of the performance model.

The paper's slowdown results (Figures 9 and 12) were measured on
Sierra; we regenerate their *shape* from a queueing-style model with
explicitly documented constants. The model captures the mechanisms the
paper names:

* latency-bound applications stress the tool because every MPI call
  produces tool events (Section 6, stress test design);
* wait-state messages use immediate (non-aggregated) communication
  (Section 4.2), so they pay full per-message cost, while matching
  traffic streams through aggregated buffers at a fraction of it;
* a first-layer node serves ``fan_in`` ranks; the centralized tool is
  a single node serving all ``p`` ranks — its service time grows
  linearly with ``p`` and dominates the application's own rate
  (Figure 9's diverging baseline);
* reference runs slow down at scale as the intra-/inter-node
  communication mix shifts (Section 6), which *reduces* relative tool
  overhead.

Constants are calibrated so the 16-process fan-in-2 stress-test
slowdown lands near the paper's ~70x and decays toward ~45x at 4,096;
EXPERIMENTS.md reports the generated series against the paper's.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from repro.perf.placement import Placement


@dataclass(frozen=True)
class CostModel:
    """Latency/processing constants (seconds, bytes)."""

    #: Intra-node (shared memory) small-message latency.
    intra_latency: float = 0.45e-6
    #: Inter-node (QDR InfiniBand) small-message latency.
    inter_latency: float = 1.7e-6
    #: Per-byte transfer cost (≈3.2 GB/s QDR effective bandwidth).
    per_byte: float = 1.0 / 3.2e9
    #: Tool-node processing cost per wait-state/matching event. Pure
    #: tool-side CPU cost; MUST's handlers run in an interpreted event
    #: framework (GTI), hence microseconds per event.
    tool_event_cost: float = 5.2e-6
    #: Per-message cost for immediate (non-aggregatable) tool messages —
    #: the wait-state traffic of Section 4.2.
    immediate_msg_cost: float = 1.9e-6
    #: Relative cost of streamed/aggregated matching traffic: many
    #: events share one buffer, so the per-event wire cost shrinks.
    streaming_factor: float = 0.15
    #: Application compute time between MPI calls in the stress test
    #: (communication-bound: almost nothing).
    stress_compute: float = 0.2e-6
    #: Overlap factor for barrier rounds: consecutive dissemination
    #: rounds pipeline on real interconnects, so the end-to-end barrier
    #: is below the sum of round latencies.
    barrier_overlap: float = 0.45

    placement: Placement = Placement()

    def p2p_latency(self, src: int, dst: int, nbytes: int = 4) -> float:
        base = (
            self.intra_latency
            if self.placement.same_host(src, dst)
            else self.inter_latency
        )
        return base + nbytes * self.per_byte

    def mixed_latency(self, internode_fraction: float, nbytes: int = 4) -> float:
        """Latency under an intra/inter mix (for aggregate formulas)."""
        lat = (
            (1.0 - internode_fraction) * self.intra_latency
            + internode_fraction * self.inter_latency
        )
        return lat + nbytes * self.per_byte

    def barrier_time(self, num_ranks: int) -> float:
        """Dissemination barrier: ceil(log2 p) rounds.

        Rounds with distance < cores-per-node run at intra-node speed;
        wider rounds cross the network.
        """
        if num_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        total = 0.0
        for k in range(rounds):
            distance = 1 << k
            lat = (
                self.intra_latency
                if distance < self.placement.cores_per_node
                else self.inter_latency
            )
            total += lat
        return total * self.barrier_overlap

    def reduction_time(self, num_ranks: int, nbytes: int = 8) -> float:
        """Binomial-tree reduction/broadcast estimate."""
        return self.barrier_time(num_ranks) + nbytes * self.per_byte * max(
            1, math.ceil(math.log2(max(num_ranks, 2)))
        )


#: The default, Sierra-calibrated model used by the benches.
SIERRA = CostModel()
