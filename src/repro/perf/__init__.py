"""Performance model: cost constants, placement, slowdown formulas."""
from repro.perf.costmodel import SIERRA, CostModel
from repro.perf.placement import Placement
from repro.perf.replay import (
    ReplayResult,
    replay_reference,
    replay_slowdown,
    replay_with_tool,
)
from repro.perf.slowdown import (
    AppProfile,
    StressTestConfig,
    spec_slowdown,
    stress_centralized_slowdown,
    stress_distributed_slowdown,
    stress_reference_iteration,
    stress_sweep,
)
from repro.perf.timers import ALL_PHASES, PhaseTimers

__all__ = [
    "ALL_PHASES",
    "ReplayResult",
    "replay_reference",
    "replay_slowdown",
    "replay_with_tool",
    "AppProfile",
    "CostModel",
    "PhaseTimers",
    "Placement",
    "SIERRA",
    "StressTestConfig",
    "spec_slowdown",
    "stress_centralized_slowdown",
    "stress_distributed_slowdown",
    "stress_reference_iteration",
    "stress_sweep",
]
