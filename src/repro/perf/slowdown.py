"""Slowdown models regenerating Figures 9 and 12.

Two tool architectures are modelled over the same reference-run model:

* **Distributed** (Figure 1(b)): each first-layer node serves
  ``fan_in`` ranks. Its service time per application iteration is the
  event-processing work for those ranks plus the immediate-message
  cost of the wait-state handshakes that cross tool nodes (Section
  4.2: these cannot be aggregated). Because the application is gated
  by bounded event queues, the achieved rate is the minimum of the
  application's own rate and the tool's service rate — slowdown is
  their ratio, independent of ``p`` except through the reference run.

* **Centralized** (Figure 1(a)): one tool process serves all ``p``
  ranks; its service time grows linearly in ``p``, which reproduces
  Figure 9's diverging baseline (~8,000x projected at 4,096).

All constants live in :class:`~repro.perf.costmodel.CostModel`;
nothing here reads a wall clock.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.perf.costmodel import SIERRA, CostModel


@dataclass(frozen=True)
class StressTestConfig:
    """The Section 6 synthetic stress test.

    Multiple iterations of a cyclic exchange — each process sends one
    integer to its right neighbour and receives from its left — with an
    MPI_Barrier every ``barrier_every``-th iteration.
    """

    iterations: int = 1000
    barrier_every: int = 10
    payload_bytes: int = 4

    # Tool events one rank contributes to its host per iteration:
    # newOp(send) + newOp(recv) + handlePassSend + handleRecvActive +
    # handleRecvActiveAck, plus the amortized barrier events.
    P2P_EVENTS_PER_ITER = 5.0
    BARRIER_EVENTS = 1.3


def stress_reference_iteration(
    p: int, config: StressTestConfig | None = None, model: CostModel = SIERRA
) -> float:
    """Reference-run time of one stress-test iteration (seconds)."""
    config = config or StressTestConfig()
    f = model.placement.internode_fraction_ring(p)
    t_p2p = model.mixed_latency(f, config.payload_bytes)
    t_barrier = model.barrier_time(p) / config.barrier_every
    return model.stress_compute + t_p2p + t_barrier


def stress_distributed_slowdown(
    p: int,
    fan_in: int,
    config: StressTestConfig | None = None,
    model: CostModel = SIERRA,
) -> float:
    """Figure 9, distributed implementation: slowdown at ``p`` ranks."""
    if fan_in < 2:
        raise ValueError("fan-in must be >= 2")
    config = config or StressTestConfig()
    ref = stress_reference_iteration(p, config, model)
    events = (
        config.P2P_EVENTS_PER_ITER
        + config.BARRIER_EVENTS / config.barrier_every
    )
    busy = fan_in * events * model.tool_event_cost
    # Handshake messages that cross first-layer nodes: with contiguous
    # hosting only the two boundary ranks of each node talk to another
    # tool node; three immediate messages each way per iteration.
    crossing_msgs = 2 * 3.0
    busy += crossing_msgs * model.immediate_msg_cost
    # newOp streams from the application are aggregated (streaming).
    busy += fan_in * 2.0 * model.streaming_factor * model.immediate_msg_cost
    return max(1.0, busy / ref)


def stress_centralized_slowdown(
    p: int,
    config: StressTestConfig | None = None,
    model: CostModel = SIERRA,
    *,
    event_cost: float = 0.8e-6,
    events_per_call: float = 2.0,
) -> float:
    """Figure 9, centralized baseline: one tool node serves all ranks.

    Per-event cost is lower than the distributed implementation's (no
    intralayer protocol, tight central data structures — the paper's
    previous implementation [14]), but total work scales with ``p``.
    """
    config = config or StressTestConfig()
    ref = stress_reference_iteration(p, config, model)
    calls_per_iter = 2.0 + 1.0 / config.barrier_every
    busy = p * calls_per_iter * events_per_call * event_cost
    return max(1.0, busy / ref)


def stress_sweep(
    process_counts: Sequence[int],
    fan_ins: Sequence[int] = (2, 4, 8),
    *,
    centralized_max: int = 512,
    model: CostModel = SIERRA,
) -> Dict[str, List[float]]:
    """The full Figure 9 data set: one series per configuration."""
    result: Dict[str, List[float]] = {"p": list(process_counts)}
    for fan_in in fan_ins:
        result[f"distributed_fanin_{fan_in}"] = [
            stress_distributed_slowdown(p, fan_in, model=model)
            for p in process_counts
        ]
    result["centralized"] = [
        stress_centralized_slowdown(p, model=model)
        if p <= centralized_max
        else float("nan")
        for p in process_counts
    ]
    result["centralized_projected"] = [
        stress_centralized_slowdown(p, model=model) for p in process_counts
    ]
    return result


# ---------------------------------------------------------------------------
# SPEC MPI2007 overhead model (Figure 12)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AppProfile:
    """Communication profile of one SPEC MPI2007 proxy.

    ``call_rate`` is MPI calls per rank per second at the reference
    scale (512 ranks); under strong scaling the per-rank call rate
    grows as ``(p / 512) ** scale_exponent`` while compute shrinks.
    """

    name: str
    call_rate: float
    scale_exponent: float = 0.45
    #: Fraction of calls that are collectives.
    collective_share: float = 0.1
    #: Multiplicative adjustment from the buffered-send interaction:
    #: < 1 models the reproducible "gains" of 137.lu / 142.dmilc
    #: (tool communication drains outstanding buffered sends).
    buffered_send_relief: float = 0.0
    #: The 126.lammps potential send-send deadlock: the run aborts when
    #: the tool detects it (Figure 12 reports time-to-abort).
    potential_deadlock: bool = False
    #: The 128.GAPgeofem case: call rate so high that trace windows
    #: outgrow memory; the tool reports a resource condition.
    window_blowup: bool = False


def spec_slowdown(
    profile: AppProfile,
    p: int,
    fan_in: int = 4,
    model: CostModel = SIERRA,
    *,
    events_per_call: float = 4.0,
    intercept_cost: float = 0.45e-6,
    interference: float = 1.15,
) -> float:
    """Modelled tool slowdown for one application at ``p`` ranks.

    ``u`` is the first-layer node's utilization (tool work per
    application second). Below saturation the application pays the
    interception cost plus interference proportional to ``u`` (blocking
    calls stretched by lagging handshakes, shared-node contention);
    above saturation the bounded event queues gate the application to
    the tool's service rate, so the slowdown equals ``u`` itself.

    ``buffered_send_relief`` models the paper's reproducible "gains"
    for 137.lu / 142.dmilc: the reference run loses time to MPI's
    handling of many outstanding buffered sends, which the tool's
    communication drains (the paper reproduces this by replacing every
    50th MPI_Send with MPI_Ssend) — a multiplicative credit.
    """
    rate = profile.call_rate * (p / 512.0) ** profile.scale_exponent
    # Tool utilization of one first-layer node serving fan_in ranks.
    u = fan_in * rate * (
        events_per_call * model.tool_event_cost
        + (1.0 - profile.collective_share) * 0.5 * model.immediate_msg_cost
    )
    app_side = rate * intercept_cost
    # Interference saturates once the node is fully busy (min(u, 1));
    # beyond that the bounded queues gate the application at the tool's
    # service rate, so the rate-limit term u takes over. The max of the
    # two keeps the curve continuous and monotone across the boundary.
    slowdown = max(
        1.0 + app_side + interference * min(u, 1.0),
        u,
    )
    slowdown *= 1.0 - profile.buffered_send_relief
    return slowdown
