"""Cluster placement model (LLNL Sierra-like).

Sierra nodes have two 6-core Xeon 5660 processors (12 cores) and a QDR
InfiniBand interconnect. Ranks are placed consecutively, 12 per node;
tool processes occupy additional cores/nodes. The placement determines
which communication is intra-node (shared-memory speed) vs inter-node
(network speed) — the effect behind the paper's observation that tool
overhead *decreases* at scale: reference runs shift toward inter-node
communication while tool costs stay constant.
"""
from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Placement:
    """Consecutive rank placement with ``cores_per_node`` per host."""

    cores_per_node: int = 12

    def host_of(self, rank: int) -> int:
        return rank // self.cores_per_node

    def same_host(self, a: int, b: int) -> bool:
        return self.host_of(a) == self.host_of(b)

    def starts_host(self, rank: int) -> bool:
        """True when ``rank`` is the first core of a placement host.

        Shard planning prefers cutting the first tool layer at these
        ranks: a shard boundary that coincides with a host boundary
        keeps intra-host rank communication (the cheap kind) inside
        one shard's address space.
        """
        return rank % self.cores_per_node == 0

    def hosts_for(self, num_ranks: int) -> int:
        return -(-num_ranks // self.cores_per_node)

    def internode_fraction_ring(self, num_ranks: int) -> float:
        """Fraction of ring-neighbour pairs that cross hosts.

        The cyclic-exchange stress test communicates with rank+1 and
        rank-1; with consecutive placement only the pairs straddling a
        host boundary (and the wrap-around pair) are inter-node.
        """
        if num_ranks <= 1:
            return 0.0
        if num_ranks <= self.cores_per_node:
            return 0.0
        boundary_pairs = self.hosts_for(num_ranks)
        return min(1.0, boundary_pairs / num_ranks)
