"""Shared utilities: errors, deterministic RNG helpers."""
from repro.util.errors import (
    CollectiveMismatchError,
    MpiUsageError,
    ProtocolError,
    ReproError,
    ResourceLimitError,
    RuntimeHang,
    TraceError,
)

__all__ = [
    "CollectiveMismatchError",
    "MpiUsageError",
    "ProtocolError",
    "ReproError",
    "ResourceLimitError",
    "RuntimeHang",
    "TraceError",
]
