"""Exception hierarchy of the reproduction library."""
from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class MpiUsageError(ReproError):
    """An application used MPI incorrectly (MUST would report this)."""


class CollectiveMismatchError(MpiUsageError):
    """Mismatched collective operations within one matching wave."""


class TraceError(ReproError):
    """A trace or matched trace is internally inconsistent."""


class ProtocolError(ReproError):
    """A tool-internal protocol invariant was violated (a tool bug)."""


class ResourceLimitError(ReproError):
    """A configured resource limit was exceeded.

    Mirrors the paper's 128.GAPgeofem case, where trace windows exceed
    available main memory: the tool detects and reports the condition
    rather than crashing.
    """


class RuntimeHang(ReproError):
    """The virtual MPI runtime detected that the application hung."""
