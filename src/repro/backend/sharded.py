"""The sharded backend: first-layer nodes across worker processes.

The first tool layer does the heavy lifting of the analysis — p2p
matching, wait-state tracking, the Figure 8 freeze handshake — and its
nodes only talk to each other and to their tree parent. That makes the
layer the natural unit of parallelism: this backend partitions the
first-layer :class:`~repro.core.distributed.FirstLayerNode`s across
``multiprocessing`` workers (one shard = one or more nodes, cut along
:mod:`repro.backend.plan`'s placement-aligned contiguous groups) while
the root and interior nodes — WFG construction, collective matching,
report generation — stay centralized in the coordinator process.

Execution is a bulk-synchronous round loop:

* the coordinator ships each shard the batch of protocol messages
  addressed to its nodes, and every worker delivers them, pumps its
  local queue to quiescence, and replies with the messages it produced
  for other shards or for the tree;
* inside a worker, intra-shard traffic is a plain deque append —
  cross-process hops are paid only on shard boundaries — and outbound
  messages are coalesced into batches that flush on a size limit or at
  the round watermark (the BSP round end, this backend's stand-in for
  a virtual-time watermark);
* batches are built and routed in send order, so the per-(sender,
  receiver) FIFO guarantee the Section 5 protocol needs survives the
  process boundary end to end.

Correctness leans on the protocol's confluence (the terminal
distributed state is independent of message interleaving given FIFO
channels — property-tested in ``tests/property/test_confluence.py``)
and on the deterministic receiver-side matcher: detections run after
global quiescence, so the sharded execution reaches the same verdicts,
wait-for graphs, and blame roots as the inline backend even though no
global virtual clock is replicated. Mid-run detections (``detect_at``)
would need exactly that clock and are rejected.

Cross-process messages travel through the wire codec of
:mod:`repro.mpi.serialize`; observed runs attach a trace context
(:class:`repro.obs.dist.TraceContext`) as the wire tuple's optional
third element. Per-worker metrics and flight-recorder rings are
shipped back at join; tracer events stream back once per BSP round as
``("obs", shard_id, frame)`` replies together with the
:mod:`repro.obs.prof` round records, and the coordinator's
:class:`~repro.obs.dist.TraceMerger` rebases them onto its wall clock
before folding them into the session trace. Observed runs also leave
the ``repro-profile/1`` document on ``backend.last_profile`` for
``repro profile``.
"""
from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend.base import DEFAULT_SHARDS, AnalysisBackend
from repro.backend.plan import describe_plan, plan_shards, shard_of_node
from repro.core.detector import DistributedOutcome
from repro.core.distributed import FirstLayerNode
from repro.core.messages import NewOpMsg, RankDoneMsg
from repro.core.treenodes import InteriorNode, RootNode
from repro.mpi.serialize import (
    decode_message,
    encode_message,
    message_context,
)
from repro.mpi.trace import MatchedTrace
from repro.obs.dist import (
    COORDINATOR_SHARD,
    TraceMerger,
    WorkerObsSpec,
    events_to_wire,
    make_worker_observer,
    next_run_id,
)
from repro.obs.events import PID_COORD
from repro.obs.flight import NULL_FLIGHT_RECORDER, FlightRecorder
from repro.obs.live import LiveMonitor
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.obs.prof import (
    ShardRoundProfiler,
    build_profile,
    row_anchor,
    row_busy_seconds,
    rows_to_records,
    spans_from_records,
)
from repro.perf.placement import Placement
from repro.tbon.network import LatencyModel, Network, jittered_latency
from repro.tbon.topology import TbonTopology
from repro.util.errors import ProtocolError

#: Outbox size at which a worker flushes mid-round.
DEFAULT_FLUSH_LIMIT = 64

#: Seconds to wait on a queue before declaring a worker dead. Rounds
#: are milliseconds of work; this only fires when a worker crashed
#: hard enough to skip its "error" reply.
_QUEUE_TIMEOUT = 120.0

#: BSP rounds a worker batches into one ``("obs", ...)`` stream frame.
#: Each frame costs both sides a queue transfer inside their timed
#: busy windows; batching keeps the distributed tracer inside its <5%
#: overhead bound while the final flush (before the finish payload)
#: bounds the loss on crash to the last few rounds.
_OBS_FLUSH_EVERY = 16

#: A batched wire entry: (src, dst, wire tuple, size). The wire tuple
#: is whatever :func:`encode_message` produced — ``(tag, payload)``
#: bare or ``(tag, payload, context)`` when distributed tracing rides
#: along.
_WireEntry = Tuple[int, int, tuple, int]


def _mp_context():
    """Fork when the platform has it (cheap, shares the trace pages);
    the worker protocol is spawn-compatible — specs and wire entries
    are plain picklable data — so spawn-only platforms work too."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context("spawn")


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


@dataclass
class _ShardSpec:
    """Everything a worker needs to rebuild its slice of the tool."""

    shard_id: int
    node_ids: Tuple[int, ...]
    matched: MatchedTrace
    num_ranks: int
    fan_in: int
    window_limit: int
    flush_limit: int
    #: Observer settings the worker honors (session ``--obs`` plumbed
    #: through; the disabled spec keeps NULL_OBSERVER's zero cost).
    obs: WorkerObsSpec
    #: Ring capacity for the worker's flight recorder; 0 disables it.
    flight_capacity: int


class ShardNetwork:
    """The :class:`~repro.tbon.network.Transport` of one shard worker.

    Satisfies the same contract the simulated ``Network`` gives node
    handlers — FIFO ``send``, monotonic ``now``, an observer — but
    delivers differently: messages for nodes in this shard go onto a
    local deque (drained by :meth:`pump`), everything else is encoded
    into the outbox and flushed to the coordinator in ordered batches.
    ``now`` is a per-worker delivery counter; it orders this worker's
    flight/trace events but is not a global clock.
    """

    def __init__(
        self,
        local_nodes: Dict[int, FirstLayerNode],
        emit,
        observer: Observer,
        flush_limit: int = DEFAULT_FLUSH_LIMIT,
        prof: Optional[ShardRoundProfiler] = None,
        run_id: int = 0,
    ) -> None:
        self.obs = observer
        self._local = local_nodes
        self._emit = emit
        self._flush_limit = max(1, flush_limit)
        self._prof = prof
        self._run_id = run_id
        self._queue: deque = deque()
        self._outbox: List[_WireEntry] = []
        self._now = 0.0
        self.messages_sent = 0
        self.bytes_sent = 0
        self.flushes = 0
        self.peak_queue = 0

    @property
    def now(self) -> float:
        return self._now

    def send(self, src: int, dst: int, msg: object, size: int = 64) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        if dst in self._local:
            self._queue.append((src, dst, msg))
            if len(self._queue) > self.peak_queue:
                self.peak_queue = len(self._queue)
            return
        prof = self._prof
        if prof is not None:
            t0 = time.perf_counter()
            wire = encode_message(msg, prof.wire_context(self._run_id))
            prof.note_out(time.perf_counter() - t0, size)
        else:
            wire = encode_message(msg)
        self._outbox.append((src, dst, wire, size))
        if len(self._outbox) >= self._flush_limit:
            self.flush()

    def deliver(self, src: int, dst: int, msg: object) -> None:
        """Queue an inbound (already-sent) message; no send accounting."""
        if dst not in self._local:
            raise ProtocolError(f"message for node {dst} routed to wrong shard")
        self._queue.append((src, dst, msg))
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)

    def flush(self) -> None:
        """Release the coalesced outbox (size limit or round watermark)."""
        if self._outbox:
            self._emit(self._outbox)
            self._outbox = []
            self.flushes += 1

    def pump(self) -> None:
        """Drain the local queue, handling each message in FIFO order."""
        q = self._queue
        while q:
            src, dst, msg = q.popleft()
            self._now += 1e-6
            self._local[dst].handle(msg, self, src)


def _inject_app_events(
    spec: _ShardSpec, topology: TbonTopology, net: ShardNetwork
) -> None:
    """Stream the hosted ranks' traces into the shard's nodes.

    Rank-major order differs from the inline backend's seeded
    interleaving; the protocol's confluence makes the terminal state
    (and hence every detection) identical regardless. Injection goes
    through ``send`` so the rank-to-tool hop is counted, as it is on
    the inline network.
    """
    trace = spec.matched.trace
    for node_id in spec.node_ids:
        for rank in topology.ranks_of_host(node_id):
            for op in trace.sequence(rank):
                net.send(rank, node_id, NewOpMsg(op), NewOpMsg.wire_size)
            net.send(rank, node_id, RankDoneMsg(rank), RankDoneMsg.wire_size)


def _flush_obs(spec: _ShardSpec, observer, prof, res_q) -> None:
    """Stream the pending observability frame to the coordinator.

    Everything on the frame is kept in its cheapest-to-pickle form
    (packed event columns, flat profiler rows): the worker's queue
    feeder thread and the coordinator's reply loop both sit inside the
    busy-time accounting the <5% tracing bound is scored on.
    """
    rows = prof.take_rows()
    res_q.put(
        ("obs", spec.shard_id, {
            "events": events_to_wire(observer.tracer.drain()),
            "rows": rows,
            "rounds": [row_anchor(row) for row in rows],
            "dropped": observer.tracer.dropped,
        })
    )


def _shard_worker(spec: _ShardSpec, cmd_q, res_q) -> None:
    """Worker entry point: host ``spec.node_ids`` until told to stop.

    Commands: ``("run", batch)`` — deliver, pump to quiescence, flush,
    reply ``("done", shard_id, stats)`` (partial flushes emit
    ``("msgs", shard_id, batch)`` first, and observed runs an
    ``("obs", shard_id, frame)`` stream frame every
    ``_OBS_FLUSH_EVERY`` rounds plus a final one before the finish
    payload — per-round frames would double the coordinator's reply
    traffic, and that receive/unpickle cost lands in the busy-time
    accounting the <5% tracing bound is scored on); ``("flight",
    ranks)`` — reply the flight tails; ``("finish",)`` — reply the
    final state payload; ``("stop",)`` — exit.
    """
    try:
        topology = TbonTopology.build(spec.num_ranks, spec.fan_in)
        observer = make_worker_observer(spec.obs)
        # run_id == 0 means the coordinator did not start a distributed
        # trace (observability off, or distributed_tracing disabled):
        # the worker still observes locally but stays dark on the wire.
        prof = (
            ShardRoundProfiler(spec.shard_id, observer)
            if observer.enabled and spec.obs.run_id
            else None
        )
        flight = (
            FlightRecorder(spec.flight_capacity)
            if spec.flight_capacity > 0
            else NULL_FLIGHT_RECORDER
        )
        local: Dict[int, FirstLayerNode] = {}
        net = ShardNetwork(
            local,
            emit=lambda batch: res_q.put(("msgs", spec.shard_id, batch)),
            observer=observer,
            flush_limit=spec.flush_limit,
            prof=prof,
            run_id=spec.obs.run_id,
        )
        for node_id in spec.node_ids:
            local[node_id] = FirstLayerNode(
                node_id,
                topology,
                spec.matched.comms,
                window_limit=spec.window_limit,
                flight=flight,
            )
        busy = 0.0
        started = False
        round_no = 0
        while True:
            cmd = cmd_q.get()
            kind = cmd[0]
            if kind == "run":
                # CPU time, not wall: concurrent shards time-slicing a
                # core must not count each other's work as their own.
                t0 = time.process_time()
                if prof is None:
                    if not started:
                        started = True
                        _inject_app_events(spec, topology, net)
                    for src, dst, wire, _size in cmd[1]:
                        net.deliver(src, dst, decode_message(wire))
                    net.pump()
                    net.flush()
                    busy += time.process_time() - t0
                else:
                    round_no += 1
                    prof.begin_round(round_no)
                    prof.begin_section("decode")
                    inbound = [
                        (src, dst, decode_message(wire),
                         message_context(wire), size)
                        for src, dst, wire, size in cmd[1]
                    ]
                    prof.end_section()
                    prof.begin_section("recv")
                    for src, dst, msg, ctx, size in inbound:
                        net.deliver(src, dst, msg)
                        prof.note_in(ctx, size)
                    prof.end_section()
                    prof.begin_section("step")
                    if not started:
                        started = True
                        _inject_app_events(spec, topology, net)
                    net.pump()
                    prof.end_section()
                    prof.begin_section("flush")
                    net.flush()
                    prof.end_section()
                    prof.end_round()
                    busy += time.process_time() - t0
                    if round_no % _OBS_FLUSH_EVERY == 0:
                        _flush_obs(spec, observer, prof, res_q)
                res_q.put(("done", spec.shard_id))
            elif kind == "flight":
                res_q.put(("flight", spec.shard_id, flight.snapshot(cmd[1])))
            elif kind == "finish":
                if prof is not None:
                    _flush_obs(spec, observer, prof, res_q)
                res_q.put(
                    ("finish", spec.shard_id, _finish_payload(
                        spec, local, net, observer, busy
                    ))
                )
            elif kind == "stop":
                return
            else:
                raise ProtocolError(f"unknown shard command {kind!r}")
    except Exception:  # pragma: no cover - crash path
        res_q.put(("error", spec.shard_id, traceback.format_exc()))


def _finish_payload(
    spec: _ShardSpec,
    local: Dict[int, FirstLayerNode],
    net: ShardNetwork,
    observer: Observer,
    busy: float,
) -> Dict[str, Any]:
    state: Dict[int, int] = {}
    peak = 0
    node_stats: Dict[int, Dict[str, int]] = {}
    for node in local.values():
        state.update(node.state_vector())
        peak = max(peak, node.peak_window_size())
        node_stats[node.node_id] = dict(node.stats)
    if observer.enabled:
        sid = spec.shard_id
        metrics = observer.metrics
        metrics.set_gauge(f"backend.shard{sid}.queue_depth", net.peak_queue)
        metrics.set_gauge(
            f"backend.shard{sid}.pending_receives",
            sum(n.matcher.stats()["pending_receives"] for n in local.values()),
        )
        metrics.set_gauge(
            f"backend.shard{sid}.stored_sends",
            sum(n.matcher.stats()["stored_sends"] for n in local.values()),
        )
        metrics.inc(f"backend.shard{sid}.outbox_flushes", net.flushes)
    return {
        "state": state,
        "peak": peak,
        "node_stats": node_stats,
        "messages_sent": net.messages_sent,
        "bytes_sent": net.bytes_sent,
        "busy_seconds": busy,
        "metrics": observer.metrics.dump_state() if observer.enabled else None,
        # Residual events recorded after the last round's stream frame
        # (normally empty — rounds drain the tracer); they ride the
        # merger so clock rebasing applies to them too.
        "events": (
            events_to_wire(observer.tracer.drain())
            if observer.enabled
            else None
        ),
        "dropped": observer.tracer.dropped if observer.enabled else 0,
    }


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class _ShardProxy:
    """Coordinator-side stand-in for a first-layer node.

    Attached to the coordinator network under the real node id, so the
    root's broadcasts and the interiors' relays need no special casing:
    whatever reaches the proxy is encoded into the owning shard's
    pending batch and shipped next round.
    """

    __slots__ = ("node_id", "_pending", "_context")

    def __init__(
        self,
        node_id: int,
        pending: List[_WireEntry],
        context=None,
    ) -> None:
        self.node_id = node_id
        self._pending = pending
        self._context = context

    def handle(self, msg: object, net, src: int) -> None:
        ctx = self._context() if self._context is not None else None
        wire = encode_message(msg, ctx)
        self._pending.append(
            (src, self.node_id, wire, getattr(msg, "wire_size", 64))
        )


class _FlightGather:
    """The root's flight handle when the rings live in the workers.

    Only the snapshot path is needed — first-layer nodes record into
    their worker-local rings, the root merely embeds tails into
    reports. Snapshotting does synchronous per-shard round trips, which
    is safe because the root builds reports between rounds, when every
    worker is idle-blocked on its command queue.
    """

    enabled = True

    def __init__(self, run: "_ShardedRun") -> None:
        self._run = run

    def snapshot(self, ranks: Sequence[int]) -> Dict[int, List[dict]]:
        return self._run.gather_flight(ranks)


class _ShardedRun:
    """One sharded analysis: workers, round loop, outcome assembly."""

    def __init__(
        self,
        backend: "ShardedBackend",
        matched: MatchedTrace,
        *,
        fan_in: int,
        seed: int,
        window_limit: int,
        generate_outputs: bool,
        observer: Observer,
        flight: FlightRecorder,
        latency_model: Optional[LatencyModel],
        detect_at_end: bool,
        live: Optional[LiveMonitor] = None,
    ) -> None:
        self.backend = backend
        self.matched = matched
        self.observer = observer
        self.flight = flight
        self.live = live
        #: Cumulative per-shard busy seconds folded from streamed
        #: profiler rows (live skew attribution; empty when the
        #: distributed tracer is off — skew then reports None).
        self._live_busy: Dict[int, float] = {}
        self.detect_at_end = detect_at_end
        self.fan_in = fan_in
        self.window_limit = window_limit
        p = matched.trace.num_processes
        self.topology = TbonTopology.build(p, fan_in)
        self.plan = plan_shards(
            self.topology, backend.shards, backend.placement
        )
        self.shard_of = shard_of_node(self.plan)
        self.num_shards = len(self.plan)
        self.net = Network(
            latency_model or jittered_latency(seed), observer=observer
        )
        flight_proxy = (
            _FlightGather(self) if flight.enabled else NULL_FLIGHT_RECORDER
        )
        self.root = RootNode(
            self.topology.root,
            self.topology,
            matched.comms,
            generate_outputs=generate_outputs,
            flight=flight_proxy,
        )
        self.net.attach(self.root)
        for layer in self.topology.layers[2:-1]:
            for node_id in layer:
                self.net.attach(
                    InteriorNode(node_id, self.topology, matched.comms)
                )
        #: Per-shard batches awaiting the next round. The lists are
        #: shared with the proxies and must stay identity-stable.
        self.pending: List[List[_WireEntry]] = [
            [] for _ in range(self.num_shards)
        ]
        # Distributed-tracing state: coordinator-origin messages carry
        # a trace context (shard COORDINATOR_SHARD, the round they will
        # ship in) and worker event frames fold through the merger.
        if observer.enabled and backend.distributed_tracing:
            self.run_id = next_run_id()
            self.merger: Optional[TraceMerger] = TraceMerger()
            self.round_rows: Dict[int, List[list]] = {}
            self.coord_rounds: List[Dict[str, Any]] = []
            context = lambda: (  # noqa: E731 - tiny closure over self
                self.run_id, COORDINATOR_SHARD, self.rounds + 1, 0
            )
        else:
            self.run_id = 0
            self.merger = None
            self.round_rows = {}
            self.coord_rounds = []
            context = None
        self._round_route_s = 0.0
        for node_id in self.topology.first_layer:
            self.net.attach(
                _ShardProxy(
                    node_id, self.pending[self.shard_of[node_id]], context
                )
            )
        self.relayed = 0
        self.relayed_bytes = 0
        self.cross_shard = 0
        self.rounds = 0
        self.blocked_seconds = 0.0
        self._cmd_qs: List[Any] = []
        self._res_q: Any = None
        self._procs: List[Any] = []

    # -- worker lifecycle ------------------------------------------------

    def _start_workers(self) -> None:
        ctx = _mp_context()
        self._res_q = ctx.Queue()
        for sid, node_ids in enumerate(self.plan):
            spec = _ShardSpec(
                shard_id=sid,
                node_ids=node_ids,
                matched=self.matched,
                num_ranks=self.topology.num_ranks,
                fan_in=self.fan_in,
                window_limit=self.window_limit,
                flush_limit=self.backend.flush_limit,
                obs=WorkerObsSpec.from_observer(self.observer, self.run_id),
                flight_capacity=(
                    self.flight.capacity if self.flight.enabled else 0
                ),
            )
            cmd_q = ctx.Queue()
            proc = ctx.Process(
                target=_shard_worker,
                args=(spec, cmd_q, self._res_q),
                daemon=True,
            )
            proc.start()
            self._cmd_qs.append(cmd_q)
            self._procs.append(proc)

    def _stop_workers(self) -> None:
        for cmd_q in self._cmd_qs:
            try:
                cmd_q.put(("stop",))
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=10)

    def _reply(self) -> tuple:
        """Next worker reply; queue-blocked time is tracked separately
        so the coordinator's own busy time can be reported."""
        t0 = time.perf_counter()
        try:
            reply = self._res_q.get(timeout=_QUEUE_TIMEOUT)
        except queue_mod.Empty:  # pragma: no cover - dead worker
            raise ProtocolError("shard worker unresponsive") from None
        self.blocked_seconds += time.perf_counter() - t0
        if reply[0] == "error":
            raise ProtocolError(f"shard {reply[1]} failed:\n{reply[2]}")
        return reply

    # -- the BSP round loop ----------------------------------------------

    def _exchange_round(self) -> None:
        """Ship pending batches, collect every shard's output, route it."""
        self.rounds += 1
        merger = self.merger
        if merger is not None:
            span_start = self.observer.tracer.now_us()
            self._round_route_s = 0.0
        for sid, cmd_q in enumerate(self._cmd_qs):
            batch = list(self.pending[sid])
            self.pending[sid].clear()
            if merger is not None:
                # Clock anchor: the send stamp pairs with the worker's
                # round-start stamp to estimate the per-shard offset.
                # span_start serves for every shard: the puts are
                # microseconds apart and the median over rounds eats
                # the residual.
                merger.note_round_sent(sid, self.rounds, span_start)
            cmd_q.put(("run", batch))
        done = 0
        while done < self.num_shards:
            reply = self._reply()
            if reply[0] == "msgs":
                self._route(reply[2])
            elif reply[0] == "obs":
                self._absorb_obs(reply[1], reply[2])
            elif reply[0] == "done":
                done += 1
            else:
                raise ProtocolError(f"unexpected shard reply {reply[0]!r}")
        if merger is not None:
            end = self.observer.tracer.now_us()
            self.observer.tracer.complete(
                "round %d" % self.rounds,
                cat="coord.round",
                ts=span_start,
                dur=max(end - span_start, 0.0),
                pid=PID_COORD,
                tid=0,
                args={"round": self.rounds},
            )
            self.coord_rounds.append(
                {
                    "round": self.rounds,
                    "span_s": (end - span_start) / 1e6,
                    "route_s": self._round_route_s,
                }
            )
        live = self.live
        if live is not None and self.rounds % live.every_rounds == 0:
            live.tick_backend(self._live_sample())

    def _live_sample(self) -> Dict[str, Any]:
        """Coordinator-side backend progress for one live window.

        Skew is the slowest shard's cumulative busy time over the mean
        (from the streamed profiler rows); ``pending`` is the batch
        depth already routed toward each shard for the next round —
        the backpressure signal."""
        busy = self._live_busy
        skew: Optional[float] = None
        if busy:
            values = list(busy.values())
            mean = sum(values) / len(values)
            if mean > 0.0:
                skew = max(values) / mean
        return {
            "round": self.rounds,
            "shards": self.num_shards,
            "pending": [len(batch) for batch in self.pending],
            "cross_shard": self.cross_shard,
            "busy_by_shard": {
                str(sid): seconds for sid, seconds in sorted(busy.items())
            },
            "skew": skew,
        }

    def _absorb_obs(self, shard_id: int, frame: Dict[str, Any]) -> None:
        """Fold one worker obs frame: merger (events, clock anchors,
        drop counts) plus the raw profiler rows the profile doc needs
        (materialized into records in ``_assemble``, off the timed
        reply loop)."""
        assert self.merger is not None
        self.merger.add_frame(shard_id, frame)
        rows = frame.get("rows") or ()
        if rows:
            self.round_rows.setdefault(shard_id, []).extend(rows)
            if self.live is not None:
                self._live_busy[shard_id] = self._live_busy.get(
                    shard_id, 0.0
                ) + sum(row_busy_seconds(row) for row in rows)

    def _route(self, batch: List[_WireEntry]) -> None:
        """Route one worker batch, preserving its (send) order.

        First-layer destinations go to the owning shard's pending
        batch; tree destinations are decoded and re-sent on the
        coordinator network (those re-sends are subtracted from the
        totals — the worker already counted them).
        """
        obs_on = self.merger is not None
        t0 = time.perf_counter() if obs_on else 0.0
        for entry in batch:
            src, dst, wire, size = entry
            if self.topology.is_first_layer(dst):
                # Forwarded verbatim: the wire tuple keeps its original
                # trace context, so the receiving shard attributes the
                # message to the shard that produced it.
                self.pending[self.shard_of[dst]].append(entry)
                self.cross_shard += 1
            else:
                self.net.send(src, dst, decode_message(wire), size)
                self.relayed += 1
                self.relayed_bytes += size
        if obs_on:
            self._round_route_s += time.perf_counter() - t0

    def _settle(self) -> None:
        """Alternate coordinator processing and shard rounds until no
        messages remain anywhere."""
        while True:
            self.net.run()
            if not any(self.pending):
                return
            self._exchange_round()

    def gather_flight(self, ranks: Sequence[int]) -> Dict[int, List[dict]]:
        by_shard: Dict[int, List[int]] = {}
        for rank in ranks:
            node = self.topology.host_of_rank(rank)
            by_shard.setdefault(self.shard_of[node], []).append(rank)
        for sid, shard_ranks in by_shard.items():
            self._cmd_qs[sid].put(("flight", tuple(shard_ranks)))
        tails: Dict[int, List[dict]] = {}
        for _ in range(len(by_shard)):
            reply = self._reply()
            if reply[0] != "flight":  # pragma: no cover - protocol bug
                raise ProtocolError(f"unexpected shard reply {reply[0]!r}")
            tails.update(reply[2])
        return {rank: tails.get(rank, []) for rank in ranks}

    # -- driving ---------------------------------------------------------

    def execute(self) -> DistributedOutcome:
        wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self._start_workers()
        try:
            # Kick-off round: batches are empty, but the first "run"
            # makes every worker inject and pump its ranks' traces.
            self._exchange_round()
            self._settle()
            if self.detect_at_end:
                self.root.start_detection(self.net)
                self._settle()
            if not self.net.idle() or any(self.pending):
                raise ProtocolError("sharded analysis did not quiesce")
            for record in self.root.completed_detections:
                if not record.complete:
                    raise ProtocolError(
                        f"detection {record.detection_id} incomplete"
                    )
            payloads = self._collect_payloads()
        finally:
            self._stop_workers()
        return self._assemble(payloads, wall0)

    def _collect_payloads(self) -> Dict[int, Dict[str, Any]]:
        for cmd_q in self._cmd_qs:
            cmd_q.put(("finish",))
        payloads: Dict[int, Dict[str, Any]] = {}
        while len(payloads) < self.num_shards:
            reply = self._reply()
            if reply[0] == "obs":
                # The worker's final stream-frame flush precedes its
                # finish payload.
                self._absorb_obs(reply[1], reply[2])
                continue
            if reply[0] != "finish":  # pragma: no cover - protocol bug
                raise ProtocolError(f"unexpected shard reply {reply[0]!r}")
            payloads[reply[1]] = reply[2]
        return payloads

    def _assemble(
        self, payloads: Dict[int, Dict[str, Any]], wall0: float
    ) -> DistributedOutcome:
        state = [0] * self.topology.num_ranks
        peak = 0
        node_stats: Dict[int, Dict[str, int]] = {}
        worker_msgs = 0
        worker_bytes = 0
        shard_busy: List[float] = []
        for sid in range(self.num_shards):
            payload = payloads[sid]
            for rank, level in payload["state"].items():
                state[rank] = level
            peak = max(peak, payload["peak"])
            node_stats.update(payload["node_stats"])
            worker_msgs += payload["messages_sent"]
            worker_bytes += payload["bytes_sent"]
            shard_busy.append(payload["busy_seconds"])
            if self.observer.enabled and payload["metrics"]:
                self.observer.metrics.merge_state(payload["metrics"])
            if self.merger is not None:
                # Residual events and the final drop count ride the
                # merger so they get the same clock rebasing as the
                # streamed frames.
                if payload["events"] is not None or payload.get("dropped"):
                    self.merger.add_frame(
                        sid,
                        {
                            "events": payload["events"],
                            "dropped": payload.get("dropped", 0),
                        },
                    )
        node_stats[self.root.node_id] = dict(self.root.stats)
        wall = time.perf_counter() - wall0
        # CPU time for the same reason as in the workers: on a machine
        # with fewer free cores than shards the coordinator's wall
        # minus queue-blocked time still absorbs time-sliced worker
        # work, while its own CPU seconds do not.
        coordinator_busy = time.process_time() - self._cpu0
        self.backend.last_timing = {
            "shards": self.num_shards,
            "rounds": self.rounds,
            "wall_seconds": wall,
            "coordinator_busy_seconds": coordinator_busy,
            "shard_busy_seconds": shard_busy,
            # Per-core critical path: the coordinator plus the slowest
            # shard. On a machine with >= shards+1 free cores this is
            # the detection latency; on fewer cores the wall clock
            # degrades towards the busy-time sum but the model holds.
            "modeled_latency_seconds": coordinator_busy + max(
                shard_busy, default=0.0
            ),
            "cross_shard_messages": self.cross_shard,
        }
        if self.observer.enabled:
            metrics = self.observer.metrics
            metrics.set_gauge("backend.shards", self.num_shards)
            metrics.set_gauge("backend.rounds", self.rounds)
            metrics.inc("backend.cross_shard_msgs", self.cross_shard)
            metrics.inc("backend.relayed_msgs", self.relayed)
            metrics.set_gauge("tbon.peak_window", peak)
            for sid, busy in enumerate(shard_busy):
                metrics.set_gauge(f"backend.shard{sid}.busy_seconds", busy)
        if self.merger is not None:
            offsets = self.merger.merge_into(self.observer)
            round_records = {
                sid: rows_to_records(sid, rows)
                for sid, rows in sorted(self.round_rows.items())
            }
            # The workers never emit round/section spans (that would
            # put trace-event construction on the scored busy path);
            # rebuild them here from the streamed records, clock-rebased
            # like the workers' own events.
            for sid, records in round_records.items():
                self.observer.tracer.absorb(
                    spans_from_records(sid, records, offsets.get(sid, 0.0))
                )
            profile = build_profile(
                round_records=round_records,
                coord_rounds=self.coord_rounds,
                plan=describe_plan(self.topology, self.plan),
                timing=self.backend.last_timing,
                ranks=self.topology.num_ranks,
                fan_in=self.fan_in,
                dropped=self.merger.dropped,
                events=self.merger.event_counts(),
                observer=self.observer,
            )
            profile["clock_offsets_us"] = {
                str(sid): offset for sid, offset in sorted(offsets.items())
            }
            self.backend.last_profile = profile
        else:
            self.backend.last_profile = None
        if self.live is not None:
            # Terminal backend snapshot: the final round count and the
            # settled (empty) pending depths reach the feed even when
            # the run ends between cadence ticks.
            self.live.tick_backend(self._live_sample())
        return DistributedOutcome(
            topology=self.topology,
            stable_state=tuple(state),
            detections=list(self.root.completed_detections),
            messages_sent=worker_msgs + self.net.messages_sent - self.relayed,
            bytes_sent=worker_bytes + self.net.bytes_sent - self.relayed_bytes,
            simulated_seconds=self.net.now,
            peak_window=peak,
            node_stats=node_stats,
        )


class ShardedBackend(AnalysisBackend):
    """Partition the first layer across worker processes.

    ``shards`` is clamped to the number of first-layer nodes;
    ``flush_limit`` bounds how many outbound messages a worker coalesces
    before flushing mid-round; ``placement`` aligns shard cuts with the
    modeled cluster layout (defaults to :class:`Placement()`).
    ``distributed_tracing`` (default on) controls the cross-shard trace
    machinery of observed runs: context propagation on the wire, the
    per-worker round profiler, per-round ``("obs", ...)`` frames, and
    the coordinator-side merge. With it off, observed workers still
    record locally (metrics merge at join, as before PR 7) but their
    trace events stay dark — the knob exists so the overhead benchmark
    can price the distributed machinery itself, and as an escape hatch
    if a workload ever trips on it.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = DEFAULT_SHARDS,
        *,
        flush_limit: int = DEFAULT_FLUSH_LIMIT,
        placement: Optional[Placement] = None,
        distributed_tracing: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.flush_limit = flush_limit
        self.placement = placement
        self.distributed_tracing = distributed_tracing
        #: Timing of the most recent run (set by :meth:`run`); the
        #: shard-scaling benchmark reads this.
        self.last_timing: Optional[Dict[str, Any]] = None

    def describe(self) -> str:
        return f"sharded(shards={self.shards})"

    def run(
        self,
        matched: MatchedTrace,
        *,
        fan_in: int = 4,
        seed: int = 0,
        window_limit: int = 1_000_000,
        generate_outputs: bool = True,
        observer: Optional[Observer] = None,
        flight: Optional[FlightRecorder] = None,
        latency_model: Optional[LatencyModel] = None,
        detect_at: Sequence[float] = (),
        detect_at_end: bool = True,
        live: Optional[LiveMonitor] = None,
    ) -> DistributedOutcome:
        if detect_at:
            raise ValueError(
                "the sharded backend has no global virtual clock; mid-run "
                "detections (detect_at) need the inline backend"
            )
        run = _ShardedRun(
            self,
            matched,
            fan_in=fan_in,
            seed=seed,
            window_limit=window_limit,
            generate_outputs=generate_outputs,
            observer=observer if observer is not None else NULL_OBSERVER,
            flight=flight if flight is not None else FlightRecorder(),
            latency_model=latency_model,
            detect_at_end=detect_at_end,
            live=live,
        )
        return run.execute()
