"""Pluggable execution backends for the distributed analysis.

:func:`make_backend` maps the CLI/config names to implementations:
``inline`` (single-process simulated network, the default) and
``sharded`` (first-layer nodes across ``multiprocessing`` workers).
Both produce identical verdicts, wait-for graphs, and blame roots —
see :mod:`repro.backend.sharded` for why.
"""
from repro.backend.base import (
    DEFAULT_SHARDS,
    AnalysisBackend,
    InlineBackend,
    make_backend,
)
from repro.backend.plan import plan_shards, shard_of_node
from repro.backend.sharded import ShardedBackend

__all__ = [
    "AnalysisBackend",
    "DEFAULT_SHARDS",
    "InlineBackend",
    "ShardedBackend",
    "make_backend",
    "plan_shards",
    "shard_of_node",
]
