"""Execution backends for the distributed analysis.

A backend takes a matched trace and produces a
:class:`~repro.core.detector.DistributedOutcome` by running the
first-layer wait-state trackers, the TBON aggregation layers, and the
Section 5 detection protocol. Two implementations exist:

* :class:`InlineBackend` — everything on one deterministic simulated
  network in the calling process (the default; byte-for-byte the
  behaviour of :class:`repro.core.detector.DistributedDeadlockDetector`);
* :class:`~repro.backend.sharded.ShardedBackend` — first-layer nodes
  partitioned across ``multiprocessing`` workers, exchanging batched
  protocol messages, with WFG construction still centralized at the
  coordinator's root node.

Both yield identical verdicts, wait-for graphs, and blame roots for
the same trace (pinned by ``tests/property/test_backend_equivalence``);
they differ only in wall-clock behaviour and in which clock stamps the
observability events.
"""
from __future__ import annotations

from typing import Optional, Sequence

from repro.core.detector import (
    DistributedDeadlockDetector,
    DistributedOutcome,
)
from repro.mpi.trace import MatchedTrace
from repro.obs.flight import FlightRecorder
from repro.obs.live import LiveMonitor
from repro.obs.observer import Observer
from repro.tbon.network import LatencyModel

#: Default shard count for the sharded backend.
DEFAULT_SHARDS = 2


class AnalysisBackend:
    """Common interface of the analysis execution backends."""

    name = "abstract"

    #: The ``repro-profile/1`` document of the last observed run, when
    #: the backend profiles itself (the sharded backend populates this
    #: on every run with an enabled observer; inline runs leave None).
    last_profile: Optional[dict] = None

    def run(
        self,
        matched: MatchedTrace,
        *,
        fan_in: int = 4,
        seed: int = 0,
        window_limit: int = 1_000_000,
        generate_outputs: bool = True,
        observer: Optional[Observer] = None,
        flight: Optional[FlightRecorder] = None,
        latency_model: Optional[LatencyModel] = None,
        detect_at: Sequence[float] = (),
        detect_at_end: bool = True,
        live: Optional[LiveMonitor] = None,
    ) -> DistributedOutcome:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    def close(self) -> None:
        """Release resources held across runs (idempotent).

        Both built-in backends start and join their workers inside
        :meth:`run`, so this is a no-op for them; long-lived holders
        (the ``repro serve`` worker pool, ``Session.close``) still
        call it on teardown so backends with persistent state get a
        shutdown point.
        """
        return None


class InlineBackend(AnalysisBackend):
    """The single-process simulated-network backend (default)."""

    name = "inline"

    def run(
        self,
        matched: MatchedTrace,
        *,
        fan_in: int = 4,
        seed: int = 0,
        window_limit: int = 1_000_000,
        generate_outputs: bool = True,
        observer: Optional[Observer] = None,
        flight: Optional[FlightRecorder] = None,
        latency_model: Optional[LatencyModel] = None,
        detect_at: Sequence[float] = (),
        detect_at_end: bool = True,
        live: Optional[LiveMonitor] = None,
    ) -> DistributedOutcome:
        detector = DistributedDeadlockDetector(
            matched,
            fan_in=fan_in,
            seed=seed,
            latency_model=latency_model,
            window_limit=window_limit,
            generate_outputs=generate_outputs,
            observer=observer,
            flight=flight,
        )
        outcome = detector.run(
            detect_at=detect_at, detect_at_end=detect_at_end
        )
        if live is not None:
            # The inline backend has no BSP rounds: one snapshot after
            # the detector run keeps the feed's backend phase populated.
            live.tick_backend(
                {"round": 0, "shards": 1, "pending": [], "skew": None}
            )
        return outcome


def make_backend(
    name: str, *, shards: int = DEFAULT_SHARDS
) -> AnalysisBackend:
    """Backend factory keyed by CLI/config name."""
    if name == "inline":
        return InlineBackend()
    if name == "sharded":
        from repro.backend.sharded import ShardedBackend

        return ShardedBackend(shards=shards)
    raise ValueError(
        f"unknown analysis backend {name!r} (choose 'inline' or 'sharded')"
    )
