"""Shard planning: partition the first tool layer across workers.

A shard is a set of first-layer TBON nodes that one worker process
owns. Two constraints shape the partition:

* **Contiguity.** First-layer nodes host contiguous rank blocks, and
  most wait-state traffic (``passSend`` / ``recvActive`` /
  ``recvActiveAck``) flows between neighbouring ranks; contiguous
  shards keep that traffic inside one worker where delivery is a local
  deque append instead of a cross-process hop.
* **Placement alignment.** The cluster model
  (:class:`repro.perf.placement.Placement`) places ranks consecutively,
  ``cores_per_node`` per host. When a shard cut can fall on a host
  boundary at no balance cost, it should: rank pairs that share a
  physical host communicate the most, so a host split across shards
  maximizes cross-process messages for the hottest channels.

The planner is deterministic: same topology, shard count, and
placement always yield the same partition (the backend-equivalence
property suite relies on this).
"""
from __future__ import annotations

from typing import List, Optional, Tuple

from repro.perf.placement import Placement
from repro.tbon.topology import TbonTopology

#: How far (in first-layer nodes) a cut may move from its balanced
#: position to snap onto a placement host boundary.
_SNAP_WINDOW = 2


def plan_shards(
    topology: TbonTopology,
    shards: int,
    placement: Optional[Placement] = None,
) -> Tuple[Tuple[int, ...], ...]:
    """Partition ``topology.first_layer`` into ``shards`` node groups.

    Returns one tuple of first-layer node ids per shard, in node
    order. ``shards`` is clamped to the number of first-layer nodes
    (a shard must own at least one node); values below one raise.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    nodes = topology.first_layer
    shards = min(shards, len(nodes))
    if shards == 1:
        return (tuple(nodes),)
    placement = placement or Placement()
    cuts = _plan_cuts(topology, nodes, shards, placement)
    groups: List[Tuple[int, ...]] = []
    prev = 0
    for cut in cuts + [len(nodes)]:
        groups.append(tuple(nodes[prev:cut]))
        prev = cut
    return tuple(groups)


def _plan_cuts(
    topology: TbonTopology,
    nodes: Tuple[int, ...],
    shards: int,
    placement: Placement,
) -> List[int]:
    """Cut indices into ``nodes`` (exclusive ends of each shard)."""
    n = len(nodes)
    cuts: List[int] = []
    prev = 0
    for s in range(1, shards):
        ideal = round(s * n / shards)
        # Keep every shard non-empty: strictly after the previous cut,
        # and leave one node for each remaining shard.
        lo = max(prev + 1, ideal - _SNAP_WINDOW)
        hi = min(n - (shards - s), ideal + _SNAP_WINDOW)
        best = min(max(ideal, lo), hi)
        for cand in sorted(range(lo, hi + 1), key=lambda i: abs(i - ideal)):
            first_rank = topology.ranks_of_host(nodes[cand])[0]
            if placement.starts_host(first_rank):
                best = cand
                break
        cuts.append(best)
        prev = best
    return cuts


def shard_of_node(
    plan: Tuple[Tuple[int, ...], ...]
) -> dict:
    """Inverse lookup: first-layer node id -> shard index."""
    return {
        node: shard for shard, group in enumerate(plan) for node in group
    }


def describe_plan(
    topology: TbonTopology,
    plan: Tuple[Tuple[int, ...], ...],
) -> List[dict]:
    """A JSON-ready description of a shard plan (one dict per shard).

    Embedded in the ``repro-profile/1`` document so profile readers can
    map shard ids back to the rank ranges they own without
    reconstructing the planner's placement snapping.
    """
    out: List[dict] = []
    for shard, group in enumerate(plan):
        ranks = [r for node in group for r in topology.ranks_of_host(node)]
        out.append(
            {
                "shard": shard,
                "nodes": list(group),
                "ranks": [min(ranks), max(ranks)] if ranks else [],
                "num_ranks": len(ranks),
            }
        )
    return out
