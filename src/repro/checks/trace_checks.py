"""Whole-trace correctness checks (post-matching).

Checks that need the matched trace: lost messages (sends no receive
ever consumed), truncated collective waves (some group members never
arrived), and missing finalize. Complements
:mod:`repro.checks.local`.
"""
from __future__ import annotations

from typing import List

from repro.checks.findings import CheckFinding, Severity
from repro.checks.local import LocalChecker
from repro.mpi.constants import PROC_NULL, OpKind
from repro.mpi.trace import MatchedTrace

# Sends that complete locally and may legitimately linger unmatched
# for a short time; an unmatched one at trace end is still a leak.
_BUFFERED_KINDS = frozenset({OpKind.BSEND, OpKind.IBSEND})


def check_lost_messages(matched: MatchedTrace) -> List[CheckFinding]:
    """Sends whose message no receive in the entire trace consumed."""
    findings: List[CheckFinding] = []
    for op in matched.trace:
        if not op.is_send() or op.peer == PROC_NULL:
            continue
        if matched.match_of(op.ref) is None:
            severity = (
                Severity.WARNING
                if op.kind in _BUFFERED_KINDS
                else Severity.INFO
            )
            findings.append(
                CheckFinding(
                    check="lost-message",
                    severity=severity,
                    rank=op.rank,
                    message=(
                        f"{op.describe()} was never received "
                        "(message leak; also keeps the send blocked "
                        "under the strict semantics)"
                    ),
                    op=op.ref,
                    location=op.location,
                )
            )
    return findings


def check_truncated_collectives(matched: MatchedTrace) -> List[CheckFinding]:
    """Collective waves that some group members never reached.

    An incomplete wave means the arrived ranks block forever (under any
    semantics for barriers, under the strict ``b`` otherwise); the
    finding names exactly which ranks are missing, complementing the
    wait-for-graph diagnosis.
    """
    findings: List[CheckFinding] = []
    for pending in matched.pending_collectives:
        comm = matched.comms.get(pending.comm_id)
        missing = sorted(set(comm.group) - set(pending.arrived))
        if not missing:
            continue
        first_rank = min(pending.arrived)
        first_ref = pending.arrived[first_rank]
        op = matched.trace.op(first_ref)
        findings.append(
            CheckFinding(
                check="truncated-collective",
                severity=Severity.WARNING,
                rank=first_rank,
                message=(
                    f"collective wave {pending.index} on communicator "
                    f"{pending.comm_id} ({op.kind.value}) reached by ranks "
                    f"{sorted(pending.arrived)} but never by {missing}"
                ),
                op=first_ref,
                location=op.location,
            )
        )
    return findings


def check_missing_finalize(matched: MatchedTrace) -> List[CheckFinding]:
    """Processes whose trace does not end at MPI_Finalize.

    For completed runs this is an MPI usage error; for hung runs it is
    informational (the deadlock report carries the real diagnosis).
    """
    findings: List[CheckFinding] = []
    trace = matched.trace
    for rank in range(trace.num_processes):
        length = trace.length(rank)
        if length == 0:
            findings.append(
                CheckFinding(
                    check="missing-finalize",
                    severity=Severity.INFO,
                    rank=rank,
                    message="process issued no MPI operations",
                )
            )
            continue
        last = trace.op((rank, length - 1))
        if not last.is_finalize():
            findings.append(
                CheckFinding(
                    check="missing-finalize",
                    severity=Severity.INFO,
                    rank=rank,
                    message=(
                        f"trace ends at {last.describe()}, not "
                        "MPI_Finalize (hung or aborted run)"
                    ),
                    op=last.ref,
                )
            )
    return findings


def run_all_checks(matched: MatchedTrace) -> List[CheckFinding]:
    """Local per-op checks plus whole-trace checks, in rank order."""
    checker = LocalChecker(matched.comms)
    for rank in range(matched.trace.num_processes):
        for op in matched.trace.sequence(rank):
            checker.check_op(op)
    findings = list(checker.findings)
    findings.extend(check_lost_messages(matched))
    findings.extend(check_truncated_collectives(matched))
    findings.extend(check_missing_finalize(matched))
    return findings
