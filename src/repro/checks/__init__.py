"""Non-deadlock correctness checks (the MUST check-suite subset)."""
from repro.checks.findings import CheckFinding, Severity
from repro.checks.local import LocalChecker
from repro.checks.trace_checks import (
    check_lost_messages,
    check_missing_finalize,
    run_all_checks,
)

__all__ = [
    "CheckFinding",
    "LocalChecker",
    "Severity",
    "check_lost_messages",
    "check_missing_finalize",
    "run_all_checks",
]
