"""Finding records for the non-deadlock correctness checks.

MUST "provides a wide variety of automatic correctness checks" beyond
deadlock detection (Introduction); this package implements the
trace-level subset that needs no type/datatype model: argument
validation, request-lifecycle checks, and message-leak checks.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.mpi.ops import OpRef


class Severity(enum.Enum):
    """MUST-style finding severities."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class CheckFinding:
    """One reported issue of a correctness check."""

    check: str
    severity: Severity
    rank: int
    message: str
    op: Optional[OpRef] = None

    def render(self) -> str:
        where = f" at op {self.op}" if self.op is not None else ""
        return (
            f"[{self.severity.value.upper()}] {self.check}: rank "
            f"{self.rank}{where}: {self.message}"
        )
