"""Finding records for the non-deadlock correctness checks.

MUST "provides a wide variety of automatic correctness checks" beyond
deadlock detection (Introduction); this package implements the
trace-level subset that needs no type/datatype model: argument
validation, request-lifecycle checks, and message-leak checks.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.mpi.ops import OpRef


class Severity(enum.Enum):
    """MUST-style finding severities."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


# Check names shared between the analysis passes and their consumers
# (CLI exit-code logic, tests, golden files). Passes that invent a
# name ad hoc keep working; these are the cross-module ones.

#: Deterministic sequential matching found a guaranteed deadlock.
CHECK_STATIC_DEADLOCK = "static-deadlock"
#: Sequential matching refused: unresolved MPI_ANY_SOURCE present.
CHECK_WILDCARD_UNSUPPORTED = "wildcard-unsupported"
#: The match-set explorer found a feasible deadlocking schedule.
CHECK_VERIFY_DEADLOCK = "verify-deadlock"
#: Exploration hit a state/depth bound before reaching a verdict.
CHECK_VERIFY_BOUND = "verify-bound"


@dataclass(frozen=True)
class CheckFinding:
    """One reported issue of a correctness check.

    ``rank`` is ``None`` for findings not attributable to one process
    (e.g. source-level lint findings). ``location`` carries the
    ``file:line`` of the offending call when known — runtime findings
    inherit it from the recorded :class:`~repro.mpi.ops.Operation`,
    static findings from the analyzed source or extracted sequence.
    """

    check: str
    severity: Severity
    rank: Optional[int]
    message: str
    op: Optional[OpRef] = None
    location: str = ""

    def render(self) -> str:
        who = f"rank {self.rank}" if self.rank is not None else "program"
        where = f" at op {self.op}" if self.op is not None else ""
        loc = f" ({self.location})" if self.location else ""
        return (
            f"[{self.severity.value.upper()}] {self.check}: "
            f"{who}{where}{loc}: {self.message}"
        )
