"""Local (per-operation) argument checks.

These are the checks a first-layer tool node can run on each operation
as it arrives, with no cross-node information: argument ranges,
communicator membership, and request lifecycle. They correspond to
MUST's distributed local checks — everything here is decidable from
the operation stream of the ranks one node hosts.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.checks.findings import CheckFinding, Severity
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, PROC_NULL, OpKind
from repro.mpi.ops import Operation

#: MPI guarantees at least this much tag space (MPI_TAG_UB lower bound).
MIN_TAG_UB = 32767


@dataclass
class _RankState:
    """Request-lifecycle bookkeeping for one rank."""

    live_requests: Set[int] = field(default_factory=set)
    persistent: Set[int] = field(default_factory=set)
    finalized: bool = False


class LocalChecker:
    """Streaming per-operation validation for a set of ranks."""

    def __init__(self, comms: CommRegistry) -> None:
        self.comms = comms
        self.findings: List[CheckFinding] = []
        self._ranks: Dict[int, _RankState] = {}

    def _state(self, rank: int) -> _RankState:
        state = self._ranks.get(rank)
        if state is None:
            state = _RankState()
            self._ranks[rank] = state
        return state

    def _report(
        self,
        check: str,
        severity: Severity,
        op: Operation,
        message: str,
    ) -> None:
        self.findings.append(
            CheckFinding(
                check=check,
                severity=severity,
                rank=op.rank,
                message=message,
                op=op.ref,
                location=op.location,
            )
        )

    # ------------------------------------------------------------------

    def check_op(self, op: Operation) -> None:
        """Validate one operation in stream order."""
        state = self._state(op.rank)
        if state.finalized:
            self._report(
                "call-after-finalize",
                Severity.ERROR,
                op,
                f"{op.kind.value} issued after MPI_Finalize",
            )
        if op.comm_id not in self.comms:
            self._report(
                "invalid-communicator",
                Severity.ERROR,
                op,
                f"unknown communicator {op.comm_id}",
            )
            return
        comm = self.comms.get(op.comm_id)
        if op.is_p2p():
            self._check_peer(op, comm)
            self._check_tag(op)
        if op.is_collective() and not comm.contains(op.rank):
            self._report(
                "not-a-member",
                Severity.ERROR,
                op,
                f"{op.kind.value} on communicator {op.comm_id} whose "
                "group does not contain the caller",
            )
        if op.root is not None and not comm.contains(op.root):
            self._report(
                "invalid-root",
                Severity.ERROR,
                op,
                f"root {op.root} is not in communicator {op.comm_id}",
            )
        self._check_requests(op, state)
        if op.is_finalize():
            state.finalized = True
            for req in sorted(state.live_requests):
                self.findings.append(
                    CheckFinding(
                        check="request-leak",
                        severity=Severity.WARNING,
                        rank=op.rank,
                        message=(
                            f"request {req} neither completed nor freed "
                            "before MPI_Finalize"
                        ),
                        op=op.ref,
                        location=op.location,
                    )
                )

    def _check_peer(self, op: Operation, comm) -> None:
        peer = op.peer
        if peer is None:
            return
        if peer in (PROC_NULL,):
            return
        if peer == ANY_SOURCE:
            if op.is_send():
                self._report(
                    "invalid-peer",
                    Severity.ERROR,
                    op,
                    "MPI_ANY_SOURCE used as a send destination",
                )
            return
        if not comm.contains(peer):
            self._report(
                "invalid-peer",
                Severity.ERROR,
                op,
                f"peer rank {peer} outside communicator {op.comm_id} "
                f"(group size {comm.size})",
            )
        elif peer == op.rank:
            self._report(
                "self-message",
                Severity.WARNING,
                op,
                f"{op.kind.value} addressed to the calling rank itself; "
                "deadlocks unless a non-blocking counterpart exists",
            )

    def _check_tag(self, op: Operation) -> None:
        tag = op.tag
        if tag == ANY_TAG:
            if op.is_send():
                self._report(
                    "invalid-tag",
                    Severity.ERROR,
                    op,
                    "MPI_ANY_TAG used on a send",
                )
            return
        if tag < 0:
            self._report(
                "invalid-tag", Severity.ERROR, op, f"negative tag {tag}"
            )
        elif tag > MIN_TAG_UB:
            self._report(
                "tag-above-ub",
                Severity.WARNING,
                op,
                f"tag {tag} above the portable MPI_TAG_UB minimum "
                f"({MIN_TAG_UB})",
            )

    def _check_requests(self, op: Operation, state: _RankState) -> None:
        if op.request is not None:
            state.live_requests.add(op.request)
            if op.kind in (OpKind.SEND_INIT, OpKind.RECV_INIT):
                state.persistent.add(op.request)
        if op.kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV):
            # Start instances complete via WAIT*; the persistent handle
            # stays live. (The instance id is op.request, added above.)
            return
        if op.kind is OpKind.REQUEST_FREE:
            # MPI_Request_free releases the persistent handle itself
            # (recorded in op.requests since the handle was threaded
            # through the engine's persistent path).
            for req in op.requests:
                state.live_requests.discard(req)
                state.persistent.discard(req)
            return
        if op.is_completion():
            for req in op.requests:
                if req not in state.live_requests:
                    self._report(
                        "unknown-request",
                        Severity.ERROR,
                        op,
                        f"{op.kind.value} on unknown or already-"
                        f"completed request {req}",
                    )
                else:
                    state.live_requests.discard(req)

    # ------------------------------------------------------------------

    def errors(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]
