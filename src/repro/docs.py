"""The versioned-document registry: one schema authority for every
``repro-*/N`` JSON format.

Before v1, each subsystem stamped and checked its own ``"format"``
string (``repro-witness/1`` in ``analysis/witness.py``,
``repro-live/1`` in ``obs/live.py``, ...). Those strings are about to
become *wire* formats — the ``repro serve`` protocol ships them inside
request/response envelopes — so this module consolidates them:

* :data:`REGISTRY` — every document family repro emits, with its
  current version and the top-level keys a well-formed document
  carries;
* :func:`doc_header` — the ``{"format": "repro-x/N"}`` fragment
  writers splat into their payloads (one producer, no drifting
  strings);
* :func:`validate_doc` — the loader-side check: family known, version
  supported, required keys present — raising :class:`DocError` (a
  :class:`~repro.util.errors.TraceError`) whose message carries the
  ``file:line`` prefix when the caller knows it, so every CLI can exit
  2 with a pointed diagnosis instead of a stack trace;
* :func:`sniff_path` — "what does this file claim to be?" for CLI
  dispatchers that accept several artifact kinds (``repro stats``,
  ``repro watch``).

Version policy: a loader accepts exactly the versions listed in its
family's :class:`DocFamily.versions`. Bumping a format means adding
the new version there and teaching the loader both shapes; an unknown
version is a *user input* error (their tool is older or newer), never
an internal one.
"""
from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.util.errors import TraceError


class DocError(TraceError):
    """A versioned document failed validation (unknown family or
    version, missing keys). Message is CLI-ready (``file:line: ...``
    when location is known)."""


@dataclass(frozen=True)
class DocFamily:
    """One ``repro-<name>/<version>`` document family."""

    name: str
    #: Versions the current loaders understand (newest last).
    versions: Tuple[int, ...] = (1,)
    #: Top-level keys every instance carries besides ``format``.
    required_keys: Tuple[str, ...] = ()
    #: One-line description (rendered in diagnostics and docs).
    description: str = ""

    @property
    def current(self) -> int:
        return self.versions[-1]

    @property
    def tag(self) -> str:
        """The current full format tag, e.g. ``repro-live/1``."""
        return f"repro-{self.name}/{self.current}"


#: Every document family repro writes, keyed by short name.
REGISTRY: Dict[str, DocFamily] = {
    family.name: family
    for family in (
        DocFamily(
            "witness", (1,), ("num_ranks", "schedule"),
            "replayable deadlock schedule (repro verify/prove)",
        ),
        DocFamily(
            "blame", (1,), ("root_causes",),
            "wait-state blame report (repro blame)",
        ),
        DocFamily(
            "classify", (1,), ("programs",),
            "decidable-fragment classification (repro classify)",
        ),
        DocFamily(
            "prove", (1,), ("results",),
            "parameterized deadlock-freedom results (repro prove)",
        ),
        DocFamily(
            "profile", (1,), ("rounds", "shards"),
            "BSP round profile of a sharded run (repro profile)",
        ),
        DocFamily(
            "live", (1,), ("kind",),
            "live health feed window/header/final (repro watch)",
        ),
        DocFamily(
            "lint", (1,), ("findings",),
            "static-analysis findings (repro lint)",
        ),
        DocFamily(
            "verify", (1,), ("results",),
            "bounded verification verdicts (repro verify)",
        ),
        DocFamily(
            "stats", (1,), (),
            "observability summary (repro stats)",
        ),
        DocFamily(
            "figures", (1,), ("figure9", "figure12"),
            "overhead-model tables (repro figures)",
        ),
        DocFamily(
            "serve", (1,), ("kind",),
            "analysis-service protocol envelope (repro serve)",
        ),
    )
}

#: ``repro-<name>/<version>`` — the only accepted tag shape.
_TAG_RE = re.compile(r"^repro-([a-z0-9-]+)/(\d+)$")


def parse_format(tag: Any) -> Optional[Tuple[str, int]]:
    """``"repro-live/1"`` -> ``("live", 1)``; None when not a tag."""
    if not isinstance(tag, str):
        return None
    match = _TAG_RE.match(tag)
    if match is None:
        return None
    return match.group(1), int(match.group(2))


def format_tag(name: str) -> str:
    """The current format tag of a registered family."""
    return REGISTRY[name].tag


def doc_header(name: str) -> Dict[str, str]:
    """The ``{"format": ...}`` fragment writers merge into payloads."""
    return {"format": REGISTRY[name].tag}


def _where(path: Optional[str], lineno: Optional[int]) -> str:
    if path is None:
        return ""
    if lineno is None:
        return f"{path}: "
    return f"{path}:{lineno}: "


def supported_line(name: str) -> str:
    """``"supported: repro-live/1"`` — shared diagnostic suffix."""
    family = REGISTRY[name]
    return "supported: " + ", ".join(
        f"repro-{name}/{v}" for v in family.versions
    )


def validate_doc(
    doc: Any,
    expect: Optional[str] = None,
    *,
    path: Optional[str] = None,
    lineno: Optional[int] = None,
    check_keys: bool = False,
) -> Tuple[str, int]:
    """Validate a loaded document's ``format`` tag; return (name, version).

    ``expect`` pins the family (loaders know what they are reading);
    without it any registered family passes. ``check_keys`` also
    requires the family's top-level keys — writers use it as a
    self-check, loaders usually leave shape validation to their own
    parsing. Raises :class:`DocError` with a ``path:line:`` prefix
    when location is provided.
    """
    where = _where(path, lineno)
    if not isinstance(doc, Mapping):
        raise DocError(f"{where}not a JSON object document")
    tag = doc.get("format")
    if tag is None:
        raise DocError(
            f"{where}document has no 'format' tag"
            + (f" (expected {REGISTRY[expect].tag})" if expect else "")
        )
    parsed = parse_format(tag)
    if parsed is None:
        raise DocError(f"{where}not a repro-*/N format tag: {tag!r}")
    name, version = parsed
    if expect is not None and name != expect:
        raise DocError(
            f"{where}expected a {REGISTRY[expect].tag} document, "
            f"found {tag}"
        )
    family = REGISTRY.get(name)
    if family is None:
        known = ", ".join(sorted(REGISTRY))
        raise DocError(
            f"{where}unknown document family {tag!r} (known: {known})"
        )
    if version not in family.versions:
        raise DocError(
            f"{where}unsupported {tag} version ({supported_line(name)})"
        )
    if check_keys:
        missing = [k for k in family.required_keys if k not in doc]
        if missing:
            raise DocError(
                f"{where}{family.tag} document is missing "
                f"key(s): {', '.join(missing)}"
            )
    return name, version


def sniff_path(path: str) -> Optional[Tuple[str, int, int]]:
    """What ``repro-*/N`` format does this file claim to carry?

    Reads just enough of the file: the first non-empty line for JSONL
    feeds, the whole document otherwise. Returns
    ``(name, version, lineno)`` for *any* syntactically valid tag —
    including unknown families and versions, so dispatchers can
    diagnose them — or None when the file carries no tag (raw event
    streams, Chrome traces, foreign JSON). Unreadable or non-JSON
    files also return None: the caller's normal loader owns that
    diagnosis.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    # Not line-delimited: try the whole file as one doc.
                    break
                parsed = (
                    parse_format(doc.get("format"))
                    if isinstance(doc, dict)
                    else None
                )
                if parsed is None:
                    return None
                return parsed[0], parsed[1], lineno
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError):
        return None
    parsed = (
        parse_format(doc.get("format")) if isinstance(doc, dict) else None
    )
    if parsed is None:
        return None
    return parsed[0], parsed[1], 1
