"""The ``repro serve`` wire protocol: newline-delimited JSON envelopes.

Every line on the socket is one JSON object tagged with the
``repro-serve/1`` format from the :mod:`repro.docs` registry, in one of
three kinds::

    {"format": "repro-serve/1", "kind": "request",  "id": "c1", "op": "submit", ...}
    {"format": "repro-serve/1", "kind": "response", "id": "c1", "ok": true,  "result": {...}}
    {"format": "repro-serve/1", "kind": "event",    "id": "c1", "event": {...}}

Requests carry a client-chosen ``id`` echoed on every response and
event, so one connection can interleave operations. ``watch`` streams
``event`` envelopes (each wrapping a ``repro-live/1`` window) and ends
with a normal ``response``. Failures come back as
``{"ok": false, "error": {code, message, retryable, retry_after}}`` —
``retryable`` distinguishes backpressure (over-quota, queue-full,
draining: try again after ``retry_after`` seconds) from caller errors.
"""
from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.docs import DocError, format_tag, validate_doc
from repro.util.errors import ReproError

SERVE_FORMAT = format_tag("serve")

#: Operations the service dispatches.
OPS = (
    "submit",
    "status",
    "result",
    "cancel",
    "jobs",
    "stats",
    "metrics",
    "watch",
    "ping",
    "shutdown",
)

#: Error codes and whether a client should retry them later.
RETRYABLE_CODES = frozenset({"over-quota", "queue-full", "draining"})
FATAL_CODES = frozenset(
    {"bad-request", "unknown-op", "not-found", "not-done", "job-failed"}
)
ERROR_CODES = RETRYABLE_CODES | FATAL_CODES


class ProtocolError(ReproError):
    """A malformed envelope (bad JSON, wrong format tag, unknown op)."""


def make_request(op: str, req_id: str, **fields: Any) -> Dict[str, Any]:
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (known: {', '.join(OPS)})")
    return {
        "format": SERVE_FORMAT,
        "kind": "request",
        "id": req_id,
        "op": op,
        **fields,
    }


def make_response(req_id: str, result: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "format": SERVE_FORMAT,
        "kind": "response",
        "id": req_id,
        "ok": True,
        "result": dict(result),
    }


def make_error(
    req_id: str,
    code: str,
    message: str,
    *,
    retry_after: Optional[float] = None,
) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    error: Dict[str, Any] = {
        "code": code,
        "message": message,
        "retryable": code in RETRYABLE_CODES,
    }
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {
        "format": SERVE_FORMAT,
        "kind": "response",
        "id": req_id,
        "ok": False,
        "error": error,
    }


def make_event(req_id: str, event: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "format": SERVE_FORMAT,
        "kind": "event",
        "id": req_id,
        "event": dict(event),
    }


def encode(envelope: Mapping[str, Any]) -> bytes:
    """One envelope as a newline-terminated JSON line."""
    return (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8")


def parse_envelope(
    line: str, *, lineno: Optional[int] = None
) -> Dict[str, Any]:
    """Decode and validate one wire line into an envelope dict."""
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("envelope must be a JSON object")
    try:
        validate_doc(doc, "serve", lineno=lineno)
    except DocError as exc:
        raise ProtocolError(str(exc)) from exc
    kind = doc.get("kind")
    if kind not in ("request", "response", "event"):
        raise ProtocolError(f"unknown envelope kind {kind!r}")
    if not isinstance(doc.get("id"), str) or not doc["id"]:
        raise ProtocolError("envelope needs a non-empty string 'id'")
    if kind == "request":
        op = doc.get("op")
        if op not in OPS:
            raise ProtocolError(
                f"unknown op {op!r} (known: {', '.join(OPS)})"
            )
    return doc
