"""Blocking socket client for the ``repro serve`` daemon.

``repro submit`` / ``repro jobs`` and the integration tests speak the
NDJSON protocol through this class; it owns one connection, allocates
request ids, and raises :class:`ServeError` (carrying the protocol
error code and retry hint) on ``ok: false`` responses. ``watch``
yields the streamed ``repro-live/1`` windows as they arrive and
returns the final job document.
"""
from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.serve import protocol
from repro.util.errors import ReproError


class ServeError(ReproError):
    """An ``ok: false`` response from the daemon."""

    def __init__(self, error: Dict[str, Any]) -> None:
        super().__init__(error.get("message", "request failed"))
        self.code = error.get("code", "bad-request")
        self.retryable = bool(error.get("retryable"))
        self.retry_after: Optional[float] = error.get("retry_after")


class ServeClient:
    """One connection to a daemon, usable as a context manager."""

    def __init__(
        self,
        address: Union[str, Tuple[str, int]],
        *,
        timeout: Optional[float] = 60.0,
    ) -> None:
        if isinstance(address, str) and "/" in address:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address)
        else:
            if isinstance(address, str):
                host, _, port_text = address.rpartition(":")
                if not _:
                    raise ValueError(
                        f"address {address!r} is neither host:port nor a "
                        "unix socket path"
                    )
                address = (host or "127.0.0.1", int(port_text))
            sock = socket.create_connection(address, timeout=timeout)
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------

    def _read_envelope(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServeError(
                {"code": "bad-request", "message": "connection closed"}
            )
        return protocol.parse_envelope(line.decode("utf-8").strip())

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One round trip; returns the ``result`` object."""
        envelope, rid = self._send(op, fields)
        while True:
            reply = self._read_envelope()
            if reply["id"] != rid or reply["kind"] != "response":
                continue  # stale event from an earlier watch
            return self._unwrap(reply)

    def _send(
        self, op: str, fields: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], str]:
        self._next_id += 1
        rid = f"c{self._next_id}"
        envelope = protocol.make_request(op, rid, **fields)
        self._file.write(protocol.encode(envelope))
        self._file.flush()
        return envelope, rid

    @staticmethod
    def _unwrap(reply: Dict[str, Any]) -> Dict[str, Any]:
        if not reply.get("ok"):
            raise ServeError(reply.get("error", {}))
        return reply.get("result", {})

    # -- operations ------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(
        self,
        *,
        tenant: str = "default",
        workload: Optional[str] = None,
        source: Optional[str] = None,
        trace: Optional[Dict[str, Any]] = None,
        op: str = "analyze",
        ranks: int = 4,
    ) -> str:
        fields: Dict[str, Any] = {
            "tenant": tenant,
            "analysis": op,
            "ranks": ranks,
        }
        if workload is not None:
            fields["workload"] = workload
        if source is not None:
            fields["source"] = source
        if trace is not None:
            fields["trace"] = trace
        return str(self.request("submit", **fields)["job"])

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request("status", job=job_id)

    def result(
        self, job_id: str, *, wait: bool = True, timeout: float = 300.0
    ) -> Dict[str, Any]:
        return self.request("result", job=job_id, wait=wait, timeout=timeout)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("cancel", job=job_id)

    def jobs(self, *, tenant: Optional[str] = None) -> Dict[str, Any]:
        fields = {} if tenant is None else {"tenant": tenant}
        return self.request("jobs", **fields)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def metrics(self) -> str:
        return str(self.request("metrics")["text"])

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield live windows for a job; the final job document comes
        last under the ``"final"`` key of a one-entry dict."""
        _, rid = self._send("watch", {"job": job_id})
        while True:
            reply = self._read_envelope()
            if reply["id"] != rid:
                continue
            if reply["kind"] == "event":
                yield reply["event"]
                continue
            yield {"final": self._unwrap(reply)}
            return

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
