"""The bounded worker pool behind the analysis service.

``workers`` threads each own one long-lived
:class:`~repro.api.Session` (built from the service's
:class:`~repro.api.AnalysisConfig`, with live telemetry enabled so
``watch`` subscriptions see ``repro-live/1`` windows) and pull jobs
from one bounded queue. A full queue rejects the submit immediately —
:class:`QueueFull` carries the ``retry_after`` hint the protocol turns
into a retryable ``queue-full`` error — rather than stalling the
event loop. :meth:`WorkerPool.drain` implements the SIGTERM contract:
no new work, queued jobs finish, workers join, sessions close.
"""
from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.api import AnalysisConfig, Session
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    RUNNING,
    TERMINAL_STATES,
    execute_job,
)
from repro.util.errors import ReproError

#: Retry hint for a full queue: roughly one queue turn at the default
#: small-workload latency; the service does not yet smooth this.
QUEUE_RETRY_AFTER = 0.5


class QueueFull(ReproError):
    """The job queue is at capacity; try again later."""

    def __init__(self, limit: int, retry_after: float) -> None:
        super().__init__(f"job queue is full ({limit} waiting)")
        self.limit = limit
        self.retry_after = retry_after


class PoolDraining(ReproError):
    """The pool is shutting down and accepts no new jobs."""


class WorkerPool:
    """N worker threads, one reusable Session each, one bounded queue."""

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 32,
        config: Optional[AnalysisConfig] = None,
        on_complete: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if queue_limit < 1:
            raise ValueError("queue limit must be positive")
        self.workers = workers
        self.queue_limit = queue_limit
        base = config or AnalysisConfig()
        # Live telemetry on every worker session: watch subscriptions
        # receive windows without per-job reconfiguration.
        self.config = base.replace(live=True)
        self._on_complete = on_complete
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=queue_limit + workers  # headroom for drain sentinels
        )
        self._lock = threading.Lock()
        self._pending = 0
        self._running = 0
        self._draining = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission (event-loop side) -----------------------------------

    def submit(self, job: Job) -> None:
        with self._lock:
            if self._draining:
                raise PoolDraining("service is draining; resubmit elsewhere")
            if self._pending >= self.queue_limit:
                raise QueueFull(self.queue_limit, QUEUE_RETRY_AFTER)
            self._pending += 1
        self._queue.put(job)

    def depth(self) -> int:
        """Jobs waiting in the queue (not yet picked up)."""
        with self._lock:
            return self._pending

    def running(self) -> int:
        with self._lock:
            return self._running

    # -- worker side -----------------------------------------------------

    def _worker_loop(self) -> None:
        current: Dict[str, Optional[Job]] = {"job": None}

        def dispatch_window(window: Dict[str, Any]) -> None:
            job = current["job"]
            if job is None:
                return
            for watcher in list(job.watchers):
                watcher(window)

        session = Session(self.config, on_snapshot=dispatch_window)
        try:
            while True:
                job = self._queue.get()
                if job is None:
                    return
                with self._lock:
                    self._pending -= 1
                with job.lock:
                    if job.state in TERMINAL_STATES:  # cancelled queued
                        continue
                    job.state = RUNNING
                    job.started_at = time.time()
                self._run_job(session, job, current)
        finally:
            session.close()

    def _run_job(
        self, session: Session, job: Job, current: Dict[str, Optional[Job]]
    ) -> None:
        current["job"] = job
        with self._lock:
            self._running += 1
        try:
            job.result = execute_job(session, job)
            job.state = DONE
        except Exception as exc:
            job.error = str(exc)
            job.state = FAILED
        finally:
            current["job"] = None
            with self._lock:
                self._running -= 1
            job.finished_at = time.time()
            job.done.set()
            if self._on_complete is not None:
                self._on_complete(job)

    # -- lifecycle -------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work, finish the queue, join the workers.

        Returns True when every worker exited within ``timeout``
        (None = wait forever). Idempotent: later calls just re-join.
        """
        with self._lock:
            first = not self._draining
            self._draining = True
        if first:
            for _ in self._threads:
                self._queue.put(None)
        deadline = None if timeout is None else time.time() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.time())
            )
            thread.join(remaining)
        return not any(thread.is_alive() for thread in self._threads)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining
