"""Per-tenant admission control for the analysis service.

Each tenant may hold at most ``limit`` jobs in flight (queued or
running). :meth:`TenantQuotas.acquire` admits or raises
:class:`QuotaExceeded` with a ``retry_after`` hint sized to the
service's recent job latency — the 429-style backpressure contract of
the wire protocol (``over-quota``, ``retryable: true``).
"""
from __future__ import annotations

import threading
from typing import Dict

from repro.util.errors import ReproError

#: Fallback retry hint before any job has completed.
DEFAULT_RETRY_AFTER = 1.0


class QuotaExceeded(ReproError):
    """Tenant has ``limit`` jobs in flight; try again later."""

    def __init__(self, tenant: str, limit: int, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant!r} already has {limit} jobs in flight"
        )
        self.tenant = tenant
        self.limit = limit
        self.retry_after = retry_after


class TenantQuotas:
    """Thread-safe in-flight counters with cumulative statistics."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("per-tenant quota must be positive")
        self.limit = limit
        self._lock = threading.Lock()
        self._in_flight: Dict[str, int] = {}
        self._submitted: Dict[str, int] = {}
        self._completed: Dict[str, int] = {}
        self._rejected: Dict[str, int] = {}
        self._retry_after = DEFAULT_RETRY_AFTER

    def acquire(self, tenant: str) -> None:
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if held >= self.limit:
                self._rejected[tenant] = self._rejected.get(tenant, 0) + 1
                raise QuotaExceeded(tenant, self.limit, self._retry_after)
            self._in_flight[tenant] = held + 1
            self._submitted[tenant] = self._submitted.get(tenant, 0) + 1

    def release(self, tenant: str, *, latency: float = 0.0) -> None:
        with self._lock:
            held = self._in_flight.get(tenant, 0)
            if held <= 0:
                raise ReproError(
                    f"quota release without acquire for tenant {tenant!r}"
                )
            self._in_flight[tenant] = held - 1
            self._completed[tenant] = self._completed.get(tenant, 0) + 1
            if latency > 0:
                # Retry hints track a smoothed recent job latency: a
                # rejected tenant retrying after one average job has a
                # real chance of finding a free slot.
                self._retry_after = 0.5 * self._retry_after + 0.5 * latency

    def in_flight(self, tenant: str) -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            tenants = (
                set(self._in_flight)
                | set(self._submitted)
                | set(self._rejected)
            )
            return {
                tenant: {
                    "in_flight": self._in_flight.get(tenant, 0),
                    "submitted": self._submitted.get(tenant, 0),
                    "completed": self._completed.get(tenant, 0),
                    "rejected": self._rejected.get(tenant, 0),
                }
                for tenant in sorted(tenants)
            }
