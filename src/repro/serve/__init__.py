"""``repro serve``: a persistent multi-tenant analysis service.

The daemon accepts newline-delimited ``repro-serve/1`` JSON envelopes
over TCP and/or a Unix socket and runs analysis jobs — built-in
workloads, uploaded rank programs, uploaded matched traces — on a
bounded pool of worker threads, each reusing one
:class:`~repro.api.Session`. Admission control is per-tenant quotas
plus queue backpressure, both surfaced as retryable protocol errors;
SIGTERM drains gracefully. See ``DESIGN.md`` section 17.

Layering::

    protocol.py   envelope schemas + codec (repro-serve/1)
    jobs.py       job model, table, and execution on a Session
    quotas.py     per-tenant admission control
    pool.py       bounded worker pool (threads, Session reuse)
    service.py    the asyncio daemon: router, drain, telemetry
    client.py     blocking socket client (repro submit / repro jobs)
"""
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobError, JobSpec, JobTable
from repro.serve.pool import PoolDraining, QueueFull, WorkerPool
from repro.serve.protocol import (
    OPS,
    ProtocolError,
    SERVE_FORMAT,
    make_error,
    make_event,
    make_request,
    make_response,
    parse_envelope,
)
from repro.serve.quotas import QuotaExceeded, TenantQuotas
from repro.serve.service import (
    ReproService,
    ServeSettings,
    serve_forever,
)

__all__ = [
    "Job",
    "JobError",
    "JobSpec",
    "JobTable",
    "OPS",
    "PoolDraining",
    "ProtocolError",
    "QueueFull",
    "QuotaExceeded",
    "ReproService",
    "SERVE_FORMAT",
    "ServeClient",
    "ServeError",
    "ServeSettings",
    "TenantQuotas",
    "WorkerPool",
    "make_error",
    "make_event",
    "make_request",
    "make_response",
    "parse_envelope",
    "serve_forever",
]
