"""Job model and execution for the analysis service.

A :class:`Job` moves through ``queued -> running -> done`` (or
``failed``/``cancelled``). Its :class:`JobSpec` names what to analyze —
a built-in workload, an uploaded rank-program source, or an uploaded
matched-trace document — and which analysis to run (``analyze``,
``verify``, or ``blame``). :func:`execute_job` performs the spec on a
worker's long-lived :class:`~repro.api.Session`; the session is reset
by ``Session.record``/``reset`` between jobs so nothing leaks across
tenants (pinned by ``tests/unit/test_session_reuse.py``).
"""
from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.util.errors import ReproError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States from which no further transition happens.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class JobError(ReproError):
    """A job spec the service cannot execute."""


def _workload_registry() -> Dict[str, Callable[[int], list]]:
    # The CLI owns the canonical name -> programs mapping; the lazy
    # import keeps repro.serve importable without pulling argparse
    # machinery until a workload job actually runs.
    from repro.cli import _workloads

    return _workloads()


@dataclass(frozen=True)
class JobSpec:
    """What one job analyzes and how.

    ``kind``: ``workload`` (built-in, by name), ``program`` (uploaded
    Python rank-program source, `repro lint` conventions), or ``trace``
    (uploaded matched-trace JSON document). ``op``: ``analyze`` runs
    record + distributed detection, ``verify`` the bounded
    wildcard-aware verifier, ``blame`` the wait-state blame analysis
    (both only for program specs).
    """

    kind: str
    op: str = "analyze"
    workload: Optional[str] = None
    ranks: int = 4
    source: Optional[str] = None
    trace: Optional[Dict[str, Any]] = None

    @classmethod
    def from_request(cls, fields: Dict[str, Any]) -> "JobSpec":
        if fields.get("workload"):
            kind = "workload"
        elif fields.get("source") is not None:
            kind = "program"
        elif fields.get("trace") is not None:
            kind = "trace"
        else:
            raise JobError(
                "submit needs one of 'workload', 'source', or 'trace'"
            )
        # The analysis kind travels as "analysis" on the wire; "op" is
        # the envelope operation ("submit").
        op = fields.get("analysis", "analyze")
        if op not in ("analyze", "verify", "blame"):
            raise JobError(f"unknown analysis {op!r}")
        if op != "analyze" and kind != "program":
            raise JobError(f"op {op!r} needs an uploaded program source")
        ranks = fields.get("ranks", 4)
        if not isinstance(ranks, int) or ranks < 1:
            raise JobError("'ranks' must be a positive integer")
        return cls(
            kind=kind,
            op=op,
            workload=fields.get("workload"),
            ranks=ranks,
            source=fields.get("source"),
            trace=fields.get("trace"),
        )

    def describe(self) -> str:
        if self.kind == "workload":
            return f"workload:{self.workload}"
        return f"{self.kind}:{self.op}"


@dataclass
class Job:
    """One unit of service work, with its lifecycle timestamps."""

    id: str
    tenant: str
    spec: JobSpec
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Live-window callbacks registered by ``watch`` subscriptions;
    #: invoked from the worker thread with each ``repro-live/1`` doc.
    watchers: List[Callable[[Dict[str, Any]], None]] = field(
        default_factory=list
    )
    #: Set when the job reaches a terminal state.
    done: threading.Event = field(default_factory=threading.Event)
    #: Guards state transitions: the queued -> running step (worker
    #: thread) races the queued -> cancelled step (event loop).
    lock: threading.Lock = field(default_factory=threading.Lock)

    def status_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "job": self.id,
            "tenant": self.tenant,
            "spec": self.spec.describe(),
            "state": self.state,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            doc["started_at"] = self.started_at
        if self.finished_at is not None:
            doc["finished_at"] = self.finished_at
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobTable:
    """Thread-safe id -> :class:`Job` registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next = 0

    def create(self, tenant: str, spec: JobSpec) -> Job:
        with self._lock:
            self._next += 1
            job = Job(id=f"job-{self._next:04d}", tenant=tenant, spec=spec)
            self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def all(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {state: 0 for state in STATES}
            for job in self._jobs.values():
                out[job.state] += 1
        return out


# -- execution ---------------------------------------------------------


def _outcome_doc(outcome: Any) -> Dict[str, Any]:
    deadlocked = list(outcome.deadlocked)
    return {
        "verdict": "deadlock" if outcome.has_deadlock else "clean",
        "deadlocked": deadlocked,
        "num_ranks": outcome.topology.num_ranks,
        "messages_sent": outcome.messages_sent,
        "exit_code": 1 if outcome.has_deadlock else 0,
    }


def _run_program_source(session: Any, spec: JobSpec) -> Dict[str, Any]:
    from repro.obs.blame import blame_document, load_programs

    with tempfile.NamedTemporaryFile(
        "w", suffix=".py", prefix="repro_serve_", encoding="utf-8"
    ) as handle:
        handle.write(spec.source or "")
        handle.flush()
        if spec.op == "verify":
            report = session.verify(handle.name, ranks=spec.ranks)
            programs = {
                prog.label: prog.verdict_name for prog in report.programs
            }
            has_deadlock = report.has_deadlock or bool(report.errors())
            return {
                "verdict": "deadlock" if has_deadlock else "clean",
                "programs": programs,
                "inconclusive": report.inconclusive,
                "exit_code": (
                    1 if has_deadlock else 2 if report.inconclusive else 0
                ),
            }
        if spec.op == "blame":
            report, outcome = session.blame(handle.name, ranks=spec.ranks)
            doc = blame_document(report, source="serve")
            doc["verdict"] = (
                "deadlock" if outcome is not None and outcome.has_deadlock
                else "clean"
            )
            doc["exit_code"] = 1 if doc["root_causes"] else 0
            return doc
        programs = load_programs(handle.name, spec.ranks)
        return _outcome_doc(session.run(programs))


def execute_job(session: Any, job: Job) -> Dict[str, Any]:
    """Run ``job`` on a worker's session and return its result doc.

    The session is reset first so the previous job's observability
    state never reaches this job's artifacts or watchers, and the
    live feed is finalized afterwards so every ``watch`` subscription
    receives at least the terminal health window. The caller owns
    state transitions and error recording.
    """
    session.reset()
    try:
        return _execute_spec(session, job.spec)
    finally:
        session.finalize_live()


def _execute_spec(session: Any, spec: JobSpec) -> Dict[str, Any]:
    if spec.kind == "workload":
        registry = _workload_registry()
        build = registry.get(spec.workload or "")
        if build is None:
            raise JobError(
                f"unknown workload {spec.workload!r} "
                f"(known: {', '.join(sorted(registry))})"
            )
        return _outcome_doc(session.run(build(spec.ranks)))
    if spec.kind == "program":
        return _run_program_source(session, spec)
    if spec.kind == "trace":
        from repro.mpi.serialize import matched_trace_from_dict

        matched = matched_trace_from_dict(dict(spec.trace or {}))
        return _outcome_doc(session.analyze(matched))
    raise JobError(f"unknown job kind {spec.kind!r}")
