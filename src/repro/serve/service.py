"""The ``repro serve`` daemon: an asyncio NDJSON analysis service.

One event loop accepts connections (TCP and/or a Unix socket), parses
``repro-serve/1`` request envelopes, and routes them onto the
:class:`~repro.serve.pool.WorkerPool`. The loop never runs an
analysis itself — submits enqueue, result waits park on an executor
thread, and ``watch`` subscriptions receive ``repro-live/1`` windows
forwarded from the worker threads via ``call_soon_threadsafe`` — so
admission control (per-tenant quotas, queue backpressure, drain
rejection) stays responsive no matter how loaded the pool is.

Shutdown contract: SIGTERM (or the ``shutdown`` op) stops admission
with retryable ``draining`` errors, lets queued and running jobs
finish, joins every worker, closes the listeners, and wakes
:meth:`ReproService.run_until_stopped`.
"""
from __future__ import annotations

import asyncio
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.api import AnalysisConfig
from repro.obs.service import ServiceTelemetry
from repro.serve import protocol
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobError,
    JobSpec,
    JobTable,
    QUEUED,
    TERMINAL_STATES,
)
from repro.serve.pool import PoolDraining, QueueFull, WorkerPool
from repro.serve.quotas import QuotaExceeded, TenantQuotas

#: Retry hint clients get while the daemon drains.
DRAIN_RETRY_AFTER = 5.0

#: Default cap on how long a ``result``/``watch`` wait may park.
DEFAULT_WAIT_TIMEOUT = 300.0


@dataclass(frozen=True)
class ServeSettings:
    """Everything ``repro serve`` needs to stand up a daemon."""

    host: str = "127.0.0.1"
    port: Optional[int] = 0
    unix_path: Optional[str] = None
    workers: int = 2
    queue_limit: int = 32
    quota: int = 4
    backend: str = "inline"
    shards: int = 2


class ReproService:
    """The daemon: envelope router + worker pool + telemetry."""

    def __init__(
        self,
        settings: Optional[ServeSettings] = None,
        *,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.settings = settings or ServeSettings()
        self.config = config or AnalysisConfig(
            backend=self.settings.backend, shards=self.settings.shards
        )
        self.jobs = JobTable()
        self.quotas = TenantQuotas(self.settings.quota)
        self.telemetry = ServiceTelemetry()
        self.pool: Optional[WorkerPool] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._stopped: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._connections = 0
        self._conn_tasks: "set[asyncio.Task]" = set()
        #: job id -> asyncio queues of active watch subscriptions; the
        #: completion callback pushes the ``None`` sentinel into each.
        self._watch_queues: Dict[str, List[asyncio.Queue]] = {}
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self.pool = WorkerPool(
            workers=self.settings.workers,
            queue_limit=self.settings.queue_limit,
            config=self.config,
            on_complete=self._job_completed,
        )
        self.telemetry.set_workers(self.settings.workers)
        if self.settings.port is not None:
            server = await asyncio.start_server(
                self._handle_client, self.settings.host, self.settings.port
            )
            self._servers.append(server)
            sock = server.sockets[0]
            self.address = sock.getsockname()[:2]
        if self.settings.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_client, path=self.settings.unix_path
                )
            )
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.begin_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support

    def begin_shutdown(self) -> None:
        """Start the graceful drain (idempotent, signal-handler safe)."""
        if self._draining:
            return
        self._draining = True
        assert self._loop is not None
        self._drain_task = self._loop.create_task(self._drain())

    async def _drain(self) -> None:
        assert self.pool is not None and self._loop is not None
        await self._loop.run_in_executor(None, self.pool.drain)
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        assert self._stopped is not None
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain and wait for full shutdown (test/CLI teardown hook)."""
        self.begin_shutdown()
        await self.run_until_stopped()

    # -- pool callbacks (worker threads) ---------------------------------

    def _job_completed(self, job: Job) -> None:
        latency = (job.finished_at or time.time()) - (
            job.started_at or job.submitted_at
        )
        self.quotas.release(job.tenant, latency=latency)
        self.telemetry.job_finished(job.tenant, job.state, latency)
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._finish_watches, job.id)

    def _finish_watches(self, job_id: str) -> None:
        for queue in self._watch_queues.pop(job_id, []):
            queue.put_nowait(None)

    # -- connection handling ---------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        self.telemetry.set_connections(self._connections)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    envelope = protocol.parse_envelope(text)
                except protocol.ProtocolError as exc:
                    self.telemetry.protocol_error()
                    await self._send(
                        writer,
                        protocol.make_error("-", "bad-request", str(exc)),
                    )
                    continue
                if envelope["kind"] != "request":
                    self.telemetry.protocol_error()
                    await self._send(
                        writer,
                        protocol.make_error(
                            envelope["id"],
                            "bad-request",
                            "only request envelopes are accepted here",
                        ),
                    )
                    continue
                await self._dispatch(envelope, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # drain closed us; exit cleanly
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._connections -= 1
            self.telemetry.set_connections(self._connections)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, envelope: Dict[str, Any]
    ) -> None:
        writer.write(protocol.encode(envelope))
        await writer.drain()

    # -- request routing -------------------------------------------------

    async def _dispatch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = request["op"]
        rid = request["id"]
        self.telemetry.request(op)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            await self._send(
                writer,
                protocol.make_error(rid, "unknown-op", f"unknown op {op!r}"),
            )
            return
        await handler(rid, request, writer)

    def _refresh_gauges(self) -> None:
        assert self.pool is not None
        self.telemetry.set_queue_depth(self.pool.depth())
        self.telemetry.set_running(self.pool.running())

    async def _op_submit(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self.pool is not None
        tenant = str(request.get("tenant", "default"))
        if self._draining:
            self.telemetry.job_rejected(tenant, "draining")
            await self._send(
                writer,
                protocol.make_error(
                    rid,
                    "draining",
                    "service is draining; resubmit later",
                    retry_after=DRAIN_RETRY_AFTER,
                ),
            )
            return
        try:
            spec = JobSpec.from_request(request)
        except JobError as exc:
            await self._send(
                writer, protocol.make_error(rid, "bad-request", str(exc))
            )
            return
        try:
            self.quotas.acquire(tenant)
        except QuotaExceeded as exc:
            self.telemetry.job_rejected(tenant, "over-quota")
            await self._send(
                writer,
                protocol.make_error(
                    rid,
                    "over-quota",
                    str(exc),
                    retry_after=exc.retry_after,
                ),
            )
            return
        job = self.jobs.create(tenant, spec)
        try:
            self.pool.submit(job)
        except QueueFull as exc:
            self._reject_created(job, tenant, "queue-full")
            await self._send(
                writer,
                protocol.make_error(
                    rid, "queue-full", str(exc), retry_after=exc.retry_after
                ),
            )
            return
        except PoolDraining as exc:
            self._reject_created(job, tenant, "draining")
            await self._send(
                writer,
                protocol.make_error(
                    rid, "draining", str(exc), retry_after=DRAIN_RETRY_AFTER
                ),
            )
            return
        self.telemetry.job_submitted(tenant)
        self._refresh_gauges()
        await self._send(
            writer,
            protocol.make_response(rid, {"job": job.id, "state": job.state}),
        )

    def _reject_created(self, job: Job, tenant: str, code: str) -> None:
        """Roll back a job admitted past quota but refused by the pool."""
        with job.lock:
            job.state = CANCELLED
        job.error = code
        job.done.set()
        self.quotas.release(job.tenant)
        self.telemetry.job_rejected(tenant, code)

    async def _op_status(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(str(request.get("job", "")))
        if job is None:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "not-found", f"no job {request.get('job')!r}"
                ),
            )
            return
        await self._send(writer, protocol.make_response(rid, job.status_doc()))

    async def _op_result(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(str(request.get("job", "")))
        if job is None:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "not-found", f"no job {request.get('job')!r}"
                ),
            )
            return
        if request.get("wait"):
            timeout = float(request.get("timeout", DEFAULT_WAIT_TIMEOUT))
            assert self._loop is not None
            await self._loop.run_in_executor(None, job.done.wait, timeout)
        if job.state == DONE:
            doc = job.status_doc()
            doc["result"] = job.result
            await self._send(writer, protocol.make_response(rid, doc))
        elif job.state == FAILED:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "job-failed", job.error or "job failed"
                ),
            )
        elif job.state == CANCELLED:
            await self._send(
                writer,
                protocol.make_error(rid, "not-done", "job was cancelled"),
            )
        else:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "not-done", f"job is {job.state}; pass wait=true"
                ),
            )

    async def _op_cancel(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(str(request.get("job", "")))
        if job is None:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "not-found", f"no job {request.get('job')!r}"
                ),
            )
            return
        with job.lock:
            if job.state != QUEUED:
                cancellable = False
            else:
                job.state = CANCELLED
                cancellable = True
        if not cancellable:
            await self._send(
                writer,
                protocol.make_error(
                    rid,
                    "bad-request",
                    f"job is {job.state}; only queued jobs cancel",
                ),
            )
            return
        job.finished_at = time.time()
        job.done.set()
        self.quotas.release(job.tenant)
        self.telemetry.job_finished(job.tenant, CANCELLED, 0.0)
        self._finish_watches(job.id)
        await self._send(
            writer, protocol.make_response(rid, job.status_doc())
        )

    async def _op_jobs(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        tenant = request.get("tenant")
        listed = [
            job.status_doc()
            for job in self.jobs.all()
            if tenant is None or job.tenant == tenant
        ]
        await self._send(
            writer,
            protocol.make_response(
                rid, {"jobs": listed, "counts": self.jobs.counts()}
            ),
        )

    async def _op_stats(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self.pool is not None
        self._refresh_gauges()
        await self._send(
            writer,
            protocol.make_response(
                rid,
                {
                    "queue_depth": self.pool.depth(),
                    "running": self.pool.running(),
                    "workers": self.settings.workers,
                    "quota": self.settings.quota,
                    "queue_limit": self.settings.queue_limit,
                    "draining": self._draining,
                    "uptime_s": time.time() - self.telemetry.started_at,
                    "tenants": self.quotas.snapshot(),
                    "jobs": self.jobs.counts(),
                },
            ),
        )

    async def _op_metrics(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        assert self.pool is not None
        self._refresh_gauges()
        text = self.telemetry.openmetrics(
            extra_gauges={
                "serve.quota.limit": self.settings.quota,
                "serve.queue.limit": self.settings.queue_limit,
            }
        )
        await self._send(
            writer,
            protocol.make_response(
                rid,
                {
                    "content_type": "application/openmetrics-text",
                    "text": text,
                },
            ),
        )

    async def _op_watch(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.jobs.get(str(request.get("job", "")))
        if job is None:
            await self._send(
                writer,
                protocol.make_error(
                    rid, "not-found", f"no job {request.get('job')!r}"
                ),
            )
            return
        assert self._loop is not None
        loop = self._loop
        queue: asyncio.Queue = asyncio.Queue()

        def forward(window: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, window)

        job.watchers.append(forward)
        self._watch_queues.setdefault(job.id, []).append(queue)
        if job.state in TERMINAL_STATES:
            # Completed before we registered: the completion callback
            # already fired, so push our own sentinel.
            queue.put_nowait(None)
        try:
            while True:
                window = await queue.get()
                if window is None:
                    break
                await self._send(writer, protocol.make_event(rid, window))
        finally:
            if forward in job.watchers:
                job.watchers.remove(forward)
            queues = self._watch_queues.get(job.id)
            if queues and queue in queues:
                queues.remove(queue)
        doc = job.status_doc()
        if job.state == DONE:
            doc["result"] = job.result
        await self._send(writer, protocol.make_response(rid, doc))

    async def _op_ping(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        import repro

        await self._send(
            writer,
            protocol.make_response(
                rid,
                {
                    "pong": True,
                    "version": repro.__version__,
                    "draining": self._draining,
                },
            ),
        )

    async def _op_shutdown(
        self, rid: str, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        await self._send(
            writer, protocol.make_response(rid, {"draining": True})
        )
        self.begin_shutdown()


def parse_address(address: str) -> Tuple[Optional[str], Optional[int]]:
    """``host:port`` -> (host, port); a bare path means a Unix socket.

    Returns ``(None, None)`` with the path when the address contains a
    slash (callers check for that shape first).
    """
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"address {address!r} is not host:port")
    return host or "127.0.0.1", int(port)


async def serve_forever(settings: ServeSettings) -> None:
    """Stand up a service and run until a drain completes."""
    service = ReproService(settings)
    await service.start()
    if service.address is not None:
        host, port = service.address
        print(f"repro serve: listening on {host}:{port}", flush=True)
    if settings.unix_path:
        print(
            f"repro serve: listening on unix:{settings.unix_path}",
            flush=True,
        )
    await service.run_until_stopped()


__all__ = [
    "ReproService",
    "ServeSettings",
    "parse_address",
    "serve_forever",
]
