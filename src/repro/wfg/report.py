"""HTML deadlock reports, mirroring MUST's output artifact.

When a deadlock is detected, MUST logs it in an HTML report and emits
a DOT wait-for graph (Section 5). The report lists the deadlocked
processes, their active MPI calls, the wait-for conditions, a witness
dependency cycle, and any unexpected matches the analysis flagged.
"""
from __future__ import annotations

import html
import io
from typing import Mapping, Optional, Sequence

from repro.core.transition import UnexpectedMatch
from repro.core.waitfor import WaitForCondition
from repro.wfg.detect import DetectionResult
from repro.wfg.graph import WaitForGraph

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em; }
h1 { color: #8b0000; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #999; padding: 4px 10px; text-align: left; }
th { background: #eee; }
.dead { background: #ffe0e0; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.ok { color: #006400; }
"""


def render_html_report(
    graph: WaitForGraph,
    result: DetectionResult,
    conditions: Mapping[int, WaitForCondition],
    *,
    dot_text: Optional[str] = None,
    unexpected: Sequence[UnexpectedMatch] = (),
    title: str = "MUST-style deadlock report",
) -> str:
    """Produce the HTML report text for one detection run."""
    out = io.StringIO()
    out.write("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
    out.write(f"<title>{html.escape(title)}</title>")
    out.write(f"<style>{_STYLE}</style></head><body>\n")
    if result.has_deadlock:
        out.write(f"<h1>Deadlock detected: {len(result.deadlocked)} "
                  "process(es) cannot proceed</h1>\n")
    else:
        out.write("<h1 class=\"ok\">No deadlock in the analyzed state</h1>\n")

    if result.witness_cycle:
        chain = " &rarr; ".join(str(r) for r in result.witness_cycle)
        out.write(f"<p>Dependency cycle: <b>{chain} &rarr; "
                  f"{result.witness_cycle[0]}</b></p>\n")

    out.write("<h2>Blocked processes</h2>\n")
    out.write("<table><tr><th>Rank</th><th>Active MPI call</th>"
              "<th>Waits for</th><th>Status</th></tr>\n")
    dead = set(result.deadlocked)
    for rank in sorted(conditions):
        cond = conditions[rank]
        cls = " class=\"dead\"" if rank in dead else ""
        waits = _render_condition(cond)
        status = "deadlocked" if rank in dead else "blocked (releasable)"
        out.write(
            f"<tr{cls}><td>{rank}</td>"
            f"<td><code>{html.escape(cond.op_description)}</code></td>"
            f"<td>{waits}</td><td>{status}</td></tr>\n"
        )
    out.write("</table>\n")

    if unexpected:
        out.write("<h2>Unexpected matches (Section 3.3)</h2>\n<ul>\n")
        for um in unexpected:
            out.write(
                "<li>wildcard receive at "
                f"<code>{um.receive}</code> could match active send at "
                f"<code>{um.candidate_send}</code> but was matched with "
                f"<code>{um.matched_send}</code>; consider re-running "
                "with implementation-adapted blocking semantics</li>\n"
            )
        out.write("</ul>\n")

    out.write(f"<p>Wait-for graph: {len(graph.nodes)} node(s), "
              f"{graph.arc_count()} arc(s).</p>\n")
    if dot_text is not None:
        out.write("<h2>Wait-for graph (DOT)</h2>\n")
        out.write(f"<pre>{html.escape(dot_text)}</pre>\n")
    out.write("</body></html>\n")
    return out.getvalue()


def _render_condition(cond: WaitForCondition) -> str:
    parts = []
    for clause in cond.clauses:
        if not clause:
            parts.append("<i>unsatisfiable (no possible partner)</i>")
        elif len(clause) == 1:
            parts.append(f"rank {clause[0].rank}")
        else:
            ranks = ", ".join(str(t.rank) for t in clause)
            parts.append(f"any of [{ranks}]")
    return " AND ".join(parts) if parts else "<i>nothing (tool anomaly)</i>"
