"""HTML deadlock reports, mirroring MUST's output artifact.

When a deadlock is detected, MUST logs it in an HTML report and emits
a DOT wait-for graph (Section 5). The report lists the deadlocked
processes, their active MPI calls, the wait-for conditions, a witness
dependency cycle, and any unexpected matches the analysis flagged.
"""
from __future__ import annotations

import html
import io
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.transition import UnexpectedMatch
from repro.core.waitfor import WaitForCondition
from repro.wfg.detect import DetectionResult
from repro.wfg.graph import WaitForGraph

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em; }
h1 { color: #8b0000; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #999; padding: 4px 10px; text-align: left; }
th { background: #eee; }
.dead { background: #ffe0e0; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
.ok { color: #006400; }
"""


def render_html_report(
    graph: WaitForGraph,
    result: DetectionResult,
    conditions: Mapping[int, WaitForCondition],
    *,
    dot_text: Optional[str] = None,
    unexpected: Sequence[UnexpectedMatch] = (),
    flight_tails: Optional[Mapping[int, Sequence[Mapping[str, Any]]]] = None,
    blame: Sequence[str] = (),
    title: str = "MUST-style deadlock report",
) -> str:
    """Produce the HTML report text for one detection run."""
    out = io.StringIO()
    out.write("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
    out.write(f"<title>{html.escape(title)}</title>")
    out.write(f"<style>{_STYLE}</style></head><body>\n")
    if result.has_deadlock:
        out.write(f"<h1>Deadlock detected: {len(result.deadlocked)} "
                  "process(es) cannot proceed</h1>\n")
    else:
        out.write("<h1 class=\"ok\">No deadlock in the analyzed state</h1>\n")

    if result.witness_cycle:
        chain = " &rarr; ".join(str(r) for r in result.witness_cycle)
        out.write(f"<p>Dependency cycle: <b>{chain} &rarr; "
                  f"{result.witness_cycle[0]}</b></p>\n")

    out.write("<h2>Blocked processes</h2>\n")
    out.write("<table><tr><th>Rank</th><th>Active MPI call</th>"
              "<th>Waits for</th><th>Status</th></tr>\n")
    dead = set(result.deadlocked)
    for rank in sorted(conditions):
        cond = conditions[rank]
        cls = " class=\"dead\"" if rank in dead else ""
        waits = _render_condition(cond)
        status = "deadlocked" if rank in dead else "blocked (releasable)"
        out.write(
            f"<tr{cls}><td>{rank}</td>"
            f"<td><code>{html.escape(cond.op_description)}</code></td>"
            f"<td>{waits}</td><td>{status}</td></tr>\n"
        )
    out.write("</table>\n")

    if unexpected:
        out.write("<h2>Unexpected matches (Section 3.3)</h2>\n<ul>\n")
        for um in unexpected:
            out.write(
                "<li>wildcard receive at "
                f"<code>{um.receive}</code> could match active send at "
                f"<code>{um.candidate_send}</code> but was matched with "
                f"<code>{um.matched_send}</code>; consider re-running "
                "with implementation-adapted blocking semantics</li>\n"
            )
        out.write("</ul>\n")

    if blame:
        out.write("<h2>Blame chain</h2>\n<ol>\n")
        for line in blame:
            out.write(f"<li>{html.escape(line)}</li>\n")
        out.write("</ol>\n")

    if flight_tails:
        out.write("<h2>Flight recorder: last events per deadlocked rank"
                  "</h2>\n")
        for rank in sorted(flight_tails):
            tail = flight_tails[rank]
            out.write(f"<h3>Rank {rank} ({len(tail)} event(s))</h3>\n")
            out.write("<table><tr><th>#</th><th>t (sim s)</th>"
                      "<th>Event</th><th>Operation</th></tr>\n")
            for entry in tail:
                detail = entry.get("detail", "")
                out.write(
                    f"<tr><td>{entry.get('seq', '')}</td>"
                    f"<td>{entry.get('ts', '')}</td>"
                    f"<td>{html.escape(str(entry.get('event', '')))}</td>"
                    f"<td><code>{html.escape(str(detail))}</code></td></tr>\n"
                )
            out.write("</table>\n")

    out.write(f"<p>Wait-for graph: {len(graph.nodes)} node(s), "
              f"{graph.arc_count()} arc(s).</p>\n")
    if dot_text is not None:
        out.write("<h2>Wait-for graph (DOT)</h2>\n")
        out.write(f"<pre>{html.escape(dot_text)}</pre>\n")
    out.write("</body></html>\n")
    return out.getvalue()


def render_json_report(
    graph: WaitForGraph,
    result: DetectionResult,
    conditions: Mapping[int, WaitForCondition],
    *,
    flight_tails: Optional[Mapping[int, Sequence[Mapping[str, Any]]]] = None,
    blame: Sequence[str] = (),
) -> Dict[str, Any]:
    """The machine-readable counterpart of the HTML report."""
    cond_docs: List[Dict[str, Any]] = []
    dead = set(result.deadlocked)
    for rank in sorted(conditions):
        cond = conditions[rank]
        cond_docs.append(
            {
                "rank": rank,
                "op": cond.op_description,
                "deadlocked": rank in dead,
                "clauses": [
                    [{"rank": t.rank, "reason": t.reason} for t in clause]
                    for clause in cond.clauses
                ],
            }
        )
    return {
        "format": "repro-deadlock-report/1",
        "deadlocked": list(result.deadlocked),
        "releasable": list(result.releasable),
        "witness_cycle": list(result.witness_cycle),
        "conditions": cond_docs,
        "blame_chain": list(blame),
        "flight_tails": {
            str(rank): list(tail)
            for rank, tail in sorted((flight_tails or {}).items())
        },
        "wfg": {"nodes": len(graph.nodes), "arcs": graph.arc_count()},
    }


def _render_condition(cond: WaitForCondition) -> str:
    parts = []
    for clause in cond.clauses:
        if not clause:
            parts.append("<i>unsatisfiable (no possible partner)</i>")
        elif len(clause) == 1:
            parts.append(f"rank {clause[0].rank}")
        else:
            ranks = ", ".join(str(t.rank) for t in clause)
            parts.append(f"any of [{ranks}]")
    return " AND ".join(parts) if parts else "<i>nothing (tool anomaly)</i>"
