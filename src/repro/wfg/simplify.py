"""Wait-for graph simplification (the paper's proposed future work).

Section 6 observes that ``p^2``-arc graphs are neither renderable nor
human readable, and proposes "graph transformations and
simplifications, which could simplify wait-for information when we
communicate it towards the root, e.g., in our wildcard stress test we
would detect that all processes wait for all other processes with an
OR semantic". This module implements that aggregation:

* **Range compression** — an OR clause over a contiguous rank range is
  stored as a range, not an arc list (the wildcard case collapses from
  ``p-1`` arcs to one range arc);
* **Equivalence-class merging** — processes with identical operation
  kind and identical (rank-relative) wait pattern merge into one class
  node annotated with its member count.

The result is an :class:`AggregatedWfg` with its own DOT writer; the
ablation bench ``bench_ablation_simplify`` measures the output-size
and serialization-time reduction against the plain writer.
"""
from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.wfg.graph import WaitForGraph


@dataclass(frozen=True)
class RankSet:
    """A compressed set of ranks: sorted disjoint inclusive ranges."""

    ranges: Tuple[Tuple[int, int], ...]

    @classmethod
    def from_ranks(cls, ranks: Sequence[int]) -> "RankSet":
        if not ranks:
            return cls(())
        sorted_ranks = sorted(set(ranks))
        ranges: List[Tuple[int, int]] = []
        lo = hi = sorted_ranks[0]
        for r in sorted_ranks[1:]:
            if r == hi + 1:
                hi = r
            else:
                ranges.append((lo, hi))
                lo = hi = r
        ranges.append((lo, hi))
        return cls(tuple(ranges))

    def count(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def describe(self) -> str:
        return ",".join(
            f"{lo}" if lo == hi else f"{lo}-{hi}" for lo, hi in self.ranges
        )

    def __contains__(self, rank: int) -> bool:
        return any(lo <= rank <= hi for lo, hi in self.ranges)


@dataclass(frozen=True)
class AggregatedClause:
    """One clause of a class node.

    When ``exclude_self`` is set, each member of the class waits for
    any rank of ``targets`` other than itself — the normal form of the
    wildcard-receive pattern ("all processes wait for all other
    processes with an OR semantic", Section 6).
    """

    targets: RankSet
    exclude_self: bool = False

    def describe(self) -> str:
        suffix = " (except self)" if self.exclude_self else ""
        return f"{self.targets.describe()}{suffix}"


@dataclass
class AggregatedNode:
    """A class of processes sharing one wait pattern."""

    members: RankSet
    op_description: str
    #: AND of clauses; each clause an OR over a compressed rank set.
    clauses: Tuple[AggregatedClause, ...] = ()


@dataclass
class AggregatedWfg:
    """The simplified wait-for graph."""

    num_processes: int
    nodes: List[AggregatedNode] = field(default_factory=list)

    def arc_count(self) -> int:
        """Arcs after compression: one per (class, clause, range)."""
        return sum(
            len(clause.targets.ranges)
            for node in self.nodes
            for clause in node.clauses
        )


#: Equivalence-class key: (op pattern, normalized clause tuple).
_SignatureKey = Tuple[str, Tuple[Tuple[str, Tuple[int, ...]], ...]]


def _signature(rank: int, node_clauses: Sequence[Tuple[int, ...]],
               op_desc: str) -> _SignatureKey:
    """Pattern key for equivalence-class merging.

    Two processes merge when their operations render identically modulo
    their own rank and every clause matches under self-relative
    normalization: multi-target (OR) clauses compare as
    ``targets | {self}`` — so "waits for anyone but me" patterns merge
    regardless of the waiter's own rank — while singleton (AND) clauses
    compare absolutely. Relative patterns (neighbour exchanges) stay
    separate nodes; collapsing those soundly needs modular-offset
    analysis, which the paper leaves open as well.
    """
    clause_key = tuple(
        ("or", tuple(sorted(set(clause) | {rank})))
        if len(clause) > 1
        else ("and", tuple(clause))
        for clause in node_clauses
    )
    return (op_desc.split("@", 1)[0], clause_key)


def simplify(graph: WaitForGraph) -> AggregatedWfg:
    """Aggregate the wait-for graph into class nodes with range arcs."""
    groups: Dict[_SignatureKey, List[int]] = {}
    for rank in sorted(graph.nodes):
        node = graph.nodes[rank]
        key = _signature(rank, node.clauses, node.op_description)
        groups.setdefault(key, []).append(rank)

    agg = AggregatedWfg(num_processes=graph.num_processes)
    for key, members in groups.items():
        clauses = []
        for kind, targets in key[1]:
            if kind == "or":
                clauses.append(
                    AggregatedClause(
                        targets=RankSet.from_ranks(targets), exclude_self=True
                    )
                )
            else:
                clauses.append(
                    AggregatedClause(targets=RankSet.from_ranks(targets))
                )
        agg.nodes.append(
            AggregatedNode(
                members=RankSet.from_ranks(members),
                op_description=key[0],
                clauses=tuple(clauses),
            )
        )
    return agg


def render_aggregated_dot(agg: AggregatedWfg, *, name: str = "wfg") -> str:
    """DOT text for the simplified graph: one node per class."""
    out = io.StringIO()
    out.write(f"digraph {name} {{\n  rankdir=LR;\n")
    out.write("  node [shape=box, fontname=\"Helvetica\"];\n")
    for idx, node in enumerate(agg.nodes):
        label = (
            f"ranks {node.members.describe()} ({node.members.count()}): "
            f"{node.op_description}"
        )
        label = label.replace("\"", "\\\"")
        out.write(f"  c{idx} [label=\"{label}\"];\n")
    # Arcs between classes: a class arc exists when a clause's rank set
    # intersects the member set of the target class.
    for si, src in enumerate(agg.nodes):
        for clause in src.clauses:
            for di, dst in enumerate(agg.nodes):
                if _ranges_intersect(clause.targets.ranges, dst.members.ranges):
                    attrs = (
                        f" [style=dashed, label=\"any of {clause.describe()}\"]"
                        if clause.targets.count() > 1
                        else ""
                    )
                    out.write(f"  c{si} -> c{di}{attrs};\n")
    out.write("}\n")
    return out.getvalue()


def _ranges_intersect(
    a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...]
) -> bool:
    for lo1, hi1 in a:
        for lo2, hi2 in b:
            if lo1 <= hi2 and lo2 <= hi1:
                return True
    return False
