"""DOT (Graphviz) rendering of wait-for graphs.

The paper's Figure 10(b) shows that at scale the DOT serialization of
the wait-for graph dominates total detection time (~75% for the
``p^2``-arc wildcard case). This writer is therefore deliberately the
straightforward one-arc-per-line serializer the measurement is about;
:mod:`repro.wfg.simplify` implements the paper's proposed remedy.
"""
from __future__ import annotations

import io
from typing import Optional, Set

from repro.wfg.detect import DetectionResult
from repro.wfg.graph import WaitForGraph


def render_dot(
    graph: WaitForGraph,
    result: Optional[DetectionResult] = None,
    *,
    name: str = "wfg",
) -> str:
    """Serialize the wait-for graph to DOT text.

    Deadlocked processes (when a detection result is given) are drawn
    filled; OR clauses (more than one target) use dashed arcs labelled
    with the clause index, matching MUST's OR-semantic rendering.
    """
    deadlocked: Set[int] = set(result.deadlocked) if result else set()
    out = io.StringIO()
    out.write(f"digraph {name} {{\n")
    out.write("  rankdir=LR;\n")
    out.write("  node [shape=box, fontname=\"Helvetica\"];\n")
    for rank in sorted(graph.nodes):
        node = graph.nodes[rank]
        style = ", style=filled, fillcolor=\"#ffcccc\"" if rank in deadlocked else ""
        label = f"{rank}: {_escape(node.op_description)}"
        out.write(f"  n{rank} [label=\"{label}\"{style}];\n")
    # Targets that are not blocked themselves still need node stubs.
    stubs = set()
    for node in graph.nodes.values():
        for clause in node.clauses:
            for dst in clause:
                if dst not in graph.nodes and dst not in stubs:
                    stubs.add(dst)
    for dst in sorted(stubs):
        tag = "(finished)" if dst in graph.finished else "(running)"
        out.write(f"  n{dst} [label=\"{dst}: {tag}\", style=dotted];\n")
    for rank in sorted(graph.nodes):
        node = graph.nodes[rank]
        for ci, clause in enumerate(node.clauses):
            attrs = ""
            if len(clause) > 1:
                attrs = f" [style=dashed, label=\"OR[{ci}]\"]"
            for dst in clause:
                out.write(f"  n{rank} -> n{dst}{attrs};\n")
    out.write("}\n")
    return out.getvalue()


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\"", "\\\"")
