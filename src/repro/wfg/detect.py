"""Graph-based deadlock detection on the AND/OR wait-for graph [9].

The criterion is a liveness fixpoint, the standard generalization of
"cycle" (pure AND) and "knot" (pure OR) criteria to AND⊕OR graphs:

* every process *not* in the graph (not blocked) is live;
* a blocked process becomes live when each of its clauses contains at
  least one live target (all its AND legs can be released, each via
  some OR alternative);
* processes never becoming live are deadlocked.

For the terminal state of the transition system this is a necessary
and sufficient deadlock criterion; for intermediate states it never
produces false positives (a reported process truly can never advance
given the current matching) — Section 3.2.

A *witness cycle* through the deadlocked set is also computed for
human-readable reports, mirroring MUST's report of the dependency
cycle (e.g. the two-process send-send cycle of 126.lammps).
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.wfg.graph import WaitForGraph


@dataclass
class DetectionResult:
    """Outcome of one graph-based deadlock check."""

    deadlocked: Tuple[int, ...]
    #: Blocked processes that the fixpoint proved releasable.
    releasable: Tuple[int, ...]
    #: A dependency cycle inside the deadlocked set, when one exists
    #: (for pure-AND deadlocks a cycle always exists).
    witness_cycle: Tuple[int, ...] = ()

    @property
    def has_deadlock(self) -> bool:
        return bool(self.deadlocked)


def detect_deadlock(graph: WaitForGraph) -> DetectionResult:
    """Run the liveness fixpoint and extract a witness cycle.

    Finished processes are excluded from the live seeds: they produce
    no further operations, so they can release nobody. A blocked
    process all of whose alternatives point at finished processes is
    therefore deadlocked even without a dependency cycle.
    """
    live: Set[int] = (
        set(range(graph.num_processes))
        - graph.blocked_ranks
        - graph.finished
    )

    # Counting fixpoint: for each blocked node, the number of clauses
    # that do not yet contain a live target; per (node, clause) the
    # remaining non-live targets are implicit — we recount lazily via
    # reverse arcs, which keeps the pass O(arcs).
    waiting_clauses: Dict[int, List[Set[int]]] = {}
    reverse: Dict[int, List[Tuple[int, int]]] = {}
    unsatisfied: Dict[int, int] = {}
    for rank, node in graph.nodes.items():
        clause_sets: List[Set[int]] = []
        pending = 0
        for ci, clause in enumerate(node.clauses):
            targets = set(clause)
            if targets & live:
                clause_sets.append(set())  # already satisfied
                continue
            clause_sets.append(targets)
            pending += 1
            for dst in targets:
                reverse.setdefault(dst, []).append((rank, ci))
        waiting_clauses[rank] = clause_sets
        unsatisfied[rank] = pending

    queue: deque[int] = deque(
        rank for rank, pending in unsatisfied.items() if pending == 0
    )
    newly_live: Set[int] = set(queue)
    # Every initially-live process can release its dependents too.
    release_queue: deque[int] = deque(live)
    release_queue.extend(queue)

    while release_queue:
        releaser = release_queue.popleft()
        for rank, ci in reverse.get(releaser, ()):  # clauses watching it
            if rank in newly_live:
                continue
            clause = waiting_clauses[rank][ci]
            if not clause:
                continue  # clause already satisfied earlier
            clause.clear()
            unsatisfied[rank] -= 1
            if unsatisfied[rank] == 0:
                newly_live.add(rank)
                release_queue.append(rank)

    deadlocked = sorted(graph.blocked_ranks - newly_live)
    releasable = sorted(graph.blocked_ranks & newly_live)
    cycle = _witness_cycle(graph, set(deadlocked)) if deadlocked else ()
    return DetectionResult(
        deadlocked=tuple(deadlocked),
        releasable=tuple(releasable),
        witness_cycle=tuple(cycle),
    )


def _witness_cycle(graph: WaitForGraph, deadlocked: Set[int]) -> Sequence[int]:
    """Find a cycle within the deadlocked set for the report.

    Follows, from an arbitrary deadlocked process, one deadlocked
    successor per step (each deadlocked node has a clause whose targets
    are all non-live, hence deadlocked or blocked-forever); the walk
    must revisit a node within |deadlocked| steps.
    """
    if not deadlocked:
        return ()
    start = min(deadlocked)
    path: List[int] = [start]
    seen: Dict[int, int] = {start: 0}
    current = start
    for _ in range(len(deadlocked) + 1):
        nxt = _deadlocked_successor(graph, current, deadlocked)
        if nxt is None:
            return ()  # degenerate: an empty clause (unsatisfiable wait)
        if nxt in seen:
            return path[seen[nxt]:]
        seen[nxt] = len(path)
        path.append(nxt)
        current = nxt
    return ()


def _deadlocked_successor(
    graph: WaitForGraph, rank: int, deadlocked: Set[int]
) -> Optional[int]:
    node = graph.nodes.get(rank)
    if node is None:
        return None
    for clause in node.clauses:
        in_dead = [dst for dst in clause if dst in deadlocked]
        blocked_forever = [
            dst for dst in clause
            if dst in deadlocked or dst in graph.finished
        ]
        if len(blocked_forever) == len(clause) and in_dead:
            return min(in_dead)
    # Fall back to any deadlocked target of any clause.
    for clause in node.clauses:
        for dst in clause:
            if dst in deadlocked:
                return dst
    return None
