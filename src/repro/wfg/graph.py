"""The AND/OR wait-for graph (WFG) built at the TBON root.

Nodes are blocked processes; each node carries the CNF wait-for
condition gathered via ``requestWaits``. An arc ``a -> b`` means "a
waits for b"; arcs are grouped into clauses: a node can proceed once
*every* clause has at least one target that can proceed (AND over
clauses, OR within a clause). The paper's pure-AND nodes (collectives,
Waitall, directed p2p) are size-1 clauses; its OR nodes (wildcard
receives, Waitany) are single multi-target clauses.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.waitfor import WaitForCondition


@dataclass
class WfgNode:
    """A blocked process in the wait-for graph."""

    rank: int
    op_description: str
    #: AND of clauses; each clause an OR of target ranks (parallel
    #: arrays with reasons for report rendering).
    clauses: List[Tuple[int, ...]] = field(default_factory=list)
    reasons: List[Tuple[str, ...]] = field(default_factory=list)


class WaitForGraph:
    """A wait-for graph over a fixed process universe.

    ``finished`` marks processes that terminated (reached MPI_Finalize
    or the end of a complete trace): they are neither blocked nor able
    to release anyone — a wait targeting only finished processes is
    permanently unsatisfiable.
    """

    def __init__(
        self, num_processes: int, finished: Set[int] | None = None
    ) -> None:
        if num_processes <= 0:
            raise ValueError("process universe must be non-empty")
        self.num_processes = num_processes
        self.nodes: Dict[int, WfgNode] = {}
        self.finished: Set[int] = set(finished or ())

    @classmethod
    def from_conditions(
        cls,
        num_processes: int,
        conditions: Iterable[WaitForCondition],
        finished: Set[int] | None = None,
    ) -> "WaitForGraph":
        graph = cls(num_processes, finished=finished)
        for cond in conditions:
            graph.add_condition(cond)
        return graph

    def add_condition(self, cond: WaitForCondition) -> None:
        if cond.rank in self.nodes:
            raise ValueError(f"rank {cond.rank} added twice")
        if cond.rank in self.finished:
            raise ValueError(f"rank {cond.rank} is finished, not blocked")
        if not (0 <= cond.rank < self.num_processes):
            raise ValueError(f"rank {cond.rank} outside universe")
        node = WfgNode(rank=cond.rank, op_description=cond.op_description)
        for clause in cond.clauses:
            node.clauses.append(tuple(t.rank for t in clause))
            node.reasons.append(tuple(t.reason for t in clause))
        self.nodes[cond.rank] = node

    @property
    def blocked_ranks(self) -> Set[int]:
        return set(self.nodes)

    def arc_count(self) -> int:
        return sum(
            len(clause) for node in self.nodes.values() for clause in node.clauses
        )

    def arcs(self) -> Iterable[Tuple[int, int, int]]:
        """Yield ``(src, dst, clause_index)`` for every arc."""
        for node in self.nodes.values():
            for ci, clause in enumerate(node.clauses):
                for dst in clause:
                    yield node.rank, dst, ci

    def successors(self, rank: int) -> Set[int]:
        node = self.nodes.get(rank)
        if node is None:
            return set()
        return {dst for clause in node.clauses for dst in clause}
