"""Wait-for graphs: construction, deadlock criterion, DOT/HTML output."""
from repro.wfg.compare import cycles_equivalent, deadlock_sets_agree, normalize_cycle
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.dot import render_dot
from repro.wfg.graph import WaitForGraph, WfgNode
from repro.wfg.report import render_html_report
from repro.wfg.simplify import AggregatedWfg, RankSet, render_aggregated_dot, simplify

__all__ = [
    "AggregatedWfg",
    "DetectionResult",
    "RankSet",
    "WaitForGraph",
    "WfgNode",
    "cycles_equivalent",
    "deadlock_sets_agree",
    "detect_deadlock",
    "normalize_cycle",
    "render_aggregated_dot",
    "render_dot",
    "render_html_report",
    "simplify",
]
