"""Comparing deadlock reports from different detection paths.

The static match-set explorer (`repro.analysis.explore`) and the
runtime trace analysis (`repro.core.waitstate`) both end in a WFG
deadlock check. When a witness schedule is replayed, the two reports
must agree; these helpers define "agree" precisely:

* deadlocked sets compare as sets (detection order is irrelevant), and
* witness cycles compare up to rotation — a cycle is an equivalence
  class of its rotations, and either path may enter it at a different
  node. Direction is NOT normalized: both paths walk successor arcs,
  so a reversed cycle would indicate a genuinely different graph.
"""
from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def normalize_cycle(cycle: Sequence[int]) -> Tuple[int, ...]:
    """Canonical rotation of a cycle: start at the smallest rank."""
    if not cycle:
        return ()
    pivot = min(range(len(cycle)), key=lambda i: cycle[i])
    return tuple(cycle[pivot:]) + tuple(cycle[:pivot])


def cycles_equivalent(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when the cycles are rotations of each other (or both empty)."""
    return normalize_cycle(a) == normalize_cycle(b)


def deadlock_sets_agree(a: Iterable[int], b: Iterable[int]) -> bool:
    """True when both reports name the same deadlocked ranks."""
    return set(a) == set(b)
