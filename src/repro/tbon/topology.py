"""Tree-Based Overlay Network topology.

The tool runs in a TBON over the application: layer 0 are the ``p``
application processes, layer 1 the first tool layer (one node per
``fan_in`` application processes — these run distributed p2p matching
and wait state tracking), higher layers aggregate towards a single
root (which matches collectives tree-wide and runs the centralized
graph detection).

Node identifiers are integers: application ranks are ``0..p-1`` and
tool nodes continue the numbering upward layer by layer, so channel
keys and placement tables stay simple.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class TbonTopology:
    """An immutable TBON layout."""

    num_ranks: int
    fan_in: int
    #: layers[0] = application ranks; layers[-1] = (root,).
    layers: Tuple[Tuple[int, ...], ...]
    parent_of: Dict[int, int] = field(hash=False)
    children_of: Dict[int, Tuple[int, ...]] = field(hash=False)

    @classmethod
    def build(cls, num_ranks: int, fan_in: int) -> "TbonTopology":
        if num_ranks <= 0:
            raise ValueError("need at least one application rank")
        if fan_in < 2:
            raise ValueError("fan-in must be at least 2")
        layers: List[Tuple[int, ...]] = [tuple(range(num_ranks))]
        parent: Dict[int, int] = {}
        children: Dict[int, Tuple[int, ...]] = {}
        next_id = num_ranks
        current = layers[0]
        while len(current) > 1 or len(layers) == 1:
            upper: List[int] = []
            for start in range(0, len(current), fan_in):
                group = current[start:start + fan_in]
                node = next_id
                next_id += 1
                upper.append(node)
                children[node] = tuple(group)
                for child in group:
                    parent[child] = node
            layers.append(tuple(upper))
            current = tuple(upper)
            if len(current) == 1:
                break
        if len(layers) == 2:
            # Always give the tree a dedicated root above the first tool
            # layer: first-layer nodes run wait-state tracking, the root
            # runs collective matching and graph detection — distinct
            # roles even when a single first-layer node would suffice.
            root = next_id
            children[root] = (current[0],)
            parent[current[0]] = root
            layers.append((root,))
        return cls(
            num_ranks=num_ranks,
            fan_in=fan_in,
            layers=tuple(layers),
            parent_of=parent,
            children_of=children,
        )

    # -- structural queries -------------------------------------------------

    @property
    def root(self) -> int:
        return self.layers[-1][0]

    @property
    def first_layer(self) -> Tuple[int, ...]:
        """The tool nodes that receive application events directly."""
        return self.layers[1]

    @property
    def tool_nodes(self) -> Tuple[int, ...]:
        nodes: List[int] = []
        for layer in self.layers[1:]:
            nodes.extend(layer)
        return tuple(nodes)

    @property
    def num_tool_nodes(self) -> int:
        return sum(len(layer) for layer in self.layers[1:])

    def parent(self, node: int) -> int:
        try:
            return self.parent_of[node]
        except KeyError:
            raise KeyError(f"node {node} has no parent (root?)") from None

    def children(self, node: int) -> Tuple[int, ...]:
        return self.children_of.get(node, ())

    def layer_of(self, node: int) -> int:
        for idx, layer in enumerate(self.layers):
            if node in layer:
                return idx
        raise KeyError(f"unknown node {node}")

    def is_first_layer(self, node: int) -> bool:
        """True when ``node`` is a first-layer tool node.

        Layer membership is contiguous by construction (first-layer
        ids directly follow the application ranks), so this is an O(1)
        range check — the sharded backend calls it per routed message.
        """
        first = self.layers[1]
        return first[0] <= node <= first[-1]

    def host_of_rank(self, rank: int) -> int:
        """The first-layer tool node that hosts application rank ``rank``."""
        if not (0 <= rank < self.num_ranks):
            raise KeyError(f"rank {rank} outside application")
        return self.parent_of[rank]

    def ranks_of_host(self, node: int) -> Tuple[int, ...]:
        """Application ranks reporting to first-layer node ``node``."""
        if node not in self.layers[1]:
            raise KeyError(f"node {node} is not in the first tool layer")
        return self.children_of[node]

    def ranks_under(self, node: int) -> Tuple[int, ...]:
        """All application ranks in the subtree rooted at ``node``."""
        if node < self.num_ranks:
            return (node,)
        out: List[int] = []
        stack = [node]
        while stack:
            n = stack.pop()
            for child in self.children_of.get(n, ()):
                if child < self.num_ranks:
                    out.append(child)
                else:
                    stack.append(child)
        return tuple(sorted(out))

    def path_to_root(self, node: int) -> Tuple[int, ...]:
        path = [node]
        while path[-1] != self.root:
            path.append(self.parent_of[path[-1]])
        return tuple(path)
