"""TBON substrate: topology, channels, discrete-event network."""
from repro.tbon.aggregation import WaveAggregator, WaveContribution
from repro.tbon.network import (
    LatencyModel,
    Network,
    fixed_latency,
    jittered_latency,
)
from repro.tbon.topology import TbonTopology

__all__ = [
    "LatencyModel",
    "Network",
    "TbonTopology",
    "WaveAggregator",
    "WaveContribution",
    "fixed_latency",
    "jittered_latency",
]
