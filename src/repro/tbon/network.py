"""Discrete-event simulation of the TBON's message transport.

GTI's transport guarantees the distributed algorithm relies on are:
(1) channels are non-overtaking — per (source, destination) pair,
messages are handled in send order; and (2) every message eventually
arrives. The simulator provides exactly these guarantees while
otherwise delivering adversarially: per-message latency comes from a
pluggable model (deterministic constants for the cost studies, seeded
random jitter for protocol stress tests), and each node processes one
message at a time with a configurable per-message cost.

Handlers run inside the simulation: a node's ``handle`` may call
:meth:`Network.send`, and time advances only through the event queue —
there is no wall-clock dependence anywhere.
"""
from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from repro.obs.events import PID_TBON
from repro.obs.observer import NULL_OBSERVER, Observer

#: Emit one "tbon.queue" counter sample every this many deliveries.
_QUEUE_SAMPLE_EVERY = 64


class Node(Protocol):
    """Anything attachable to the network."""

    node_id: int

    def handle(self, msg: object, net: "Transport", src: int) -> None:
        ...


class Transport(Protocol):
    """What a node may assume about its transport.

    Both the simulated :class:`Network` (the inline backend) and the
    sharded backend's per-worker ``ShardNetwork`` satisfy this: a FIFO
    ``send``, a monotonic clock ``now``, and the observer handle. Node
    implementations (`repro.core.distributed` / `repro.core.treenodes`)
    are written against this protocol so the same handler code runs
    unchanged in-process and across shard workers.
    """

    obs: object

    @property
    def now(self) -> float:
        ...

    def send(self, src: int, dst: int, msg: object, size: int = 64) -> None:
        ...


class LatencyModel(Protocol):
    def __call__(self, src: int, dst: int, size: int) -> float:
        ...


def fixed_latency(seconds: float = 1e-6) -> LatencyModel:
    """Constant link latency (useful for unit tests)."""

    def model(src: int, dst: int, size: int) -> float:
        return seconds

    return model


def jittered_latency(
    seed: int, base: float = 1e-6, jitter: float = 5e-6
) -> LatencyModel:
    """Seeded-random latency: adversarial cross-channel interleavings.

    Per-channel FIFO is still enforced by the network itself, so this
    only perturbs the relative order of *different* channels — exactly
    the freedom a real network has.
    """
    rng = random.Random(seed)

    def model(src: int, dst: int, size: int) -> float:
        return base + rng.random() * jitter

    return model


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    kind: str = "deliver"
    src: int = -1
    dst: int = -1
    msg: object = None
    callback: Optional[Callable[[], None]] = None


class Network:
    """The event queue, channels, and node registry."""

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        *,
        node_cost: float = 0.0,
        max_events: int = 200_000_000,
        observer: Observer | None = None,
    ) -> None:
        self._latency = latency_model or fixed_latency()
        self._node_cost = node_cost
        self._max_events = max_events
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._nodes: Dict[int, Node] = {}
        self._queue: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        #: Non-overtaking enforcement: earliest admissible delivery time
        #: per (src, dst) channel.
        self._channel_front: Dict[Tuple[int, int], float] = {}
        #: Node busy-until times (one message processed at a time).
        self._busy_until: Dict[int, float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self._deliveries = 0

    @property
    def now(self) -> float:
        return self._now

    def attach(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} attached twice")
        self._nodes[node.node_id] = node

    def send(self, src: int, dst: int, msg: object, size: int = 64) -> None:
        """Send ``msg`` from ``src`` to ``dst`` over the FIFO channel."""
        if dst not in self._nodes:
            raise KeyError(f"send to unattached node {dst}")
        latency = self._latency(src, dst, size)
        if latency < 0:
            raise ValueError("negative latency")
        arrival = self._now + latency
        key = (src, dst)
        front = self._channel_front.get(key, 0.0)
        arrival = max(arrival, front)
        # Strictly increase the channel front so same-instant messages
        # still dequeue in send order (seq breaks exact ties).
        self._channel_front[key] = arrival
        heapq.heappush(
            self._queue,
            _Event(time=arrival, seq=next(self._seq), src=src, dst=dst,
                   msg=msg),
        )
        self.messages_sent += 1
        self.bytes_sent += size
        if self.obs.enabled:
            mtype = type(msg).__name__
            self.obs.metrics.inc(f"tbon.sent.{mtype}")
            self.obs.metrics.inc(f"tbon.sent_bytes.{mtype}", size)
            # Untyped total: the live monitor derives its channel
            # backlog (sent - delivered) from this pair without
            # enumerating per-type counters every tick.
            self.obs.metrics.inc("tbon.sent_total")

    def call_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(
            self._queue,
            _Event(time=time, seq=next(self._seq), kind="call",
                   callback=callback),
        )

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self._now + delay, callback)

    def run(self, until: float | None = None) -> float:
        """Process events (optionally up to simulated time ``until``).

        Returns the current simulated time: ``until`` when a bound was
        given (the clock always advances to it, even when the event
        heap drains early), otherwise the time the queue drained at.
        ``idle()`` afterwards answers whether events remain past the
        bound — a drained heap at ``now == until`` is idle, a bounded
        stop with later events pending is not.
        """
        processed = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self._now = until
                return self._now
            event = heapq.heappop(self._queue)
            processed += 1
            if processed > self._max_events:
                raise RuntimeError(
                    f"network exceeded {self._max_events} events"
                )
            self._now = max(self._now, event.time)
            if event.kind == "call":
                assert event.callback is not None
                event.callback()
                continue
            node = self._nodes[event.dst]
            if self._node_cost > 0.0:
                # Serialize processing on the node: handling starts when
                # the node is free and occupies it for node_cost.
                start = max(self._now, self._busy_until.get(event.dst, 0.0))
                self._busy_until[event.dst] = start + self._node_cost
                self._now = max(self._now, start)
            if self.obs.enabled:
                mtype = type(event.msg).__name__
                self.obs.metrics.inc(f"tbon.recv.{mtype}")
                self.obs.metrics.inc("tbon.delivered_total")
                self.obs.metrics.gauge("tbon.queue_depth").set(
                    len(self._queue)
                )
                # A decimated counter track ("tbon.queue") so Perfetto
                # draws queue pressure over simulated time without one
                # sample per delivery bloating the artifact.
                self._deliveries += 1
                if self._deliveries % _QUEUE_SAMPLE_EVERY == 1:
                    self.obs.tracer.counter(
                        "tbon.queue",
                        ts=self._now * 1e6,
                        pid=PID_TBON,
                        values={"depth": float(len(self._queue))},
                    )
                self.obs.tracer.instant(
                    mtype,
                    cat="tbon.deliver",
                    ts=self._now * 1e6,
                    pid=PID_TBON,
                    tid=event.dst,
                    args={"src": event.src},
                )
            node.handle(event.msg, self, event.src)
        # The heap drained. A bounded run still owes the caller the
        # full interval: without this, run(until=T) returned the
        # pre-drain clock (the last event's time) whenever the heap
        # emptied at or before T, so back-to-back bounded runs saw
        # time jump backwards relative to the requested horizon.
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def idle(self) -> bool:
        """True when no events are pending (consistent with ``run``:
        after a bounded run, idle means the drain — not the bound —
        ended it)."""
        return not self._queue
