"""Order-preserving aggregation helpers for TBON tree flows [12].

Collective matching and the ``collectiveReady`` wait-state flow both
reduce per-wave contributions up the tree: an interior node forwards a
wave's message only once *all* of its descendant participants have
contributed. :class:`WaveAggregator` implements that per-key counting
together with the consistency checks (operation kind and root must
agree across every contribution — mismatches are MUST usage errors).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.mpi.constants import OpKind
from repro.util.errors import CollectiveMismatchError


@dataclass
class WaveContribution:
    """An aggregated contribution for one wave from one subtree."""

    count: int
    kind: OpKind
    root: Optional[int]


@dataclass
class _WaveSlot:
    expected: int
    count: int = 0
    kind: Optional[OpKind] = None
    root: Optional[int] = None
    emitted: bool = False


class WaveAggregator:
    """Per-key reduction with completeness threshold.

    ``expected`` is the number of descendant participants this node is
    responsible for (statically known from topology and group layout);
    :meth:`add` returns the aggregate exactly once, when the count
    reaches the threshold.
    """

    def __init__(self) -> None:
        self._slots: Dict[Hashable, _WaveSlot] = {}

    def add(
        self,
        key: Hashable,
        contribution: WaveContribution,
        expected: int,
    ) -> Optional[WaveContribution]:
        if expected <= 0:
            raise ValueError("expected participant count must be positive")
        if contribution.count <= 0:
            raise ValueError("contribution must cover at least one rank")
        slot = self._slots.get(key)
        if slot is None:
            slot = _WaveSlot(expected=expected)
            self._slots[key] = slot
        if slot.expected != expected:
            raise CollectiveMismatchError(
                f"wave {key}: inconsistent expected participant count"
            )
        if slot.kind is None:
            slot.kind = contribution.kind
            slot.root = contribution.root
        else:
            if slot.kind is not contribution.kind:
                raise CollectiveMismatchError(
                    f"wave {key}: {contribution.kind.value} aggregated "
                    f"where {slot.kind.value} expected"
                )
            if slot.root != contribution.root:
                raise CollectiveMismatchError(
                    f"wave {key}: root mismatch "
                    f"({contribution.root} vs {slot.root})"
                )
        slot.count += contribution.count
        if slot.count > slot.expected:
            raise CollectiveMismatchError(
                f"wave {key}: more contributions ({slot.count}) than "
                f"participants ({slot.expected})"
            )
        if slot.count == slot.expected and not slot.emitted:
            slot.emitted = True
            return WaveContribution(
                count=slot.count, kind=slot.kind, root=slot.root
            )
        return None

    def pending_keys(self) -> Tuple[Hashable, ...]:
        return tuple(
            key for key, slot in self._slots.items() if not slot.emitted
        )
