"""repro: runtime MPI deadlock detection with distributed wait state tracking.

A from-scratch reproduction of Hilbrich et al., "Distributed Wait State
Tracking for Runtime MPI Deadlock Detection" (SC '13) — the scalable
deadlock-detection architecture of the MUST tool — including every
substrate it needs: a virtual MPI runtime, distributed point-to-point
and collective matching, a simulated tree-based overlay network (TBON),
the wait state transition system and its distributed implementation,
AND/OR wait-for-graph deadlock detection with DOT/HTML reports, and a
performance model that regenerates the paper's evaluation figures.

Quickstart::

    from repro import Session

    def worker(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer)   # recv-recv deadlock (Fig. 2a)
        yield rank.send(dest=peer)
        yield rank.finalize()

    with Session() as session:
        outcome = session.run([worker, worker])
        assert outcome.has_deadlock

The :class:`Session` facade (with :class:`AnalysisConfig`) is the
stable entry point; ``Session(backend="sharded", shards=4)`` runs the
analysis across worker processes. The older free functions
(:func:`run_programs`, :func:`analyze_trace`,
:func:`detect_deadlocks_distributed`) remain importable here as
deprecation shims for one release.
"""
import functools as _functools
import warnings as _warnings

from repro.api import AnalysisConfig, Session
from repro.backend import (
    AnalysisBackend,
    InlineBackend,
    ShardedBackend,
    make_backend,
)
from repro.core import (
    AdaptiveAnalysis,
    Verdict,
    analyze_with_adaptation,
    DeadlockAnalysis,
    DistributedDeadlockDetector,
    DistributedOutcome,
    TransitionSystem,
    analyze_trace as _analyze_trace,
    detect_deadlocks_distributed as _detect_deadlocks_distributed,
)
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    BlockingSemantics,
    MatchedTrace,
    OpKind,
    Trace,
)
from repro.runtime import Rank, RunResult, run_programs as _run_programs

__version__ = "1.1.0"


def _deprecated_shim(func, replacement: str):
    """Wrap a legacy free function with a DeprecationWarning.

    The shims keep the exact signature and behaviour of the originals
    (which stay importable, warning-free, from their home modules) for
    one release — see README "Backends & the Session API".
    """

    @_functools.wraps(func)
    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{func.__name__} is deprecated; use {replacement}. "
            "The shim will be removed one release after 1.1.",
            DeprecationWarning,
            stacklevel=2,
        )
        return func(*args, **kwargs)

    return shim


run_programs = _deprecated_shim(
    _run_programs, "repro.Session(...).record(programs)"
)
analyze_trace = _deprecated_shim(
    _analyze_trace, "repro.Session(...).analyze(trace) (inline backend)"
)
detect_deadlocks_distributed = _deprecated_shim(
    _detect_deadlocks_distributed, "repro.Session(...).analyze(trace)"
)

__all__ = [
    "ANY_SOURCE",
    "AdaptiveAnalysis",
    "AnalysisBackend",
    "AnalysisConfig",
    "Verdict",
    "analyze_with_adaptation",
    "ANY_TAG",
    "PROC_NULL",
    "BlockingSemantics",
    "DeadlockAnalysis",
    "DistributedDeadlockDetector",
    "DistributedOutcome",
    "InlineBackend",
    "MatchedTrace",
    "OpKind",
    "Rank",
    "RunResult",
    "Session",
    "ShardedBackend",
    "Trace",
    "TransitionSystem",
    "analyze_trace",
    "detect_deadlocks_distributed",
    "make_backend",
    "run_programs",
    "__version__",
]
