"""repro: runtime MPI deadlock detection with distributed wait state tracking.

A from-scratch reproduction of Hilbrich et al., "Distributed Wait State
Tracking for Runtime MPI Deadlock Detection" (SC '13) — the scalable
deadlock-detection architecture of the MUST tool — including every
substrate it needs: a virtual MPI runtime, distributed point-to-point
and collective matching, a simulated tree-based overlay network (TBON),
the wait state transition system and its distributed implementation,
AND/OR wait-for-graph deadlock detection with DOT/HTML reports, and a
performance model that regenerates the paper's evaluation figures.

Quickstart::

    from repro import run_programs, analyze_trace

    def worker(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer)   # recv-recv deadlock (Fig. 2a)
        yield rank.send(dest=peer)
        yield rank.finalize()

    result = run_programs([worker, worker])
    analysis = analyze_trace(result.matched)
    assert analysis.has_deadlock
"""
from repro.core import (
    AdaptiveAnalysis,
    Verdict,
    analyze_with_adaptation,
    DeadlockAnalysis,
    DistributedDeadlockDetector,
    DistributedOutcome,
    TransitionSystem,
    analyze_trace,
    detect_deadlocks_distributed,
)
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    BlockingSemantics,
    MatchedTrace,
    OpKind,
    Trace,
)
from repro.runtime import Rank, RunResult, run_programs

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "AdaptiveAnalysis",
    "Verdict",
    "analyze_with_adaptation",
    "ANY_TAG",
    "PROC_NULL",
    "BlockingSemantics",
    "DeadlockAnalysis",
    "DistributedDeadlockDetector",
    "DistributedOutcome",
    "MatchedTrace",
    "OpKind",
    "Rank",
    "RunResult",
    "Trace",
    "TransitionSystem",
    "analyze_trace",
    "detect_deadlocks_distributed",
    "run_programs",
    "__version__",
]
