"""repro: runtime MPI deadlock detection with distributed wait state tracking.

A from-scratch reproduction of Hilbrich et al., "Distributed Wait State
Tracking for Runtime MPI Deadlock Detection" (SC '13) — the scalable
deadlock-detection architecture of the MUST tool — including every
substrate it needs: a virtual MPI runtime, distributed point-to-point
and collective matching, a simulated tree-based overlay network (TBON),
the wait state transition system and its distributed implementation,
AND/OR wait-for-graph deadlock detection with DOT/HTML reports, and a
performance model that regenerates the paper's evaluation figures.

Quickstart::

    from repro import Session

    def worker(rank):
        peer = 1 - rank.rank
        yield rank.recv(source=peer)   # recv-recv deadlock (Fig. 2a)
        yield rank.send(dest=peer)
        yield rank.finalize()

    with Session() as session:
        outcome = session.run([worker, worker])
        assert outcome.has_deadlock

The :class:`Session` facade (with :class:`AnalysisConfig`) is the
stable entry point; ``Session(backend="sharded", shards=4)`` runs the
analysis across worker processes. The pre-1.1 free functions
(``run_programs``, ``analyze_trace``,
``detect_deadlocks_distributed``) completed their one-release
deprecation window in 1.1 and are no longer importable from this
package — importing them raises :class:`AttributeError` naming the
:class:`Session` replacement. The originals remain available from
their home modules (``repro.runtime.run_programs``,
``repro.core.analyze_trace``,
``repro.core.detect_deadlocks_distributed``) for internal use.
"""
from repro.api import AnalysisConfig, Session
from repro.backend import (
    AnalysisBackend,
    InlineBackend,
    ShardedBackend,
    make_backend,
)
from repro.core import (
    AdaptiveAnalysis,
    Verdict,
    analyze_with_adaptation,
    DeadlockAnalysis,
    DistributedDeadlockDetector,
    DistributedOutcome,
    TransitionSystem,
)
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    BlockingSemantics,
    MatchedTrace,
    OpKind,
    Trace,
)
from repro.runtime import Rank, RunResult

__version__ = "1.2.0"

#: Legacy names removed after their one-release deprecation window
#: (shims in 1.1), mapped to the v1 replacement the error names.
_REMOVED_LEGACY = {
    "run_programs": (
        "repro.Session(...).record(programs) "
        "(the original stays at repro.runtime.run_programs)"
    ),
    "analyze_trace": (
        "repro.Session(...).analyze(trace) "
        "(the original stays at repro.core.analyze_trace)"
    ),
    "detect_deadlocks_distributed": (
        "repro.Session(...).analyze(trace) "
        "(the original stays at repro.core.detect_deadlocks_distributed)"
    ),
}


def __getattr__(name: str):
    if name in _REMOVED_LEGACY:
        raise AttributeError(
            f"repro.{name} was removed in 1.2 (deprecated since 1.1); "
            f"use {_REMOVED_LEGACY[name]}"
        )
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "ANY_SOURCE",
    "AdaptiveAnalysis",
    "AnalysisBackend",
    "AnalysisConfig",
    "Verdict",
    "analyze_with_adaptation",
    "ANY_TAG",
    "PROC_NULL",
    "BlockingSemantics",
    "DeadlockAnalysis",
    "DistributedDeadlockDetector",
    "DistributedOutcome",
    "InlineBackend",
    "MatchedTrace",
    "OpKind",
    "Rank",
    "RunResult",
    "Session",
    "ShardedBackend",
    "Trace",
    "TransitionSystem",
    "make_backend",
    "__version__",
]
