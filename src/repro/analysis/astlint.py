"""Source-level lint for rank programs (no execution required).

Rank programs drive the virtual MPI runtime by *yielding* call
descriptors built on their :class:`~repro.runtime.program.Rank`
handle. That protocol has sharp edges a pure AST pass can catch:

* ``rank.send(...)`` without ``yield`` builds a descriptor and drops
  it — the call never reaches the engine (the classic forgotten-yield
  bug, the static analogue of a lost message);
* ``yield from`` and ``yield`` confusion: composite helpers
  (``sendrecv``, ``startall``) are sub-generators and need ``yield
  from``, single-call builders must not use it;
* collectives issued under a rank-dependent branch with different
  collective sequences per branch — the textbook root/kind mismatch
  pattern (Section 2's erroneous applications);
* literal tags outside the portable ``[0, MPI_TAG_UB]`` window;
* ``MPI_ANY_SOURCE`` used as a send destination.

Findings are :class:`~repro.checks.findings.CheckFinding` records with
``rank=None`` (source findings are per-program, not per-process) and a
``file:line`` location.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from repro.checks.findings import CheckFinding, Severity
from repro.checks.local import MIN_TAG_UB

SEND_METHODS = frozenset(
    {"send", "ssend", "bsend", "rsend", "isend", "issend", "ibsend",
     "irsend", "send_init"}
)
RECV_METHODS = frozenset(
    {"recv", "irecv", "recv_init", "probe", "iprobe"}
)
COLLECTIVE_METHODS = frozenset(
    {"barrier", "bcast", "reduce", "allreduce", "gather", "scatter",
     "allgather", "alltoall", "scan", "reduce_scatter", "comm_dup",
     "comm_split", "comm_create", "comm_free"}
)
COMPLETION_METHODS = frozenset(
    {"wait", "waitall", "waitany", "waitsome", "test", "testall",
     "testany", "testsome"}
)
OTHER_PLAIN_METHODS = frozenset({"start", "request_free", "finalize"})
#: Builders returning a *sub-generator*: must be driven by yield-from.
GENERATOR_METHODS = frozenset({"sendrecv", "startall"})
#: Builders returning a single call: must be the value of a plain yield.
PLAIN_METHODS = (
    SEND_METHODS | RECV_METHODS | COLLECTIVE_METHODS
    | COMPLETION_METHODS | OTHER_PLAIN_METHODS
)
ALL_METHODS = PLAIN_METHODS | GENERATOR_METHODS

#: Names that denote MPI_ANY_SOURCE in source text.
_ANY_SOURCE_NAMES = frozenset({"ANY_SOURCE", "MPI_ANY_SOURCE"})


@dataclass
class RankProgram:
    """A module-level function recognized as a rank program."""

    node: ast.FunctionDef
    handle: str  # parameter name of the Rank handle

    @property
    def name(self) -> str:
        return self.node.name


def _int_literal(node: ast.AST) -> Optional[int]:
    """The value of an integer literal, handling unary minus."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
    ):
        inner = _int_literal(node.operand)
        if inner is not None:
            return -inner
    return None


def _is_any_source(node: ast.AST) -> bool:
    value = _int_literal(node)
    if value == -1:
        return True
    if isinstance(node, ast.Name) and node.id in _ANY_SOURCE_NAMES:
        return True
    if isinstance(node, ast.Attribute) and node.attr in _ANY_SOURCE_NAMES:
        return True
    return False


def _handle_call(node: ast.AST, handles: Set[str]) -> Optional[str]:
    """Method name when ``node`` is ``<handle>.<mpi-method>(...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in ALL_METHODS:
        return None
    if not isinstance(func.value, ast.Name):
        return None
    if func.value.id not in handles:
        return None
    return func.attr


def _scoped_walk(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _direct_yields(fn: ast.FunctionDef) -> List[ast.expr]:
    """Yield/YieldFrom nodes in ``fn``'s own scope (not nested defs)."""
    found: List[ast.expr] = []

    class Visitor(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not fn:
                return  # do not descend into nested functions
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Lambda(self, node: ast.Lambda) -> None:
            return

        def visit_Yield(self, node: ast.Yield) -> None:
            found.append(node)
            self.generic_visit(node)

        def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
            found.append(node)
            self.generic_visit(node)

    Visitor().visit(fn)
    return found


def _is_rank_program(fn: ast.FunctionDef) -> Optional[str]:
    """The handle parameter name when ``fn`` looks like a rank program.

    A rank program takes the handle as its first parameter and directly
    yields at least one MPI call built on it.
    """
    args = fn.args
    if not args.args:
        return None
    handle = args.args[0].arg
    for node in _direct_yields(fn):
        value = node.value
        if value is not None and _handle_call(value, {handle}):
            return handle
    return None


def find_rank_programs(tree: ast.Module) -> List[RankProgram]:
    """Module-level functions that are recognizably rank programs."""
    programs: List[RankProgram] = []
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        extra_required = len(node.args.args) - 1 - len(node.args.defaults)
        if extra_required > 0:
            continue  # cannot be called with just the Rank handle
        handle = _is_rank_program(node)
        if handle is not None:
            programs.append(RankProgram(node=node, handle=handle))
    return programs


@dataclass
class _Linter:
    filename: str
    findings: List[CheckFinding] = field(default_factory=list)

    def report(self, check: str, severity: Severity, node: ast.AST,
               message: str) -> None:
        self.findings.append(
            CheckFinding(
                check=check,
                severity=severity,
                rank=None,
                message=message,
                location=f"{self.filename}:{node.lineno}",
            )
        )

    # ------------------------------------------------------------------

    def lint_program(self, fn: ast.FunctionDef, handle: str) -> None:
        handles = {handle}
        self._collect_aliases(fn, handles)
        self._check_yield_discipline(fn, handles)
        self._check_rank_dependent_collectives(fn, handles)
        self._check_rank_dependent_collective_loops(fn, handles)
        for call in _scoped_walk(fn):
            method = _handle_call(call, handles)
            if method is None:
                continue
            self._check_call_arguments(call, method)  # type: ignore[arg-type]

    def _collect_aliases(self, fn: ast.FunctionDef,
                         handles: Set[str]) -> None:
        """Track simple handle aliases (``comm = rank``)."""
        for node in _scoped_walk(fn):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Name)
                and node.value.id in handles
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        handles.add(target.id)

    # -- yield discipline ----------------------------------------------

    def _check_yield_discipline(self, fn: ast.FunctionDef,
                                handles: Set[str]) -> None:
        yielded: Set[int] = set()
        yielded_from: Set[int] = set()
        for node in _scoped_walk(fn):
            if isinstance(node, ast.Yield) and node.value is not None:
                yielded.add(id(node.value))
            elif isinstance(node, ast.YieldFrom):
                yielded_from.add(id(node.value))
        for node in _scoped_walk(fn):
            method = _handle_call(node, handles)
            if method is None:
                continue
            if method in GENERATOR_METHODS:
                if id(node) in yielded_from:
                    continue
                if id(node) in yielded:
                    self.report(
                        "yield-from-misuse", Severity.ERROR, node,
                        f"{self._call_text(node, method)} is a composite "
                        "sub-generator; drive it with 'yield from', not "
                        "'yield'",
                    )
                else:
                    self.report(
                        "unyielded-call", Severity.ERROR, node,
                        f"{self._call_text(node, method)} is never driven "
                        "('yield from' is required); the calls it builds "
                        "never reach the engine",
                    )
            else:
                if id(node) in yielded:
                    continue
                if id(node) in yielded_from:
                    self.report(
                        "yield-from-misuse", Severity.ERROR, node,
                        f"{self._call_text(node, method)} builds a single "
                        "MPI call; submit it with 'yield', not "
                        "'yield from'",
                    )
                else:
                    self.report(
                        "unyielded-call", Severity.ERROR, node,
                        f"{self._call_text(node, method)} builds a call "
                        "descriptor but never yields it to the engine; "
                        "the MPI operation is silently dropped",
                    )

    @staticmethod
    def _call_text(node: ast.Call, method: str) -> str:
        obj = node.func.value.id  # type: ignore[union-attr]
        return f"{obj}.{method}(...)"

    # -- rank-dependent collectives --------------------------------------

    def _check_rank_dependent_collectives(
        self, fn: ast.FunctionDef, handles: Set[str]
    ) -> None:
        rank_names = self._rank_identity_names(fn, handles)
        for node in _scoped_walk(fn):
            if not isinstance(node, ast.If):
                continue
            if not self._mentions_rank(node.test, handles, rank_names):
                continue
            body_calls = self._collective_calls(node.body, handles)
            else_calls = self._collective_calls(node.orelse, handles)
            if body_calls != else_calls:
                described = self._describe_diff(body_calls, else_calls)
                self.report(
                    "rank-dependent-collective", Severity.WARNING, node,
                    "collective calls differ between rank-dependent "
                    f"branches ({described}); unless the branches "
                    "rejoin on every rank this mismatches the "
                    "collective order across the communicator",
                )

    def _check_rank_dependent_collective_loops(
        self, fn: ast.FunctionDef, handles: Set[str]
    ) -> None:
        """Collectives inside loops whose trip count depends on the
        rank identity: each rank then calls the collective a different
        number of times, which mismatches the collective order exactly
        like a rank-dependent branch does (the loop-shaped variant the
        branch check is blind to)."""
        rank_names = self._rank_identity_names(fn, handles)
        for node in _scoped_walk(fn):
            if isinstance(node, ast.For):
                trip = node.iter
            elif isinstance(node, ast.While):
                trip = node.test
            else:
                continue
            if not self._mentions_rank(trip, handles, rank_names):
                continue
            calls = self._collective_calls(node.body, handles)
            if not calls:
                continue
            described = "+".join(calls)
            self.report(
                "rank-dependent-collective", Severity.WARNING, node,
                f"collective call(s) {described} sit inside a "
                "loop whose trip count depends on the rank identity; "
                "ranks will disagree on how many collective waves "
                "they join",
            )

    def _rank_identity_names(self, fn: ast.FunctionDef,
                             handles: Set[str]) -> Set[str]:
        """Variables assigned from ``<handle>.rank`` (simple aliases)."""
        names: Set[str] = set()
        for node in _scoped_walk(fn):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "rank"
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id in handles
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _mentions_rank(test: ast.AST, handles: Set[str],
                       rank_names: Set[str]) -> bool:
        for node in ast.walk(test):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "rank"
                and isinstance(node.value, ast.Name)
                and node.value.id in handles
            ):
                return True
            if isinstance(node, ast.Name) and node.id in rank_names:
                return True
        return False

    @staticmethod
    def _collective_calls(body: List[ast.stmt],
                          handles: Set[str]) -> Tuple[str, ...]:
        calls: List[str] = []
        for stmt in body:
            for node in ast.walk(stmt):
                method = _handle_call(node, handles)
                if method in COLLECTIVE_METHODS:
                    calls.append(method)
        return tuple(calls)

    @staticmethod
    def _describe_diff(body: Tuple[str, ...],
                       else_: Tuple[str, ...]) -> str:
        fmt = lambda calls: "+".join(calls) if calls else "none"
        return f"if-branch: {fmt(body)}, else-branch: {fmt(else_)}"

    # -- argument checks -------------------------------------------------

    def _check_call_arguments(self, node: ast.Call, method: str) -> None:
        if method in SEND_METHODS:
            dest = self._argument(node, 0, "dest")
            if dest is not None and _is_any_source(dest):
                self.report(
                    "any-source-send", Severity.ERROR, node,
                    f"MPI_ANY_SOURCE used as the destination of "
                    f"{method}(); wildcards are only valid on the "
                    "receive side",
                )
            self._check_tag_literal(node, method,
                                    self._argument(node, 1, "tag"),
                                    is_send=True)
        elif method in RECV_METHODS:
            self._check_tag_literal(node, method,
                                    self._argument(node, 1, "tag"),
                                    is_send=False)
        elif method == "sendrecv":
            dest = self._argument(node, 0, "dest")
            if dest is not None and _is_any_source(dest):
                self.report(
                    "any-source-send", Severity.ERROR, node,
                    "MPI_ANY_SOURCE used as the destination of "
                    "sendrecv(); wildcards are only valid on the "
                    "receive side",
                )
            self._check_tag_literal(node, method,
                                    self._argument(node, 2, "sendtag"),
                                    is_send=True)
            self._check_tag_literal(node, method,
                                    self._argument(node, 3, "recvtag"),
                                    is_send=False)

    @staticmethod
    def _argument(node: ast.Call, index: int,
                  keyword: str) -> Optional[ast.AST]:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        if index < len(node.args):
            return node.args[index]
        return None

    def _check_tag_literal(self, node: ast.Call, method: str,
                           tag: Optional[ast.AST], *,
                           is_send: bool) -> None:
        if tag is None:
            return
        value = _int_literal(tag)
        if value is None:
            return
        floor = 0 if is_send else -1  # ANY_TAG is legal on receives
        if value < floor:
            self.report(
                "literal-tag-range", Severity.ERROR, node,
                f"literal tag {value} of {method}() is negative"
                + ("" if is_send else " (and not MPI_ANY_TAG)"),
            )
        elif value > MIN_TAG_UB:
            self.report(
                "literal-tag-range", Severity.WARNING, node,
                f"literal tag {value} of {method}() exceeds the "
                f"portable MPI_TAG_UB minimum ({MIN_TAG_UB})",
            )


def lint_source(
    source: str, filename: str
) -> Tuple[List[CheckFinding], List[RankProgram]]:
    """AST-lint ``source``; returns findings and discovered programs.

    Raises :class:`SyntaxError` when the source does not parse — the
    caller turns that into a finding with the error position.
    """
    tree = ast.parse(source, filename=filename)
    programs = find_rank_programs(tree)
    linter = _Linter(filename=filename)

    # Lint every function that yields handle-built MPI calls — nested
    # and non-module-level generators included — not just the programs
    # eligible for extraction.
    seen: Set[int] = set()

    def lint_fn(fn: ast.FunctionDef) -> None:
        if id(fn) in seen:
            return
        seen.add(id(fn))
        handle = _is_rank_program(fn)
        if handle is not None:
            linter.lint_program(fn, handle)

    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            lint_fn(node)
    return linter.findings, programs
