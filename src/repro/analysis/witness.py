"""Replayable counterexample schedules for `deadlock-possible` verdicts.

A witness produced by the match-set explorer pins down everything the
virtual runtime leaves nondeterministic:

* the **issue order** — one rank id per operation issued, consumed by
  :class:`~repro.runtime.scheduler.ScriptedScheduler`; and
* the **wildcard pinnings** — for every ``MPI_ANY_SOURCE`` receive that
  matched along the witness path, the source it must take, consumed by
  :class:`~repro.runtime.matchstate.MatchState`.

Together these make the engine deterministic along the witness path,
so ``repro verify --replay`` turns a static `deadlock-possible` claim
into a reproduced runtime deadlock with the same WFG report the
runtime detection path produces.

The on-disk format is plain JSON (one object per witness) so CI can
archive witnesses as artifacts and a later session can replay them.
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.waitstate import DeadlockAnalysis, analyze_trace
from repro.mpi.blocking import BlockingSemantics
from repro.mpi.ops import OpRef
from repro.runtime.engine import RankProgram, RunResult, run_programs
from repro.runtime.scheduler import ScriptedScheduler
from repro.util.errors import ReproError
from repro.wfg.compare import cycles_equivalent, deadlock_sets_agree

from repro.docs import format_tag, validate_doc

#: Format tag written into every serialized witness (registry-owned).
WITNESS_FORMAT = format_tag("witness")


@dataclass
class WitnessSchedule:
    """A concrete schedule that drives the runtime into a deadlock."""

    num_ranks: int
    #: Rank ids in operation-issue order, up to the deadlock state.
    schedule: List[int]
    #: Wildcard receive op ref -> the source it matched on this path.
    pinnings: Dict[OpRef, int]
    #: Ranks the static WFG check reported deadlocked.
    deadlocked: Tuple[int, ...]
    #: The operation each deadlocked/blocked rank is stuck in.
    blocked_ops: Dict[int, OpRef]
    #: A dependency cycle inside the deadlocked set (may be empty when
    #: the deadlock hinges on a finished process, not a cycle).
    witness_cycle: Tuple[int, ...] = ()
    label: str = ""

    # -- serialization --------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "format": WITNESS_FORMAT,
            "label": self.label,
            "num_ranks": self.num_ranks,
            "schedule": list(self.schedule),
            "pinnings": [
                {"rank": ref[0], "ts": ref[1], "source": src}
                for ref, src in sorted(self.pinnings.items())
            ],
            "deadlocked": list(self.deadlocked),
            "blocked_ops": {
                str(rank): [ref[0], ref[1]]
                for rank, ref in sorted(self.blocked_ops.items())
            },
            "witness_cycle": list(self.witness_cycle),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "WitnessSchedule":
        validate_doc(data, "witness", check_keys=True)
        return cls(
            num_ranks=int(data["num_ranks"]),  # type: ignore[arg-type]
            schedule=[int(r) for r in data["schedule"]],  # type: ignore[union-attr]
            pinnings={
                (int(e["rank"]), int(e["ts"])): int(e["source"])
                for e in data.get("pinnings", [])  # type: ignore[union-attr]
            },
            deadlocked=tuple(int(r) for r in data.get("deadlocked", ())),  # type: ignore[union-attr]
            blocked_ops={
                int(rank): (int(ref[0]), int(ref[1]))
                for rank, ref in data.get("blocked_ops", {}).items()  # type: ignore[union-attr]
            },
            witness_cycle=tuple(
                int(r) for r in data.get("witness_cycle", ())  # type: ignore[union-attr]
            ),
            label=str(data.get("label", "")),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "WitnessSchedule":
        return cls.from_json_dict(json.loads(Path(path).read_text()))


@dataclass
class ReplayOutcome:
    """Result of replaying a witness through the runtime engine."""

    #: The engine deadlocked AND the runtime analysis names the same
    #: deadlocked ranks the static explorer predicted.
    confirmed: bool
    run: Optional[RunResult]
    analysis: Optional[DeadlockAnalysis]
    runtime_deadlocked: Tuple[int, ...] = ()
    runtime_cycle: Tuple[int, ...] = ()
    #: Static and runtime WFG witness cycles are rotations of each other.
    cycles_match: bool = False
    reason: str = ""


def replay_witness(
    programs: Sequence[RankProgram],
    witness: WitnessSchedule,
    *,
    max_steps: int = 10_000_000,
) -> ReplayOutcome:
    """Replay ``witness`` on the strict-semantics engine and compare.

    The replay uses the paper's strict blocking predicate ``b`` (the
    semantics the explorer models): standard sends rendezvous and all
    collectives synchronize, so a static deadlock manifests instead of
    being masked by buffering.
    """
    if len(programs) != witness.num_ranks:
        raise ReproError(
            f"witness is for {witness.num_ranks} ranks, got "
            f"{len(programs)} programs"
        )
    try:
        run = run_programs(
            programs,
            semantics=BlockingSemantics.strict(),
            scheduler=ScriptedScheduler(witness.schedule),
            wildcard_pinnings=dict(witness.pinnings),
            max_steps=max_steps,
        )
    except ReproError as exc:
        return ReplayOutcome(
            confirmed=False,
            run=None,
            analysis=None,
            reason=f"replay failed: {exc}",
        )
    if not run.deadlocked:
        return ReplayOutcome(
            confirmed=False,
            run=run,
            analysis=None,
            reason="replayed run completed without deadlocking",
        )
    analysis = analyze_trace(
        run.matched,
        semantics=BlockingSemantics.strict(),
        generate_outputs=False,
    )
    runtime_deadlocked = analysis.deadlocked
    runtime_cycle = tuple(analysis.detection.witness_cycle)
    sets_agree = deadlock_sets_agree(runtime_deadlocked, witness.deadlocked)
    cyc_match = cycles_equivalent(runtime_cycle, witness.witness_cycle)
    reason = ""
    if not sets_agree:
        reason = (
            f"runtime analysis blames ranks {sorted(runtime_deadlocked)}, "
            f"witness predicted {sorted(witness.deadlocked)}"
        )
    elif not cyc_match:
        reason = (
            f"runtime WFG cycle {runtime_cycle} differs from witness "
            f"cycle {witness.witness_cycle}"
        )
    return ReplayOutcome(
        confirmed=sets_agree,
        run=run,
        analysis=analysis,
        runtime_deadlocked=tuple(runtime_deadlocked),
        runtime_cycle=runtime_cycle,
        cycles_match=cyc_match,
        reason=reason,
    )
