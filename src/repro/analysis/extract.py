"""Static extraction of per-rank operation sequences.

Rank programs are generators, so their operation sequences can be
obtained *without* the engine by driving each generator with stubbed
call results. For deterministic programs (no wildcard receives, no
probes/tests whose outcome steers control flow) the extracted
sequences are exactly the sequences the engine would record; the
:class:`Extraction` tracks whether that guarantee holds (``exact``).

Only the communicator-management collectives need cross-rank lockstep:
their results (:class:`~repro.mpi.communicator.Communicator` objects)
feed back into later calls structurally, so the extractor parks a rank
at ``MPI_Comm_dup``/``_split``/``_create`` until every group member
arrives and then distributes real registry results. Everything else
continues immediately — blocking behaviour is the matcher's concern
(:mod:`repro.analysis.seqmatch`), not the extractor's.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checks.findings import CheckFinding, Severity
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_completion_kind,
)
from repro.mpi.ops import Operation
from repro.runtime.program import Call, Rank, Status

#: Comm-management collectives whose results matter structurally.
_COMM_MGMT = frozenset(
    {OpKind.COMM_DUP, OpKind.COMM_SPLIT, OpKind.COMM_CREATE}
)

_ISEND_KINDS = frozenset(
    {OpKind.ISEND, OpKind.ISSEND, OpKind.IBSEND, OpKind.IRSEND}
)

#: Kinds whose stubbed results may diverge from a real execution.
_INEXACT_RESULT_KINDS = frozenset(
    {
        OpKind.IPROBE,
        OpKind.TEST,
        OpKind.TESTALL,
        OpKind.TESTANY,
        OpKind.TESTSOME,
        OpKind.WAITANY,
        OpKind.WAITSOME,
    }
)


@dataclass
class Extraction:
    """Result of statically unrolling a program set."""

    sequences: List[List[Operation]]
    comms: CommRegistry
    #: Whether the sequences provably equal what the engine would
    #: record (no fabricated result could have steered control flow).
    exact: bool
    #: Weaker guarantee for the match-set explorer: the sequences are
    #: exact *except* that wildcard receive/probe statuses were
    #: fabricated (with explicit ``ANY_SOURCE``/``ANY_TAG`` markers).
    #: Programs that branch on a fabricated wildcard status are not
    #: covered — a witness replay diverging is how that surfaces.
    wildcard_exact: bool = True
    notes: List[CheckFinding] = field(default_factory=list)
    #: Ranks whose extraction stopped early (error, runaway loop, or a
    #: comm-management collective that never completed).
    truncated: Set[int] = field(default_factory=set)

    @property
    def num_processes(self) -> int:
        return len(self.sequences)

    @property
    def usable_for_matching(self) -> bool:
        """Whether any matching-based verdict may trust the sequences:
        complete, and inexact at worst in fabricated wildcard statuses
        (the gate both the explorer and the decidable-fragment fast
        path apply)."""
        return not self.truncated and (self.exact or self.wildcard_exact)


@dataclass
class _PersistentInfo:
    is_send: bool
    peer: int
    tag: int
    comm_id: int
    nbytes: int
    active_instance: Optional[int] = None


@dataclass
class _RankDriver:
    rank: int
    gen: Iterator[Call]
    ops: List[Operation] = field(default_factory=list)
    next_req: int = 0
    #: Pending result for the next ``gen.send`` (None before first step).
    inbox: object = None
    started: bool = False
    done: bool = False
    parked: bool = False
    #: Request id -> (is_recv, peer, tag) for wait-status fabrication.
    recv_requests: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    persistent: Dict[int, _PersistentInfo] = field(default_factory=dict)


class _WaveState:
    """One pending comm-management wave on one communicator."""

    def __init__(self, comm_id: int) -> None:
        self.comm_id = comm_id
        self.arrived: Dict[int, Call] = {}


def extract_programs(
    programs: Sequence, *, max_ops_per_rank: int = 50_000
) -> Extraction:
    """Drive ``programs`` with stub results and collect their sequences.

    ``programs`` has the same shape as for
    :func:`repro.runtime.run_programs`: one callable per rank, each
    receiving a :class:`~repro.runtime.program.Rank` handle and
    returning a generator.
    """
    p = len(programs)
    comms = CommRegistry(p)
    drivers: List[_RankDriver] = []
    for i, prog in enumerate(programs):
        handle = Rank(i, comms.world)
        drivers.append(_RankDriver(rank=i, gen=prog(handle)))
    ext = Extraction(sequences=[d.ops for d in drivers], comms=comms,
                     exact=True)
    # Side table for wave resolution (not part of the public result).
    ext._drivers = drivers  # type: ignore[attr-defined]
    waves: Dict[int, _WaveState] = {}

    progressed = True
    while progressed:
        progressed = False
        for driver in drivers:
            if driver.done or driver.parked:
                continue
            if _drive_until_park(driver, ext, waves, max_ops_per_rank):
                progressed = True

    # Ranks still parked sit in a comm-management wave that can never
    # complete (some member diverged or hung before arriving).
    for driver in drivers:
        if driver.parked:
            ext.truncated.add(driver.rank)
            ext.exact = False
            ext.wildcard_exact = False
            ext.notes.append(
                CheckFinding(
                    check="static-extraction",
                    severity=Severity.WARNING,
                    rank=driver.rank,
                    message=(
                        "comm-management collective never completed "
                        "during extraction (some group member diverged); "
                        "sequence truncated"
                    ),
                    op=driver.ops[-1].ref if driver.ops else None,
                    location=driver.ops[-1].location if driver.ops else "",
                )
            )
    return ext


def _drive_until_park(
    driver: _RankDriver,
    ext: Extraction,
    waves: Dict[int, _WaveState],
    max_ops: int,
) -> bool:
    """Advance one rank until it parks, finishes, or errors.

    Returns True when at least one step was taken (progress).
    """
    progressed = False
    while not (driver.done or driver.parked):
        if len(driver.ops) >= max_ops:
            _truncate(
                driver, ext,
                f"extraction stopped after {max_ops} operations "
                "(non-terminating program?)",
            )
            return progressed
        try:
            if driver.started:
                result, driver.inbox = driver.inbox, None
                call = driver.gen.send(result)
            else:
                driver.started = True
                call = next(driver.gen)
        except StopIteration:
            driver.done = True
            return True
        except Exception as exc:  # program bug: report, keep analyzing
            _truncate(
                driver, ext,
                f"program raised during extraction: {exc!r}",
            )
            return progressed
        progressed = True
        if not isinstance(call, Call):
            _truncate(
                driver, ext,
                f"program yielded {type(call).__name__}, not an MPI call",
            )
            return progressed
        try:
            _step(driver, call, ext, waves)
        except Exception as exc:  # malformed call (e.g. empty waitall)
            _truncate(driver, ext, f"invalid MPI call: {exc}")
    return progressed


def _truncate(driver: _RankDriver, ext: Extraction, message: str) -> None:
    driver.done = True
    ext.truncated.add(driver.rank)
    ext.exact = False
    ext.wildcard_exact = False
    ext.notes.append(
        CheckFinding(
            check="static-extraction",
            severity=Severity.WARNING,
            rank=driver.rank,
            message=message,
            op=driver.ops[-1].ref if driver.ops else None,
            location=driver.ops[-1].location if driver.ops else "",
        )
    )


def _step(
    driver: _RankDriver,
    call: Call,
    ext: Extraction,
    waves: Dict[int, _WaveState],
) -> None:
    """Record one call and stub its result (mirrors the engine)."""
    kind = call.kind
    if kind in (OpKind.SEND_INIT, OpKind.RECV_INIT):
        _record_init(driver, call)
        return
    if kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV):
        _record_start(driver, call, ext)
        return
    op = _record(driver, call)
    if kind in _INEXACT_RESULT_KINDS:
        ext.exact = False
        ext.wildcard_exact = False
    if op.is_recv() or op.is_probe():
        if op.peer == ANY_SOURCE or op.tag == ANY_TAG:
            # Wildcard statuses are fabricated markers (below); the
            # sequences stay usable for wildcard-aware exploration.
            ext.exact = False

    if op.is_p2p() and op.peer == PROC_NULL:
        driver.inbox = _proc_null_result(driver, op)
        return
    if kind in (OpKind.SEND, OpKind.SSEND, OpKind.BSEND, OpKind.RSEND):
        driver.inbox = None
    elif kind in (OpKind.RECV, OpKind.PROBE):
        # Wildcard envelopes keep their ANY_SOURCE/ANY_TAG markers: the
        # true source/tag is a runtime matching decision, and silently
        # pinning it (to, say, source 0) would fabricate a plausible but
        # wrong value that programs could branch on undetected.
        driver.inbox = Status(op.peer, op.tag, op.nbytes)
    elif kind is OpKind.IPROBE:
        driver.inbox = (False, None)
    elif kind in _ISEND_KINDS:
        driver.inbox = op.request
    elif kind is OpKind.IRECV:
        if op.peer != ANY_SOURCE and op.tag != ANY_TAG:
            driver.recv_requests[op.request] = (op.peer, op.tag)
        driver.inbox = op.request
    elif kind is OpKind.REQUEST_FREE:
        for handle in op.requests:
            info = driver.persistent.get(handle)
            if info is not None and info.active_instance is None:
                del driver.persistent[handle]
        driver.inbox = None
    elif is_completion_kind(kind):
        driver.inbox = _completion_result(driver, op)
    elif kind in _COMM_MGMT:
        _arrive_comm_mgmt(driver, call, op, ext, waves)
    elif is_collective_kind(kind) or kind is OpKind.FINALIZE:
        driver.inbox = None
    else:
        _truncate(driver, ext, f"cannot extract {kind.value}")


def _record(driver: _RankDriver, call: Call) -> Operation:
    request: Optional[int] = None
    if call.kind in _ISEND_KINDS or call.kind is OpKind.IRECV:
        request = driver.next_req
        driver.next_req += 1
    requests = call.requests
    if is_completion_kind(call.kind) and requests:
        requests = _translate_requests(driver, requests)
    op = Operation(
        kind=call.kind,
        rank=driver.rank,
        ts=len(driver.ops),
        comm_id=call.comm.comm_id,
        peer=call.peer,
        tag=call.tag,
        root=call.root,
        request=request,
        requests=requests,
        nbytes=call.nbytes,
        sendrecv_group=call.sendrecv_group,
        location=call.location,
    )
    driver.ops.append(op)
    return op


def _translate_requests(
    driver: _RankDriver, requests: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Map persistent handles to active Start instances (engine rule)."""
    translated = []
    for req in requests:
        info = driver.persistent.get(req)
        if info is not None and info.active_instance is not None:
            translated.append(info.active_instance)
        else:
            translated.append(req)
    return tuple(translated)


def _record_init(driver: _RankDriver, call: Call) -> None:
    handle = driver.next_req
    driver.next_req += 1
    op = Operation(
        kind=call.kind,
        rank=driver.rank,
        ts=len(driver.ops),
        comm_id=call.comm.comm_id,
        peer=call.peer,
        tag=call.tag,
        nbytes=call.nbytes,
        request=handle,
        location=call.location,
    )
    driver.ops.append(op)
    driver.persistent[handle] = _PersistentInfo(
        is_send=call.kind is OpKind.SEND_INIT,
        peer=call.peer,  # type: ignore[arg-type]
        tag=call.tag,
        comm_id=call.comm.comm_id,
        nbytes=call.nbytes,
    )
    driver.inbox = handle


def _record_start(
    driver: _RankDriver, call: Call, ext: Extraction
) -> None:
    handle = call.requests[0] if call.requests else None
    info = driver.persistent.get(handle)
    if info is None:
        _truncate(
            driver, ext,
            f"MPI_Start on unknown persistent request {handle}",
        )
        return
    instance = driver.next_req
    driver.next_req += 1
    kind = OpKind.PSTART_SEND if info.is_send else OpKind.PSTART_RECV
    op = Operation(
        kind=kind,
        rank=driver.rank,
        ts=len(driver.ops),
        comm_id=info.comm_id,
        peer=info.peer,
        tag=info.tag,
        nbytes=info.nbytes,
        request=instance,
        requests=(handle,),
        location=call.location,
    )
    driver.ops.append(op)
    info.active_instance = instance
    if not info.is_send and info.peer not in (ANY_SOURCE, PROC_NULL):
        driver.recv_requests[instance] = (info.peer, info.tag)
    driver.inbox = None


def _proc_null_result(driver: _RankDriver, op: Operation) -> object:
    status = Status(PROC_NULL, ANY_TAG, 0)
    if op.kind is OpKind.IPROBE:
        return (True, status)
    if op.request is not None:
        return op.request
    if op.is_recv() or op.is_probe():
        return status
    return None


def _request_status(driver: _RankDriver, req: int) -> Optional[Status]:
    info = driver.recv_requests.get(req)
    if info is None:
        return None
    peer, tag = info
    return Status(peer, tag, 0)


def _completion_result(driver: _RankDriver, op: Operation) -> object:
    kind = op.kind
    statuses = tuple(_request_status(driver, r) for r in op.requests)
    for req in op.requests:
        for info in driver.persistent.values():
            if info.active_instance == req:
                info.active_instance = None
    if kind is OpKind.WAIT:
        return statuses[0]
    if kind is OpKind.WAITALL:
        return statuses
    if kind is OpKind.WAITANY:
        return (0, statuses[0])
    if kind is OpKind.WAITSOME:
        return (tuple(range(len(statuses))), statuses)
    if kind is OpKind.TEST:
        return (False, None)
    if kind is OpKind.TESTALL:
        return (False, None)
    if kind is OpKind.TESTANY:
        return (False, None, None)
    if kind is OpKind.TESTSOME:
        return ((), ())
    raise AssertionError(kind)


def _arrive_comm_mgmt(
    driver: _RankDriver,
    call: Call,
    op: Operation,
    ext: Extraction,
    waves: Dict[int, _WaveState],
) -> None:
    comm_id = call.comm.comm_id
    wave = waves.get(comm_id)
    if wave is None:
        wave = _WaveState(comm_id)
        waves[comm_id] = wave
    wave.arrived[driver.rank] = call
    driver.parked = True
    group = set(call.comm.group)
    if set(wave.arrived) != group:
        return
    del waves[comm_id]
    _resolve_wave(wave, ext)


def _resolve_wave(wave: _WaveState, ext: Extraction) -> None:
    """All members arrived: compute real communicator results."""
    kinds = {c.kind for c in wave.arrived.values()}
    results: Dict[int, object]
    if len(kinds) != 1:
        # Mismatched wave — the consistency checker reports it; feed
        # None so extraction can continue past the error.
        ext.exact = False
        ext.wildcard_exact = False
        results = {r: None for r in wave.arrived}
    else:
        (kind,) = kinds
        if kind is OpKind.COMM_DUP:
            newcomm = ext.comms.dup(wave.comm_id)
            results = {r: newcomm for r in wave.arrived}
        elif kind is OpKind.COMM_SPLIT:
            colors = {r: c.color for r, c in wave.arrived.items()}
            results = dict(ext.comms.split(wave.comm_id, colors))
        else:  # COMM_CREATE
            groups = {tuple(c.group or ()) for c in wave.arrived.values()}
            if len(groups) != 1:
                ext.exact = False
                ext.wildcard_exact = False
                results = {r: None for r in wave.arrived}
            else:
                (new_group,) = groups
                newcomm = (
                    ext.comms.create(new_group) if new_group else None
                )
                results = {
                    r: (
                        newcomm
                        if newcomm is not None and r in newcomm.group
                        else None
                    )
                    for r in wave.arrived
                }
    # Unpark every member with its result; they resume on the next
    # scheduler pass.
    for rank in wave.arrived:
        drv = _driver_of(ext, rank)
        drv.parked = False
        drv.inbox = results.get(rank)


def _driver_of(ext: Extraction, rank: int) -> _RankDriver:
    # The Extraction's sequences list aliases each driver's op list, so
    # drivers are reachable via a side table kept on the object.
    return ext._drivers[rank]  # type: ignore[attr-defined]
