"""Typestate checks over per-rank operation sequences.

Two families of checks run on extracted or recorded sequences without
any matching:

* a request-lifecycle FSM per rank — every non-blocking or persistent
  request must move through create → (start →) complete/free exactly
  once, and nothing may wait on a request twice or free an active one;
* cross-rank collective consistency — the k-th collective on a
  communicator must carry the same operation kind and root on every
  group member (MPI's collective ordering rule), and no member may
  return from MPI_Finalize with collective waves outstanding.

Unlike :mod:`repro.checks.local` (which validates a *recorded* runtime
stream and trusts the engine's request translation), these checks run
pre-execution on statically extracted sequences, so they track the
persistent-handle/start-instance relationship themselves and use a
three-valued state for requests whose completion is uncertain
(``MPI_Waitany``/``MPI_Waitsome`` without a recorded outcome).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.checks.findings import CheckFinding, Severity
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    OpKind,
    is_completion_kind,
    is_rooted_collective_kind,
    is_test_kind,
)
from repro.mpi.ops import Operation


class _ReqState(enum.Enum):
    ACTIVE = "active"        # created / started, not yet completed
    MAYBE = "maybe"          # may or may not have completed (Waitany)
    COMPLETED = "completed"  # definitely consumed by a completion
    INACTIVE = "inactive"    # persistent handle between activations


@dataclass
class _Tracked:
    state: _ReqState
    #: The op that created this request id.
    creator: Operation
    persistent: bool = False
    #: For persistent handles: the currently active Start instance id.
    active_instance: Optional[int] = None


def check_request_typestate(
    sequences: Sequence[Sequence[Operation]],
) -> List[CheckFinding]:
    """Run the per-rank request-lifecycle FSM."""
    findings: List[CheckFinding] = []
    for rank, seq in enumerate(sequences):
        findings.extend(_check_rank_requests(rank, seq))
    return findings


def _check_rank_requests(
    rank: int, seq: Sequence[Operation]
) -> List[CheckFinding]:
    findings: List[CheckFinding] = []
    table: Dict[int, _Tracked] = {}

    def report(check: str, severity: Severity, op: Operation,
               message: str) -> None:
        findings.append(
            CheckFinding(
                check=check,
                severity=severity,
                rank=rank,
                message=message,
                op=op.ref,
                location=op.location,
            )
        )

    for op in seq:
        kind = op.kind
        if kind in (OpKind.SEND_INIT, OpKind.RECV_INIT):
            table[op.request] = _Tracked(
                state=_ReqState.INACTIVE, creator=op, persistent=True
            )
            continue
        if kind in (OpKind.PSTART_SEND, OpKind.PSTART_RECV):
            handle = op.requests[0] if op.requests else None
            tracked = table.get(handle)
            if tracked is None or not tracked.persistent:
                report(
                    "static-unknown-request", Severity.ERROR, op,
                    f"MPI_Start on unknown persistent request {handle}",
                )
            elif tracked.active_instance is not None:
                report(
                    "static-start-active", Severity.ERROR, op,
                    f"MPI_Start on persistent request {handle} whose "
                    "previous activation was never completed",
                )
            if tracked is not None:
                tracked.active_instance = op.request
            if op.request is not None:
                table[op.request] = _Tracked(
                    state=_ReqState.ACTIVE, creator=op
                )
            continue
        if kind is OpKind.REQUEST_FREE:
            for handle in op.requests:
                tracked = table.get(handle)
                if tracked is None or not tracked.persistent:
                    report(
                        "static-unknown-request", Severity.ERROR, op,
                        f"MPI_Request_free on unknown persistent "
                        f"request {handle}",
                    )
                    continue
                if tracked.active_instance is not None:
                    instance = table.get(tracked.active_instance)
                    if instance is not None and (
                        instance.state is _ReqState.ACTIVE
                    ):
                        report(
                            "static-free-active", Severity.ERROR, op,
                            f"MPI_Request_free on persistent request "
                            f"{handle} while an activation is in "
                            "flight",
                        )
                del table[handle]
            continue
        if op.request is not None:
            # Plain non-blocking p2p: a fresh active request.
            table[op.request] = _Tracked(
                state=_ReqState.ACTIVE, creator=op
            )
            continue
        if is_completion_kind(kind):
            _apply_completion(op, table, report)
            continue
        if op.is_finalize():
            for req_id in sorted(table):
                tracked = table[req_id]
                if tracked.persistent and (
                    tracked.state is _ReqState.INACTIVE
                ):
                    what = "persistent request never freed"
                elif tracked.state is _ReqState.ACTIVE:
                    what = (
                        f"{tracked.creator.kind.value} request never "
                        "completed"
                    )
                else:
                    continue  # MAYBE: uncertain, stay silent
                report(
                    "static-request-leak", Severity.WARNING, op,
                    f"request {req_id} ({what}) at MPI_Finalize",
                )
            break
    return findings


def _apply_completion(op: Operation, table: Dict[int, _Tracked],
                      report) -> None:
    kind = op.kind
    tracked_list = [table.get(r) for r in op.requests]
    for req_id, tracked in zip(op.requests, tracked_list):
        if tracked is None:
            report(
                "static-unknown-request", Severity.ERROR, op,
                f"{kind.value} on request {req_id} that no prior "
                "operation created",
            )
        elif tracked.state is _ReqState.COMPLETED:
            report(
                "static-double-wait", Severity.ERROR, op,
                f"{kind.value} on request {req_id} that an earlier "
                "completion already consumed",
            )
        elif tracked.persistent and tracked.active_instance is None:
            report(
                "static-inactive-wait", Severity.WARNING, op,
                f"{kind.value} on inactive persistent request "
                f"{req_id} (no MPI_Start in flight)",
            )

    def consume(req_id: int) -> None:
        tracked = table.get(req_id)
        if tracked is None or tracked.persistent:
            # Persistent handles survive completion (deactivate only).
            if tracked is not None:
                tracked.active_instance = None
            return
        tracked.state = _ReqState.COMPLETED
        _deactivate_parent(table, req_id)

    if is_test_kind(kind):
        if op.test_flag:
            for i in op.completed_indices:
                if i < len(op.requests):
                    consume(op.requests[i])
        return
    if kind in (OpKind.WAIT, OpKind.WAITALL):
        for req_id in op.requests:
            consume(req_id)
        return
    # WAITANY / WAITSOME
    if op.completed_indices:
        for i in op.completed_indices:
            if i < len(op.requests):
                consume(op.requests[i])
        return
    for req_id in op.requests:
        tracked = table.get(req_id)
        if tracked is not None and tracked.state is _ReqState.ACTIVE:
            tracked.state = _ReqState.MAYBE


def _deactivate_parent(table: Dict[int, _Tracked], instance: int) -> None:
    for tracked in table.values():
        if tracked.persistent and tracked.active_instance == instance:
            tracked.active_instance = None
            return


# ----------------------------------------------------------------------
# Cross-rank collective order / root consistency
# ----------------------------------------------------------------------

def check_collective_consistency(
    sequences: Sequence[Sequence[Operation]],
    comms: CommRegistry,
    *,
    hung_ranks: Optional[set] = None,
) -> List[CheckFinding]:
    """Check collective kind/root agreement wave by wave.

    ``hung_ranks`` marks ranks whose sequence is known incomplete
    (truncated extraction); a missing collective on such a rank is not
    reported, since the rank might have issued it later.
    """
    hung = set(hung_ranks or ())
    findings: List[CheckFinding] = []
    # Per comm: per rank, the ordered collective calls.
    per_comm: Dict[int, Dict[int, List[Operation]]] = {}
    ended_clean: Dict[int, bool] = {}
    for rank, seq in enumerate(sequences):
        ended_clean[rank] = bool(seq) and seq[-1].is_finalize()
        for op in seq:
            if op.is_collective():
                per_comm.setdefault(op.comm_id, {}).setdefault(
                    rank, []
                ).append(op)

    for comm_id in sorted(per_comm):
        if comm_id not in comms:
            continue
        group = comms.get(comm_id).group
        calls = per_comm[comm_id]
        depth = max(len(calls.get(r, ())) for r in group) if group else 0
        for k in range(depth):
            wave = {
                r: calls[r][k]
                for r in group
                if r in calls and k < len(calls[r])
            }
            findings.extend(
                _check_wave(comm_id, k, group, wave, ended_clean, hung)
            )
    return findings


def _check_wave(
    comm_id: int,
    index: int,
    group: Sequence[int],
    wave: Dict[int, Operation],
    ended_clean: Dict[int, bool],
    hung: set,
) -> List[CheckFinding]:
    findings: List[CheckFinding] = []
    if not wave:
        return findings
    # Majority kind defines the expected call; deviants are reported.
    by_kind: Dict[OpKind, List[int]] = {}
    for r, op in wave.items():
        by_kind.setdefault(op.kind, []).append(r)
    majority_kind = max(
        by_kind, key=lambda kind: (len(by_kind[kind]), -min(by_kind[kind]))
    )
    reference = wave[min(by_kind[majority_kind])]
    for kind, ranks in sorted(by_kind.items(), key=lambda kv: kv[0].value):
        if kind is majority_kind:
            continue
        for r in sorted(ranks):
            op = wave[r]
            findings.append(
                CheckFinding(
                    check="static-collective-mismatch",
                    severity=Severity.ERROR,
                    rank=r,
                    message=(
                        f"collective #{index + 1} on communicator "
                        f"{comm_id} is {op.kind.value} here but "
                        f"{majority_kind.value} on rank "
                        f"{min(by_kind[majority_kind])}"
                    ),
                    op=op.ref,
                    location=op.location,
                )
            )
    if is_rooted_collective_kind(majority_kind):
        roots: Dict[int, List[int]] = {}
        for r in by_kind[majority_kind]:
            roots.setdefault(wave[r].root, []).append(r)
        if len(roots) > 1:
            majority_root = max(
                roots, key=lambda root: (len(roots[root]), -min(roots[root]))
            )
            for root, ranks in sorted(
                roots.items(),
                key=lambda kv: -1 if kv[0] is None else kv[0],
            ):
                if root == majority_root:
                    continue
                for r in sorted(ranks):
                    op = wave[r]
                    findings.append(
                        CheckFinding(
                            check="static-root-mismatch",
                            severity=Severity.ERROR,
                            rank=r,
                            message=(
                                f"{op.kind.value} #{index + 1} on "
                                f"communicator {comm_id} uses root "
                                f"{root} here but root {majority_root} "
                                f"on rank {min(roots[majority_root])}"
                            ),
                            op=op.ref,
                            location=op.location,
                        )
                    )
    for r in group:
        if r in wave or r in hung:
            continue
        if not ended_clean.get(r, False):
            continue  # rank hung earlier: the deadlock report covers it
        findings.append(
            CheckFinding(
                check="static-collective-missing",
                severity=Severity.ERROR,
                rank=r,
                message=(
                    f"rank {r} reached MPI_Finalize without calling "
                    f"collective #{index + 1} ({majority_kind.value}) "
                    f"on communicator {comm_id} that rank "
                    f"{min(wave)} calls"
                ),
                op=reference.ref,
                location=reference.location,
            )
        )
    return findings
