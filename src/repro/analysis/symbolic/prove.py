"""The parameterized prover: deadlock-freedom for **all** ``p >= 2``.

``repro verify`` answers for one process count; this module answers
for every process count at once, or finds the minimal failing one:

1. **Gate on the classifier.** Only fragments the classifier admits
   (``SEQ-DETERMINISTIC`` / ``SEQ-WILDCARD-FREE-LOOPS``) are eligible
   for a ``PROVED-ALL-P`` verdict — for those the matching-order
   theorem makes one interleaving authoritative, so per-size deadlock
   is decidable in linear time and the question "for all p" is
   well-posed. ``UNDECIDABLE`` fragments are *never* proved.

2. **Admit to the uniform-affine certificate fragment** and derive
   the confirmation window (:func:`.paramatch.admit_terms`).

3. **Solve the channel equations** symbolically
   (:func:`.paramatch.analyze_channels`): every send/recv/collective
   site becomes always-matched / never-matched / p-dependent with an
   exact eventually-periodic :class:`~.solver.SizeSet` of unmatched
   sizes. The p-dependent residues yield the falsifier's candidate
   process counts.

4. **Falsify through the authoritative path.** Candidate sizes — and,
   for soundness of the certificate, *every* size in the window — are
   confirmed via :func:`~.linmatch.match_linear` in ascending order,
   so the first deadlock found is the minimal counterexample ``p``
   and carries a standard replayable witness schedule.

5. **Extrapolate with verification.** If every window size is
   deadlock-free and every channel's behavior passed the periodicity
   verification, the verdict is ``PROVED-ALL-P`` with a certificate
   recording the window, the constant/modulus frame, and the channel
   table. Admission or periodicity failures fall to ``UNKNOWN`` —
   after the falsifier has swept a default window anyway ("prove only
   on admitted fragments, falsify anywhere").
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.symbolic.fragments import (
    Fragment,
    ProgramClassification,
    classify_summary,
)
from repro.analysis.symbolic.linmatch import (
    LinearMatchUnsupported,
    match_linear,
)
from repro.analysis.symbolic.paramatch import (
    DEFAULT_WINDOW_HI,
    Admission,
    ChannelAnalysis,
    ChannelBudgetExceeded,
    admit_terms,
    analyze_channels,
)
from repro.analysis.symbolic.solver import MIN_SIZE, PeriodicityError
from repro.analysis.symbolic.symexec import (
    InstantiationError,
    ProgramSummary,
    instantiate,
    summarize_module,
)
from repro.analysis.witness import WitnessSchedule
from repro.mpi.communicator import CommRegistry
from repro.obs.metrics import MetricsRegistry


class ProveVerdict(Enum):
    """Outcome of one parameterized proof attempt."""

    #: Deadlock-free for every process count ``p >= 2``.
    PROVED_ALL_P = "PROVED-ALL-P"
    #: A concrete deadlocking size exists; ``min_p`` is minimal.
    REFUTED = "REFUTED"
    #: In a decidable fragment but outside the certificate fragment
    #: (or the certificate construction failed); per-size ``verify``
    #: still answers.
    UNKNOWN = "UNKNOWN"
    #: The classifier rejected the program; nothing is provable.
    UNDECIDABLE = "UNDECIDABLE"


@dataclass
class ProofCertificate:
    """What a ``PROVED-ALL-P`` verdict actually rests on."""

    #: Confirmation window ``[2, window_hi)`` swept via match_linear.
    window_hi: int
    #: Largest constant offset in the admitted terms.
    max_const: int
    #: lcm of the residue-split moduli.
    modulus_lcm: int
    #: Stabilization threshold of the periodic extrapolation.
    threshold: int
    #: Channel table (always/never/p-dependent per site).
    channels: ChannelAnalysis = field(default_factory=ChannelAnalysis)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "window": [MIN_SIZE, self.window_hi],
            "max_const": self.max_const,
            "modulus_lcm": self.modulus_lcm,
            "threshold": self.threshold,
            "channels": [
                channel.to_json_dict()
                for channel in self.channels.channels
            ],
        }


@dataclass
class ProveResult:
    """The parameterized verdict for one rank program."""

    name: str
    filename: str
    verdict: ProveVerdict
    fragment: Fragment
    reason: str = ""
    #: Minimal failing process count (REFUTED only).
    min_p: Optional[int] = None
    #: Replayable schedule witnessing the deadlock at ``min_p``.
    witness: Optional[WitnessSchedule] = None
    deadlocked: Tuple[int, ...] = ()
    witness_cycle: Tuple[int, ...] = ()
    #: True when the falsifier's residue candidates predicted
    #: ``min_p`` before the sweep confirmed it.
    predicted: bool = False
    sizes_checked: Tuple[int, ...] = ()
    linear_ops: int = 0
    certificate: Optional[ProofCertificate] = None
    classification: Optional[ProgramClassification] = None

    @property
    def is_proved(self) -> bool:
        return self.verdict is ProveVerdict.PROVED_ALL_P

    def to_json_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "program": self.name,
            "verdict": self.verdict.value,
            "fragment": self.fragment.value,
            "reason": self.reason,
            "min_p": self.min_p,
            "predicted": self.predicted,
            "sizes_checked": list(self.sizes_checked),
            "linear_ops": self.linear_ops,
        }
        if self.certificate is not None:
            doc["certificate"] = self.certificate.to_json_dict()
        if self.witness is not None:
            doc["witness"] = self.witness.to_json_dict()
        return doc


@dataclass
class _SweepOutcome:
    min_p: Optional[int] = None
    witness: Optional[WitnessSchedule] = None
    deadlocked: Tuple[int, ...] = ()
    witness_cycle: Tuple[int, ...] = ()
    failure: str = ""
    sizes_checked: Tuple[int, ...] = ()
    linear_ops: int = 0


def _sweep(
    summary: ProgramSummary, sizes: Sequence[int]
) -> _SweepOutcome:
    """Confirm each candidate size through ``match_linear``.

    Ascending order makes the first deadlock the minimal failing
    ``p``. A size where instantiation or linear matching fails stops
    the sweep (the program cannot be certified past it).
    """
    outcome = _SweepOutcome()
    checked: List[int] = []
    for size in sizes:
        try:
            sequences = [
                instantiate(
                    summary.terms, rank, size,
                    filename=summary.filename,
                )
                for rank in range(size)
            ]
            lin = match_linear(
                sequences,
                CommRegistry(size),
                label=f"{summary.name}@p={size}",
            )
        except InstantiationError as exc:
            outcome.failure = f"instantiation fails at p={size}: {exc}"
            break
        except LinearMatchUnsupported as exc:
            outcome.failure = (
                f"linear matching unsupported at p={size}: {exc}"
            )
            break
        checked.append(size)
        outcome.linear_ops += lin.ops_processed
        if lin.has_deadlock:
            outcome.min_p = size
            outcome.witness = lin.witness
            outcome.deadlocked = lin.deadlocked
            outcome.witness_cycle = lin.witness_cycle
            break
    outcome.sizes_checked = tuple(checked)
    return outcome


def _count_channels(
    metrics: Optional[MetricsRegistry], channels: ChannelAnalysis
) -> None:
    if metrics is None:
        return
    metrics.inc("prove.channels.always", channels.count("always-matched"))
    metrics.inc("prove.channels.never", channels.count("never-matched"))
    metrics.inc(
        "prove.channels.p_dependent", channels.count("p-dependent")
    )


def prove_summary(
    summary: ProgramSummary,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> ProveResult:
    """Decide deadlock-freedom for all ``p >= 2`` for one program."""
    if metrics is not None:
        metrics.inc("prove.runs")
    classification = classify_summary(summary)
    result = ProveResult(
        name=summary.name,
        filename=summary.filename,
        verdict=ProveVerdict.UNKNOWN,
        fragment=classification.fragment,
        classification=classification,
    )
    classification.proof = result

    if not classification.fragment.decidable:
        # Soundness gate: nothing outside the classifier-admitted
        # fragments is ever PROVED (or even falsified here — the
        # linear matcher has no authority over wildcard programs).
        result.verdict = ProveVerdict.UNDECIDABLE
        result.reason = classification.reason
        if metrics is not None:
            metrics.inc("prove.undecidable")
        return result

    admission = admit_terms(summary.terms)
    channels: Optional[ChannelAnalysis] = None
    channel_failure = ""
    if admission.admitted:
        try:
            channels = analyze_channels(summary.terms, admission)
        except PeriodicityError as exc:
            channel_failure = (
                f"channel behavior is not eventually periodic: "
                f"{exc.message}"
            )
        except ChannelBudgetExceeded as exc:
            channel_failure = str(exc)

    # Falsify anywhere: admitted or not, sweep candidate sizes through
    # the authoritative linear matcher. Residue candidates from the
    # channel table only *predict* the counterexample — the ascending
    # sweep is what confirms it and makes it minimal.
    candidates: Tuple[int, ...] = (
        channels.candidate_sizes if channels is not None else ()
    )
    sizes = (
        admission.sizes
        if admission.admitted
        else tuple(range(MIN_SIZE, DEFAULT_WINDOW_HI))
    )
    sweep = _sweep(summary, sizes)
    result.sizes_checked = sweep.sizes_checked
    result.linear_ops = sweep.linear_ops
    if metrics is not None:
        metrics.inc("prove.sizes_checked", len(sweep.sizes_checked))
        metrics.inc("prove.linear_ops", sweep.linear_ops)
    if channels is not None:
        _count_channels(metrics, channels)

    if sweep.min_p is not None:
        result.verdict = ProveVerdict.REFUTED
        result.min_p = sweep.min_p
        result.witness = sweep.witness
        result.deadlocked = sweep.deadlocked
        result.witness_cycle = sweep.witness_cycle
        result.predicted = sweep.min_p in candidates
        result.reason = (
            f"deadlock confirmed by linear matching at p={sweep.min_p} "
            f"(minimal failing process count)"
        )
        if metrics is not None:
            metrics.inc("prove.refuted")
        return result

    if sweep.failure:
        result.reason = sweep.failure
        if metrics is not None:
            metrics.inc("prove.unknown")
        return result

    if not admission.admitted:
        result.reason = (
            f"{admission.reason}; deadlock-free at the swept sizes "
            f"p in 2..{sizes[-1]} but no all-p certificate"
        )
        if metrics is not None:
            metrics.inc("prove.unknown")
        return result

    if channels is None:
        result.reason = (
            f"{channel_failure}; deadlock-free at the swept sizes "
            f"p in 2..{sizes[-1]} but no all-p certificate"
        )
        if metrics is not None:
            metrics.inc("prove.unknown")
        return result

    result.verdict = ProveVerdict.PROVED_ALL_P
    result.certificate = ProofCertificate(
        window_hi=admission.window_hi,
        max_const=admission.max_const,
        modulus_lcm=admission.modulus_lcm,
        threshold=admission.threshold,
        channels=channels,
    )
    result.reason = (
        f"deadlock-free for all p >= 2: every size in "
        f"[2, {admission.window_hi}) confirmed by linear matching and "
        f"channel behavior verified periodic "
        f"(threshold {admission.threshold}, "
        f"modulus lcm {admission.modulus_lcm})"
    )
    if metrics is not None:
        metrics.inc("prove.proved")
    return result


def prove_module(
    tree: ast.Module,
    filename: str,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> List[ProveResult]:
    """Prove every rank program in a parsed module."""
    return [
        prove_summary(summary, metrics=metrics)
        for summary in summarize_module(tree, filename)
    ]


def prove_source(
    source: str,
    filename: str,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> List[ProveResult]:
    """Parse ``source`` and prove each of its rank programs."""
    return prove_module(
        ast.parse(source, filename=filename), filename, metrics=metrics
    )


def prove_path(
    path: str,
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> List[ProveResult]:
    """Prove every rank program in a source file."""
    source = Path(path).read_text()
    return prove_source(source, str(path), metrics=metrics)
