"""Interprocedural control-flow scaffolding for the symbolic extractor.

Two structures are built straight from the module AST, before any
abstract interpretation runs:

* a per-function **control-flow graph** of basic blocks (statement
  runs) connected by labeled edges (``next``, ``true``/``false``
  branch arms, ``loop``/``back``/``exit`` for loops), used for loop
  discovery and for the provenance the classifier reports; and
* a module **call graph** over every function, with its strongly
  connected components. Helper generators in a trivial SCC are
  inlinable at their ``yield from`` call sites; anything on a cycle
  (direct or mutual recursion) is not, and the extractor reports the
  offending call instead of diverging.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    block_id: int
    statements: List[ast.stmt] = field(default_factory=list)
    #: Outgoing edges as ``(label, target block id)`` pairs.
    successors: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def first_line(self) -> Optional[int]:
        return self.statements[0].lineno if self.statements else None


@dataclass
class LoopInfo:
    """One source loop discovered during CFG construction."""

    node: ast.stmt  # ast.For | ast.While
    header_block: int
    lineno: int

    @property
    def kind(self) -> str:
        return "for" if isinstance(self.node, ast.For) else "while"


@dataclass
class FunctionCFG:
    """The CFG of one function body."""

    name: str
    entry: int
    exit: int
    blocks: Dict[int, BasicBlock]
    loops: List[LoopInfo]

    def block_count(self) -> int:
        return len(self.blocks)

    def edge_count(self) -> int:
        return sum(len(b.successors) for b in self.blocks.values())


class _CFGBuilder:
    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: Dict[int, BasicBlock] = {}
        self.loops: List[LoopInfo] = []
        self._next_id = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_id)
        self.blocks[self._next_id] = block
        self._next_id += 1
        return block

    def link(self, src: BasicBlock, label: str, dst: BasicBlock) -> None:
        src.successors.append((label, dst.block_id))

    def build(self, body: List[ast.stmt]) -> FunctionCFG:
        entry = self.new_block()
        exit_block = self.new_block()
        last = self._emit(body, entry, exit_block)
        if last is not None:
            self.link(last, "next", exit_block)
        return FunctionCFG(
            name=self.name,
            entry=entry.block_id,
            exit=exit_block.block_id,
            blocks=self.blocks,
            loops=self.loops,
        )

    def _emit(
        self,
        body: List[ast.stmt],
        current: BasicBlock,
        exit_block: BasicBlock,
    ) -> Optional[BasicBlock]:
        """Emit ``body`` starting in ``current``; returns the open block
        control falls out of (None when all paths left the body)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a return/raise: keep it in a
                # fresh disconnected block so provenance still resolves.
                current = self.new_block()
            if isinstance(stmt, ast.If):
                current.statements.append(stmt)
                then_block = self.new_block()
                self.link(current, "true", then_block)
                then_end = self._emit(stmt.body, then_block, exit_block)
                else_end: Optional[BasicBlock]
                if stmt.orelse:
                    else_block = self.new_block()
                    self.link(current, "false", else_block)
                    else_end = self._emit(stmt.orelse, else_block, exit_block)
                else:
                    else_end = current  # fall through the false arm
                join = self.new_block()
                if then_end is not None:
                    self.link(then_end, "next", join)
                if else_end is not None:
                    label = "false" if else_end is current else "next"
                    self.link(else_end, label, join)
                current = join
            elif isinstance(stmt, (ast.For, ast.While)):
                header = self.new_block()
                header.statements.append(stmt)
                self.link(current, "next", header)
                self.loops.append(
                    LoopInfo(
                        node=stmt,
                        header_block=header.block_id,
                        lineno=stmt.lineno,
                    )
                )
                loop_body = self.new_block()
                self.link(header, "loop", loop_body)
                body_end = self._emit(stmt.body, loop_body, exit_block)
                if body_end is not None:
                    self.link(body_end, "back", header)
                after = self.new_block()
                self.link(header, "exit", after)
                if stmt.orelse:
                    else_end = self._emit(after.statements and [] or stmt.orelse,
                                          after, exit_block)
                    current = else_end if else_end is not None else after
                else:
                    current = after
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.statements.append(stmt)
                self.link(current, "next", exit_block)
                current = None  # type: ignore[assignment]
            else:
                current.statements.append(stmt)
        return current


def build_cfg(fn: ast.FunctionDef) -> FunctionCFG:
    """Build the control-flow graph of ``fn``'s body."""
    return _CFGBuilder(fn.name).build(fn.body)


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------

@dataclass
class CallGraph:
    """Name-keyed call graph over a module's functions."""

    functions: Dict[str, ast.FunctionDef]
    #: callee names referenced from each function (defined ones only).
    edges: Dict[str, Set[str]]
    #: Strongly connected components, in reverse topological order.
    sccs: List[FrozenSet[str]]
    #: Module-level integer constants (``ITERATIONS = 3``) — resolved
    #: by the symbolic interpreter so constant loop bounds written as
    #: named module constants stay in the decidable fragment.
    constants: Dict[str, int] = field(default_factory=dict)

    def recursive_functions(self) -> Set[str]:
        """Functions on a call cycle (including self-recursion)."""
        out: Set[str] = set()
        for scc in self.sccs:
            if len(scc) > 1:
                out |= scc
            else:
                (name,) = scc
                if name in self.edges.get(name, set()):
                    out.add(name)
        return out


def _called_names(fn: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            names.add(node.func.id)
    return names


def _module_constants(tree: ast.Module) -> Dict[str, int]:
    """Plain ``NAME = <int literal>`` bindings at module level.

    Reassigned names are dropped — only single-assignment constants
    are safe to fold into rank programs.
    """
    values: Dict[str, int] = {}
    assigned: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in assigned:
                values.pop(name, None)
                continue
            assigned.add(name)
            if (
                value is not None
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
                and not isinstance(value.value, bool)
            ):
                values[name] = value.value
    return values


def build_call_graph(tree: ast.Module) -> CallGraph:
    """The call graph over every module-level function in ``tree``."""
    functions: Dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            functions[node.name] = node
    edges: Dict[str, Set[str]] = {
        name: _called_names(fn) & set(functions)
        for name, fn in functions.items()
    }
    return CallGraph(
        functions=functions,
        edges=edges,
        sccs=_tarjan(edges),
        constants=_module_constants(tree),
    )


def _tarjan(edges: Dict[str, Set[str]]) -> List[FrozenSet[str]]:
    """Iterative Tarjan SCC over the name graph."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[FrozenSet[str]] = []
    counter = 0

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, List[str]]] = [
            (root, sorted(edges.get(root, set())))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, pending = work[-1]
            advanced = False
            while pending:
                succ = pending.pop(0)
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, sorted(edges.get(succ, set()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                sccs.append(frozenset(component))
    return sccs
