"""Linear-time deadlock decision for wildcard-free sequences.

For programs without ``MPI_ANY_SOURCE`` (and without runtime-steered
completions), MPI matching is *deterministic*: per-channel FIFO plus
the non-overtaking rule pin every pairing, so all schedules reach the
same terminal configuration (the matching-order theorem of
arXiv:0709.3692 — a single interleaving decides deadlock for the
wildcard-free fragment). The match-set explorer would enumerate one
chain of singleton ample sets anyway; this module replays that unique
matching directly, in ``O(ops + requests)``:

* message channels ``(comm, src, dst)`` keep per-tag **and**
  arrival-order queues (lazy deletion), so a directed receive — with a
  concrete tag or ``ANY_TAG`` — takes its match in O(1) amortized;
* pending receives are indexed the same way, so an arriving send finds
  the earliest compatible posted receive in O(1);
* parked ``WAIT``/``WAITALL`` ranks hold their undone-request set and
  are woken by request completion, never re-scanned;
* collective waves count arrivals and release everyone on the last.

The terminal state is classified exactly like the explorer's terminal
states: blocked ranks become :class:`WaitForCondition` records (same
reason strings), fed to the AND⊕OR wait-for graph and
:func:`~repro.wfg.detect.detect_deadlock`. The processing order is a
feasible issue order, so a deadlock verdict carries a replayable
:class:`~repro.analysis.witness.WitnessSchedule`.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.explore import _Model, ExplorationUnsupported
from repro.analysis.witness import WitnessSchedule
from repro.core.waitfor import WaitForCondition, WaitTarget, intern_target
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_recv_kind,
    is_send_kind,
)
from repro.mpi.ops import Operation, OpRef
from repro.util.errors import ReproError
from repro.wfg.detect import DetectionResult, detect_deadlock
from repro.wfg.graph import WaitForGraph

_BUFFERED_SEND_KINDS = frozenset(
    {OpKind.BSEND, OpKind.RSEND, OpKind.IBSEND, OpKind.IRSEND}
)
_RENDEZVOUS_BLOCKING_SENDS = frozenset({OpKind.SEND, OpKind.SSEND})
_LOCAL_KINDS = frozenset(
    {
        OpKind.SEND_INIT,
        OpKind.RECV_INIT,
        OpKind.REQUEST_FREE,
        OpKind.SENDRECV_MARKER,
    }
)
_NONBLOCKING_RECVS = frozenset({OpKind.IRECV, OpKind.PSTART_RECV})
_SUPPORTED_KINDS = (
    frozenset(_BUFFERED_SEND_KINDS)
    | _RENDEZVOUS_BLOCKING_SENDS
    | _LOCAL_KINDS
    | _NONBLOCKING_RECVS
    | {
        OpKind.ISEND, OpKind.ISSEND, OpKind.PSTART_SEND,
        OpKind.RECV, OpKind.PROBE,
        OpKind.WAIT, OpKind.WAITALL,
        OpKind.FINALIZE,
    }
)


class LinearMatchUnsupported(ReproError):
    """The sequences fall outside the wildcard-free linear fragment."""


@dataclass
class LinearMatchResult:
    """Terminal configuration of the unique wildcard-free matching."""

    #: True when the wait-for analysis of the terminal configuration
    #: found a deadlock (same detector as the explorer/runtime).
    has_deadlock: bool
    ops_processed: int
    deadlocked: Tuple[int, ...] = ()
    witness_cycle: Tuple[int, ...] = ()
    blocked_ops: Dict[int, OpRef] = field(default_factory=dict)
    conditions: Dict[int, WaitForCondition] = field(default_factory=dict)
    graph: Optional[WaitForGraph] = None
    detection: Optional[DetectionResult] = None
    witness: Optional[WitnessSchedule] = None


@dataclass
class _Entry:
    """A queued message or posted receive (lazily deleted)."""

    op: Operation
    matched: bool = False


class _Channel:
    """Send/receive queues of one directed ``(comm, src, dst)`` pair."""

    __slots__ = ("sends_all", "sends_by_tag", "recvs_any", "recvs_by_tag")

    def __init__(self) -> None:
        self.sends_all: Deque[_Entry] = deque()
        self.sends_by_tag: Dict[int, Deque[_Entry]] = {}
        #: Posted receives that used ANY_TAG.
        self.recvs_any: Deque[_Entry] = deque()
        self.recvs_by_tag: Dict[int, Deque[_Entry]] = {}


def _head(queue: Optional[Deque[_Entry]]) -> Optional[_Entry]:
    """First live entry, dropping matched ones (lazy deletion)."""
    if queue is None:
        return None
    while queue:
        if queue[0].matched:
            queue.popleft()
        else:
            return queue[0]
    return None


class _Matcher:
    def __init__(
        self,
        sequences: Sequence[Sequence[Operation]],
        comms: CommRegistry,
        label: str,
    ) -> None:
        try:
            self.model = _Model(sequences, comms)
        except ExplorationUnsupported as exc:
            raise LinearMatchUnsupported(str(exc)) from None
        self.label = label
        self.seqs = self.model.seqs
        self.p = self.model.p
        self.lens = self.model.lens
        self.comms = comms

        self.pcs = [0] * self.p
        self.parked = [False] * self.p
        self.channels: Dict[Tuple[int, int, int], _Channel] = {}
        #: Requests completed (matched / buffered), per rank.
        self.done: List[Set[int]] = [set() for _ in range(self.p)]
        #: Requests consumed by an executed completion, per rank.
        self.consumed: List[Set[int]] = [set() for _ in range(self.p)]
        #: Undone request ids a parked WAIT/WAITALL rank still needs.
        self.wait_needs: Dict[int, Set[int]] = {}
        #: Collective wave arrivals: (comm, wave idx) -> count.
        self.arrivals: Dict[Tuple[int, int], int] = {}
        self.finalize_arrived = 0
        self.schedule: List[int] = []
        self.worklist: Deque[int] = deque(range(self.p))
        self.queued = [True] * self.p

    # -- infrastructure -------------------------------------------------

    def _channel(self, comm_id: int, src: int, dst: int) -> _Channel:
        key = (comm_id, src, dst)
        channel = self.channels.get(key)
        if channel is None:
            channel = _Channel()
            self.channels[key] = channel
        return channel

    def _wake(self, rank: int) -> None:
        if not self.queued[rank]:
            self.queued[rank] = True
            self.worklist.append(rank)

    def _advance(self, rank: int) -> None:
        self.pcs[rank] += 1
        self.parked[rank] = False

    def _finished(self, rank: int) -> bool:
        return self.pcs[rank] >= self.lens[rank]

    # -- request completion ---------------------------------------------

    def _complete_request(self, rank: int, request: int) -> None:
        self.done[rank].add(request)
        needs = self.wait_needs.get(rank)
        if needs is not None and request in needs:
            needs.discard(request)
            if not needs:
                del self.wait_needs[rank]
                wop = self.seqs[rank][self.pcs[rank]]
                self.consumed[rank].update(wop.requests)
                self._advance(rank)
                self._wake(rank)

    def _send_matched(self, sop: Operation) -> None:
        """An in-flight send just paired with a receive."""
        rank = sop.rank
        if sop.kind in _RENDEZVOUS_BLOCKING_SENDS:
            # The sender is parked in this very op (strict b).
            self._advance(rank)
            self._wake(rank)
        elif sop.kind not in _BUFFERED_SEND_KINDS:
            assert sop.request is not None
            self._complete_request(rank, sop.request)

    def _recv_matched(self, rop: Operation) -> None:
        """A posted receive just paired with a message."""
        rank = rop.rank
        if rop.kind is OpKind.RECV:
            self._advance(rank)
            self._wake(rank)
        else:
            assert rop.request is not None
            self._complete_request(rank, rop.request)

    # -- matching -------------------------------------------------------

    def _match_send(self, op: Operation) -> None:
        """Engine send semantics: pair with the earliest compatible
        posted receive, else queue the message."""
        assert op.peer is not None
        channel = self._channel(op.comm_id, op.rank, op.peer)
        tagged = _head(channel.recvs_by_tag.get(op.tag))
        anytag = _head(channel.recvs_any)
        best: Optional[_Entry] = None
        for entry in (tagged, anytag):
            if entry is not None and (
                best is None or entry.op.ts < best.op.ts
            ):
                best = entry
        if best is not None:
            best.matched = True
            if op.request is not None:
                self.done[op.rank].add(op.request)
            self._advance(op.rank)
            self._recv_matched(best.op)
            return
        channel.sends_all.append(_Entry(op))
        channel.sends_by_tag.setdefault(op.tag, deque()).append(
            _Entry(op)
        )
        if op.kind in _RENDEZVOUS_BLOCKING_SENDS:
            self.parked[op.rank] = True
        else:
            if op.kind in _BUFFERED_SEND_KINDS and op.request is not None:
                self.done[op.rank].add(op.request)
            self._advance(op.rank)
        self._wake_parked_probe(op)

    def _take_send(
        self, channel: _Channel, tag: int
    ) -> Optional[Operation]:
        """Earliest live queued send compatible with ``tag``."""
        entry = (
            _head(channel.sends_all)
            if tag == ANY_TAG
            else _head(channel.sends_by_tag.get(tag))
        )
        if entry is None:
            return None
        entry.matched = True
        # The twin entry in the other index is now stale; mark it via
        # the shared Operation identity on its next _head scan.
        other = (
            channel.sends_by_tag.get(entry.op.tag)
            if tag == ANY_TAG
            else channel.sends_all
        )
        if other:
            for twin in other:
                if twin.op is entry.op:
                    twin.matched = True
                    break
        return entry.op

    def _match_recv(self, op: Operation) -> None:
        assert op.peer is not None
        channel = self._channel(op.comm_id, op.peer, op.rank)
        sop = self._take_send(channel, op.tag)
        if sop is not None:
            if op.kind is OpKind.RECV:
                self._advance(op.rank)
            else:
                assert op.request is not None
                self.done[op.rank].add(op.request)
                self._advance(op.rank)
            self._send_matched(sop)
            return
        entry = _Entry(op)
        if op.tag == ANY_TAG:
            channel.recvs_any.append(entry)
        else:
            channel.recvs_by_tag.setdefault(op.tag, deque()).append(entry)
        if op.kind is OpKind.RECV:
            self.parked[op.rank] = True
        else:
            self._advance(op.rank)

    def _match_probe(self, op: Operation) -> None:
        assert op.peer is not None
        channel = self._channel(op.comm_id, op.peer, op.rank)
        entry = (
            _head(channel.sends_all)
            if op.tag == ANY_TAG
            else _head(channel.sends_by_tag.get(op.tag))
        )
        if entry is not None:
            self._advance(op.rank)
        else:
            self.parked[op.rank] = True

    def _wake_parked_probe(self, sop: Operation) -> None:
        dst = sop.peer
        assert dst is not None
        if dst >= self.p or self._finished(dst) or not self.parked[dst]:
            return
        wop = self.seqs[dst][self.pcs[dst]]
        if wop.kind is not OpKind.PROBE or wop.comm_id != sop.comm_id:
            return
        if wop.peer != sop.rank:
            return
        if wop.tag not in (ANY_TAG, sop.tag):
            return
        self._advance(dst)
        self._wake(dst)

    # -- completions, collectives, finalize ------------------------------

    def _request_done(self, rank: int, request: int) -> bool:
        if request in self.done[rank]:
            return True
        creator = self.model.creators[rank].get(request)
        if creator is None:
            raise LinearMatchUnsupported(
                f"rank {rank} completes unknown request {request} "
                "(the engine would raise an MPI usage error)"
            )
        return False

    def _exec_completion(self, op: Operation) -> None:
        rank = op.rank
        for request in op.requests:
            if request in self.consumed[rank]:
                raise LinearMatchUnsupported(
                    f"rank {rank} reuses already-completed request "
                    f"{request}"
                )
        needs = {
            request for request in op.requests
            if not self._request_done(rank, request)
        }
        if not needs:
            self.consumed[rank].update(op.requests)
            self._advance(rank)
            return
        self.wait_needs[rank] = needs
        self.parked[rank] = True

    def _exec_collective(self, op: Operation) -> None:
        rank = op.rank
        self.parked[rank] = True
        comm_id, idx = self.model.wave_of[op.ref]
        key = (comm_id, idx)
        self.arrivals[key] = self.arrivals.get(key, 0) + 1
        group = self.comms.get(comm_id).group
        members = self.model.wave_members[key]
        if self.arrivals[key] != len(group) or set(members) != set(group):
            return
        for member in group:
            if self.pcs[member] == members[member] and self.parked[member]:
                self._advance(member)
                self._wake(member)

    def _exec_finalize(self, op: Operation) -> None:
        self.parked[op.rank] = True
        self.finalize_arrived += 1
        if self.finalize_arrived != self.p:
            return
        for member in range(self.p):
            ts = self.model.finalize_ts[member]
            if (
                ts is not None
                and self.pcs[member] == ts
                and self.parked[member]
            ):
                self._advance(member)
                self._wake(member)

    # -- the run loop ---------------------------------------------------

    def run(self) -> None:
        while self.worklist:
            rank = self.worklist.popleft()
            self.queued[rank] = False
            while not self._finished(rank) and not self.parked[rank]:
                op = self.seqs[rank][self.pcs[rank]]
                self._check_supported(op)
                self.schedule.append(rank)
                self._exec(op)

    def _check_supported(self, op: Operation) -> None:
        kind = op.kind
        if is_collective_kind(kind):
            return
        if kind not in _SUPPORTED_KINDS:
            raise LinearMatchUnsupported(
                f"{kind.value} is outside the linear wildcard-free "
                "fragment"
            )
        if (is_recv_kind(kind) or op.is_probe()) and op.peer == ANY_SOURCE:
            raise LinearMatchUnsupported(
                "wildcard receive requires match-set exploration"
            )

    def _exec(self, op: Operation) -> None:
        kind = op.kind
        if op.is_p2p() and op.peer == PROC_NULL:
            if op.request is not None:
                self.done[op.rank].add(op.request)
            self._advance(op.rank)
        elif is_send_kind(kind):
            self._match_send(op)
        elif is_recv_kind(kind):
            self._match_recv(op)
        elif kind is OpKind.PROBE:
            self._match_probe(op)
        elif kind in (OpKind.WAIT, OpKind.WAITALL):
            self._exec_completion(op)
        elif kind is OpKind.FINALIZE:
            self._exec_finalize(op)
        elif is_collective_kind(kind):
            self._exec_collective(op)
        elif kind in _LOCAL_KINDS:
            self._advance(op.rank)
        else:  # pragma: no cover - _check_supported gates this
            raise LinearMatchUnsupported(f"cannot match {kind.value}")

    # -- terminal classification ----------------------------------------

    def classify(self) -> LinearMatchResult:
        blocked: Dict[int, OpRef] = {}
        finished: Set[int] = set()
        for rank in range(self.p):
            if self._finished(rank):
                finished.add(rank)
                continue
            op = self.seqs[rank][self.pcs[rank]]
            if op.kind is OpKind.FINALIZE:
                finished.add(rank)
            else:
                blocked[rank] = op.ref
        result = LinearMatchResult(
            has_deadlock=False, ops_processed=len(self.schedule)
        )
        if not blocked:
            return result
        conditions = {
            rank: self._blocked_condition(rank) for rank in sorted(blocked)
        }
        graph = WaitForGraph.from_conditions(
            self.p, conditions.values(), finished=finished
        )
        detection = detect_deadlock(graph)
        result.blocked_ops = dict(blocked)
        result.conditions = conditions
        result.graph = graph
        result.detection = detection
        if detection.has_deadlock:
            result.has_deadlock = True
            result.deadlocked = detection.deadlocked
            result.witness_cycle = tuple(detection.witness_cycle)
            result.witness = WitnessSchedule(
                num_ranks=self.p,
                schedule=list(self.schedule),
                pinnings={},
                deadlocked=detection.deadlocked,
                blocked_ops=dict(blocked),
                witness_cycle=tuple(detection.witness_cycle),
                label=self.label,
            )
        return result

    def _blocked_condition(self, rank: int) -> WaitForCondition:
        """Mirror ``_Model.blocked_condition`` reason strings exactly."""
        op = self.seqs[rank][self.pcs[rank]]
        cond = WaitForCondition(
            rank=rank, op_ref=op.ref, op_description=op.describe()
        )
        kind = op.kind

        def p2p_clause(creator: Operation) -> Tuple[WaitTarget, ...]:
            if is_send_kind(creator.kind):
                return (
                    intern_target(
                        creator.peer, "no matching receive posted"
                    ),
                )
            return (
                intern_target(creator.peer, "no matching send posted"),
            )

        if is_send_kind(kind):
            cond.clauses.append(
                (intern_target(op.peer, "no matching receive posted"),)
            )
        elif is_recv_kind(kind) or op.is_probe():
            cond.clauses.append(p2p_clause(op))
        elif kind in (OpKind.WAIT, OpKind.WAITALL):
            for request in op.requests:
                if request in self.consumed[rank]:
                    continue
                if request in self.done[rank]:
                    continue
                creator = self.model.creators[rank].get(request)
                if creator is None:
                    continue
                cond.clauses.append(p2p_clause(creator))
        elif is_collective_kind(kind):
            comm_id, idx = self.model.wave_of[op.ref]
            members = self.model.wave_members[(comm_id, idx)]
            group = self.comms.get(comm_id).group
            for member in group:
                ts = members.get(member)
                arrived = ts is not None and (
                    self.pcs[member] > ts
                    or (self.pcs[member] == ts and self.parked[member])
                )
                if not arrived:
                    cond.clauses.append(
                        (
                            intern_target(
                                member,
                                "never called a matching "
                                f"{op.kind.value} on communicator "
                                f"{op.comm_id}",
                            ),
                        )
                    )
        return cond


def match_linear(
    sequences: Sequence[Sequence[Operation]],
    comms: CommRegistry,
    *,
    label: str = "",
) -> LinearMatchResult:
    """Decide deadlock for wildcard-free ``sequences`` in linear time.

    Raises :class:`LinearMatchUnsupported` when the sequences use
    wildcards or runtime-steered completions — callers fall back to
    :func:`repro.analysis.explore.explore_sequences`.
    """
    matcher = _Matcher(sequences, comms, label)
    matcher.run()
    return matcher.classify()
