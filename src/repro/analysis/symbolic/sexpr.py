"""Symbolic value domain of the interprocedural extractor.

The dataflow lattice tracks every integer the analyzed rank program
can compute from its identity: affine forms ``c0 + c_r*rank +
c_s*size`` with an optional trailing ``mod size`` (the ubiquitous
``(rank + 1) % size`` neighbour arithmetic), plus the non-integer
values the MPI call protocol threads through the program — request
handles, request lists, and opaque runtime results.

Everything outside the domain collapses to :data:`UNKNOWN` (the
lattice top); the extractor then either proves the unknown value
irrelevant (both branches of an unknown condition extract to the same
sequence) or classifies the fragment ``UNDECIDABLE``.
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class Affine:
    """``c0 + c_rank*rank + c_size*size + Σ c_v*v``, opt. ``mod size``.

    The ``c_vars`` terms range over *bound loop variables* — the
    symbolic extractor keeps a ``for w in range(1, size)`` index
    symbolic in the loop body and instantiation supplies a concrete
    binding per iteration. Variable names are internal (unique per
    loop); :meth:`render` strips the disambiguating suffix.

    ``mod_size`` marks the *outermost* operation: the expression is
    ``(...) % size``. Arithmetic on a modded value loses the closed
    form (MPI neighbour expressions virtually never nest it), so such
    combinations go to UNKNOWN.
    """

    c0: int
    c_rank: int = 0
    c_size: int = 0
    mod_size: bool = False
    #: Sorted ``(variable, coefficient)`` pairs, nonzero coefficients.
    c_vars: Tuple[Tuple[str, int], ...] = ()

    @property
    def is_const(self) -> bool:
        return (
            self.c_rank == 0 and self.c_size == 0
            and not self.mod_size and not self.c_vars
        )

    @property
    def const_value(self) -> Optional[int]:
        return self.c0 if self.is_const else None

    def depends_on_rank(self) -> bool:
        return self.c_rank != 0

    def free_vars(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.c_vars)

    def evaluate(
        self, rank: int, size: int,
        bindings: Optional[Mapping[str, int]] = None,
    ) -> int:
        value = self.c0 + self.c_rank * rank + self.c_size * size
        for name, coeff in self.c_vars:
            if bindings is None or name not in bindings:
                raise KeyError(f"unbound loop variable {name!r}")
            value += coeff * bindings[name]
        if self.mod_size:
            value %= size
        return value

    def render(self) -> str:
        if self.is_const:
            return str(self.c0)
        terms = []
        if self.c_rank:
            terms.append("rank" if self.c_rank == 1 else f"{self.c_rank}*rank")
        if self.c_size:
            terms.append("size" if self.c_size == 1 else f"{self.c_size}*size")
        for name, coeff in self.c_vars:
            display = name.split("#", 1)[0]
            terms.append(display if coeff == 1 else f"{coeff}*{display}")
        if self.c0 or not terms:
            terms.append(str(self.c0))
        body = " + ".join(terms).replace("+ -", "- ")
        return f"({body}) % size" if self.mod_size else body


class _UnknownType:
    """Singleton lattice top."""

    _instance: Optional["_UnknownType"] = None

    def __new__(cls) -> "_UnknownType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNKNOWN"


UNKNOWN = _UnknownType()


@dataclass(frozen=True)
class RequestVal:
    """A request handle returned by a nonblocking/persistent call.

    ``sym_id`` numbers request-creating symbolic operations in
    extraction order within one evaluation context; instantiation maps
    them onto the engine's per-rank request numbering.
    """

    sym_id: int
    persistent: bool = False


@dataclass(frozen=True)
class RequestTuple:
    """An immutable list/tuple of request handles (``waitall`` input)."""

    items: Tuple[RequestVal, ...]


#: A value in the environment.
SymValue = Union[Affine, _UnknownType, RequestVal, RequestTuple]


def const(value: int) -> Affine:
    return Affine(c0=value)


def var(name: str) -> Affine:
    """A bound loop variable as an affine term."""
    return Affine(c0=0, c_vars=((name, 1),))


RANK = Affine(c0=0, c_rank=1)
SIZE = Affine(c0=0, c_size=1)


def _merge_vars(
    a: Tuple[Tuple[str, int], ...],
    b: Tuple[Tuple[str, int], ...],
    sign: int,
) -> Tuple[Tuple[str, int], ...]:
    coeffs: Dict[str, int] = dict(a)
    for name, coeff in b:
        coeffs[name] = coeffs.get(name, 0) + sign * coeff
    return tuple(
        (name, coeff) for name, coeff in sorted(coeffs.items()) if coeff
    )


def _scale_vars(
    vars_: Tuple[Tuple[str, int], ...], k: int
) -> Tuple[Tuple[str, int], ...]:
    if k == 0:
        return ()
    return tuple((name, k * coeff) for name, coeff in vars_)


def join(a: SymValue, b: SymValue) -> SymValue:
    """Lattice join of two branch results (equal or top)."""
    if a == b:
        return a
    return UNKNOWN


def add(a: SymValue, b: SymValue) -> SymValue:
    if isinstance(a, Affine) and isinstance(b, Affine) \
            and not a.mod_size and not b.mod_size:
        return Affine(a.c0 + b.c0, a.c_rank + b.c_rank, a.c_size + b.c_size,
                      c_vars=_merge_vars(a.c_vars, b.c_vars, 1))
    return UNKNOWN


def sub(a: SymValue, b: SymValue) -> SymValue:
    if isinstance(a, Affine) and isinstance(b, Affine) \
            and not a.mod_size and not b.mod_size:
        return Affine(a.c0 - b.c0, a.c_rank - b.c_rank, a.c_size - b.c_size,
                      c_vars=_merge_vars(a.c_vars, b.c_vars, -1))
    return UNKNOWN


def neg(a: SymValue) -> SymValue:
    if isinstance(a, Affine) and not a.mod_size:
        return Affine(-a.c0, -a.c_rank, -a.c_size,
                      c_vars=_scale_vars(a.c_vars, -1))
    return UNKNOWN


def mul(a: SymValue, b: SymValue) -> SymValue:
    if not (isinstance(a, Affine) and isinstance(b, Affine)):
        return UNKNOWN
    if a.mod_size or b.mod_size:
        return UNKNOWN
    if a.is_const:
        k = a.c0
        return Affine(k * b.c0, k * b.c_rank, k * b.c_size,
                      c_vars=_scale_vars(b.c_vars, k))
    if b.is_const:
        k = b.c0
        return Affine(k * a.c0, k * a.c_rank, k * a.c_size,
                      c_vars=_scale_vars(a.c_vars, k))
    return UNKNOWN


def mod(a: SymValue, b: SymValue) -> SymValue:
    """``a % b`` — closed only for ``% size`` and const ``%`` const."""
    if not (isinstance(a, Affine) and isinstance(b, Affine)):
        return UNKNOWN
    if a.mod_size or b.mod_size:
        return UNKNOWN
    if b == SIZE:
        return Affine(a.c0, a.c_rank, a.c_size, mod_size=True,
                      c_vars=a.c_vars)
    if a.is_const and b.is_const and b.c0 != 0:
        return const(a.c0 % b.c0)
    return UNKNOWN


def floordiv(a: SymValue, b: SymValue) -> SymValue:
    if (
        isinstance(a, Affine) and isinstance(b, Affine)
        and a.is_const and b.is_const and b.c0 != 0
    ):
        return const(a.c0 // b.c0)
    return UNKNOWN


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------

class Relop(Enum):
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


_NEGATED = {
    Relop.EQ: Relop.NE,
    Relop.NE: Relop.EQ,
    Relop.LT: Relop.GE,
    Relop.LE: Relop.GT,
    Relop.GT: Relop.LE,
    Relop.GE: Relop.LT,
}


@dataclass(frozen=True)
class Cond:
    """``lhs <relop> rhs`` over affine expressions.

    ``lhs_mod`` optionally wraps the left side in ``% k`` for a
    constant ``k`` (the ``rank % 2 == 0`` parity split).
    """

    lhs: Affine
    op: Relop
    rhs: Affine
    lhs_mod: Optional[int] = None

    def negate(self) -> "Cond":
        return Cond(self.lhs, _NEGATED[self.op], self.rhs, self.lhs_mod)

    def depends_on_rank(self) -> bool:
        return self.lhs.depends_on_rank() or self.rhs.depends_on_rank()

    def free_vars(self) -> Tuple[str, ...]:
        return self.lhs.free_vars() + self.rhs.free_vars()

    def evaluate(
        self, rank: int, size: int,
        bindings: Optional[Mapping[str, int]] = None,
    ) -> bool:
        left = self.lhs.evaluate(rank, size, bindings)
        if self.lhs_mod is not None:
            left %= self.lhs_mod
        right = self.rhs.evaluate(rank, size, bindings)
        if self.op is Relop.EQ:
            return left == right
        if self.op is Relop.NE:
            return left != right
        if self.op is Relop.LT:
            return left < right
        if self.op is Relop.LE:
            return left <= right
        if self.op is Relop.GT:
            return left > right
        return left >= right

    def render(self) -> str:
        lhs = self.lhs.render()
        if self.lhs_mod is not None:
            lhs = f"{lhs} % {self.lhs_mod}"
        return f"{lhs} {self.op.value} {self.rhs.render()}"
