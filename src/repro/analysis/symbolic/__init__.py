"""Interprocedural symbolic extraction and decidable-fragment verdicts.

Layers (each a module, bottom-up):

* :mod:`.sexpr` — the affine symbolic value domain and conditions;
* :mod:`.cfg` — per-function CFGs and the module call graph;
* :mod:`.symexec` — abstract interpretation of rank programs into
  rank-parametric term trees, plus concrete instantiation;
* :mod:`.linmatch` — the O(n) unique-matching deadlock decision for
  wildcard-free sequences;
* :mod:`.fragments` — the ``SEQ-DETERMINISTIC`` /
  ``SEQ-WILDCARD-FREE-LOOPS`` / ``UNDECIDABLE`` classifier and the
  verify fast-path entry points.
"""
from repro.analysis.symbolic.fragments import (
    Fragment,
    ProgramClassification,
    SequenceClassification,
    classify_extraction,
    classify_module,
    classify_sequences,
    classify_source,
    classify_summary,
    decide_extraction,
    decide_sequences,
)
from repro.analysis.symbolic.linmatch import (
    LinearMatchResult,
    LinearMatchUnsupported,
    match_linear,
)
from repro.analysis.symbolic.symexec import (
    InstantiationError,
    ProgramSummary,
    SymbolicUnsupported,
    instantiate,
    render_terms,
    summarize_module,
    summarize_program,
    summarize_source,
)

__all__ = [
    "Fragment",
    "InstantiationError",
    "LinearMatchResult",
    "LinearMatchUnsupported",
    "ProgramClassification",
    "ProgramSummary",
    "SequenceClassification",
    "SymbolicUnsupported",
    "classify_extraction",
    "classify_module",
    "classify_sequences",
    "classify_source",
    "classify_summary",
    "decide_extraction",
    "decide_sequences",
    "instantiate",
    "match_linear",
    "render_terms",
    "summarize_module",
    "summarize_program",
    "summarize_source",
]
