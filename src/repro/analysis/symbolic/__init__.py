"""Interprocedural symbolic extraction and decidable-fragment verdicts.

Layers (each a module, bottom-up):

* :mod:`.sexpr` — the affine symbolic value domain and conditions;
* :mod:`.cfg` — per-function CFGs and the module call graph;
* :mod:`.symexec` — abstract interpretation of rank programs into
  rank-parametric term trees, plus concrete instantiation;
* :mod:`.linmatch` — the O(n) unique-matching deadlock decision for
  wildcard-free sequences;
* :mod:`.fragments` — the ``SEQ-DETERMINISTIC`` /
  ``SEQ-WILDCARD-FREE-LOOPS`` / ``UNDECIDABLE`` classifier and the
  verify fast-path entry points;
* :mod:`.solver` — affine congruence/interval solving over ``rank``
  and ``size`` via eventually-periodic size sets;
* :mod:`.paramatch` — uniform-affine admission and symbolic channel
  matching (always / never / p-dependent per site);
* :mod:`.prove` — the parameterized prover: ``PROVED-ALL-P``,
  ``REFUTED`` with the minimal failing ``p`` and a replayable
  witness, or an honest ``UNKNOWN``/``UNDECIDABLE``.
"""
from repro.analysis.symbolic.fragments import (
    Fragment,
    ProgramClassification,
    SequenceClassification,
    classify_extraction,
    classify_module,
    classify_sequences,
    classify_source,
    classify_summary,
    decide_extraction,
    decide_sequences,
)
from repro.analysis.symbolic.linmatch import (
    LinearMatchResult,
    LinearMatchUnsupported,
    match_linear,
)
from repro.analysis.symbolic.paramatch import (
    Admission,
    ChannelAnalysis,
    ChannelVerdict,
    admit_terms,
    analyze_channels,
)
from repro.analysis.symbolic.prove import (
    ProofCertificate,
    ProveResult,
    ProveVerdict,
    prove_module,
    prove_path,
    prove_source,
    prove_summary,
)
from repro.analysis.symbolic.solver import (
    MIN_SIZE,
    PeriodicityError,
    SizeSet,
    System,
    suggest_bounds,
)
from repro.analysis.symbolic.symexec import (
    InstantiationError,
    ProgramSummary,
    SymbolicUnsupported,
    instantiate,
    render_terms,
    summarize_module,
    summarize_program,
    summarize_source,
)

__all__ = [
    "Admission",
    "ChannelAnalysis",
    "ChannelVerdict",
    "Fragment",
    "InstantiationError",
    "LinearMatchResult",
    "LinearMatchUnsupported",
    "MIN_SIZE",
    "PeriodicityError",
    "ProgramClassification",
    "ProgramSummary",
    "ProofCertificate",
    "ProveResult",
    "ProveVerdict",
    "SequenceClassification",
    "SizeSet",
    "SymbolicUnsupported",
    "System",
    "admit_terms",
    "analyze_channels",
    "classify_extraction",
    "classify_module",
    "classify_sequences",
    "classify_source",
    "classify_summary",
    "decide_extraction",
    "decide_sequences",
    "instantiate",
    "match_linear",
    "prove_module",
    "prove_path",
    "prove_source",
    "prove_summary",
    "render_terms",
    "summarize_module",
    "summarize_program",
    "summarize_source",
    "suggest_bounds",
]
