"""Symbolic channel matching for the parameterized prover.

Bridges the symbolic term trees of :mod:`.symexec` to the
eventually-periodic size algebra of :mod:`.solver`:

* :func:`admit_terms` decides whether a term tree lies in the
  **uniform-affine** fragment — unit coefficients on ``rank``/``size``
  and loop variables, constant moduli, bounded constant offsets — and,
  when it does, derives the certificate frame: a threshold ``T``
  (twice the largest constant offset past which wrap-around patterns
  have stabilized), a period ``Λ`` (lcm of the residue-split moduli),
  and the finite confirmation window ``[MIN_SIZE, window_hi)`` that a
  :func:`~repro.analysis.symbolic.linmatch.match_linear` sweep must
  clear before deadlock-freedom extrapolates to all ``p``.

* :func:`analyze_channels` pairs send/recv/collective sites by solving
  their endpoint equations (``dst = (rank+1) mod size`` against
  ``src = rank - 1`` under the enclosing role splits and ``Repeat``
  trip counts) and classifies every site as **always-matched**,
  **never-matched**, or **p-dependent** with an exact
  :class:`~repro.analysis.symbolic.solver.SizeSet` of unmatched sizes.
  Endpoint equations are solved the same way the solver decides
  everything else — bounded evaluation over the certificate window
  with verified periodic extrapolation — so a site whose matching
  behavior is *not* eventually periodic raises
  :class:`~repro.analysis.symbolic.solver.PeriodicityError` instead of
  yielding a bogus certificate.

The p-dependent residues feed the falsifier in :mod:`.prove`: each
residue class's minimal representative becomes a candidate size whose
deadlock is confirmed (or refuted) through the authoritative
``match_linear`` path.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.symbolic.sexpr import Affine, Cond
from repro.analysis.symbolic.solver import (
    MIN_SIZE,
    VERIFY_PERIODS,
    SizeSet,
)
from repro.analysis.symbolic.symexec import Branch, Repeat, SymOp, Term
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_collective_kind,
    is_recv_kind,
    is_send_kind,
)

#: Channel classifications.
ALWAYS_MATCHED = "always-matched"
NEVER_MATCHED = "never-matched"
P_DEPENDENT = "p-dependent"

#: The confirmation window always covers at least ``[2, 18)`` so the
#: small sizes users actually launch (and the property suite samples,
#: ``p in 2..16``) are confirmed directly, never by extrapolation.
DEFAULT_WINDOW_HI = 18

#: Hard cap on the confirmation window. A uniform-affine program whose
#: constants push the derived window past this is refused (UNKNOWN)
#: rather than swept forever.
MAX_WINDOW_HI = 48

#: Budget on term-tree walks across the whole window (ops evaluated);
#: guards against symbolic trip counts exploding the enumeration.
_EVAL_BUDGET = 250_000


class ChannelBudgetExceeded(Exception):
    """Channel enumeration outgrew its evaluation budget."""


@dataclass(frozen=True)
class Admission:
    """Uniform-affine admission verdict plus the certificate frame."""

    admitted: bool
    reason: str = ""
    #: Largest constant offset seen (drives the threshold).
    max_const: int = 0
    #: lcm of the residue-split moduli (drives the period).
    modulus_lcm: int = 1
    #: Stabilization threshold for the periodic extrapolation.
    threshold: int = MIN_SIZE
    #: First size *not* confirmed by the linear sweep.
    window_hi: int = DEFAULT_WINDOW_HI

    @property
    def sizes(self) -> Tuple[int, ...]:
        """The confirmation window, ascending."""
        return tuple(range(MIN_SIZE, self.window_hi))


@dataclass(frozen=True)
class ChannelVerdict:
    """Matching classification of one send/recv/collective site."""

    site: str
    lineno: int
    kind: str
    classification: str
    live: SizeSet
    unmatched: SizeSet

    @property
    def candidate_sizes(self) -> Tuple[int, ...]:
        """Minimal representatives of the unmatched residues —
        the falsifier's candidate process counts."""
        return tuple(self.unmatched.sample(3))

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "line": self.lineno,
            "kind": self.kind,
            "classification": self.classification,
            "live": self.live.render(),
            "unmatched": self.unmatched.render(),
            "candidate_sizes": list(self.candidate_sizes),
        }


@dataclass
class ChannelAnalysis:
    """Per-site matching classifications over the certificate window."""

    channels: List[ChannelVerdict] = field(default_factory=list)

    def count(self, classification: str) -> int:
        return sum(
            1 for c in self.channels
            if c.classification == classification
        )

    @property
    def candidate_sizes(self) -> Tuple[int, ...]:
        sizes: Set[int] = set()
        for channel in self.channels:
            sizes.update(channel.candidate_sizes)
        return tuple(sorted(sizes))


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------

def _uniform(affine: Affine) -> bool:
    return (
        abs(affine.c_rank) <= 1
        and abs(affine.c_size) <= 1
        and all(abs(coeff) <= 1 for _, coeff in affine.c_vars)
    )


class _AdmissionScan:
    def __init__(self) -> None:
        self.max_const = 0
        self.moduli: List[int] = []
        self.offender: Optional[Tuple[str, int]] = None

    def _affine(
        self, affine: Optional[Affine], lineno: int, *,
        count_const: bool = True,
    ) -> None:
        if affine is None or self.offender is not None:
            return
        if not _uniform(affine):
            self.offender = (affine.render(), lineno)
            return
        if count_const:
            self.max_const = max(self.max_const, abs(affine.c0))

    def walk(self, terms: Sequence[Term]) -> None:
        for term in terms:
            if self.offender is not None:
                return
            if isinstance(term, SymOp):
                self._affine(term.peer, term.lineno)
                self._affine(term.root, term.lineno)
                # A constant tag is matching-relevant but never
                # size-dependent; only rank/size/loop-var tags widen
                # the certificate frame.
                self._affine(
                    term.tag, term.lineno,
                    count_const=not term.tag.is_const,
                )
            elif isinstance(term, Repeat):
                self._affine(term.count, term.lineno)
                self._affine(term.start, term.lineno)
                if abs(term.step) > 1:
                    self.max_const = max(self.max_const, abs(term.step))
                self.walk(term.body)
            else:
                self._affine(term.cond.lhs, term.lineno)
                self._affine(term.cond.rhs, term.lineno)
                if term.cond.lhs_mod is not None:
                    self.moduli.append(term.cond.lhs_mod)
                    self.max_const = max(
                        self.max_const, abs(term.cond.lhs_mod)
                    )
                self.walk(term.then)
                self.walk(term.orelse)


def admit_terms(
    terms: Sequence[Term], *, max_window: int = MAX_WINDOW_HI
) -> Admission:
    """Admit a term tree to the uniform-affine certificate fragment."""
    scan = _AdmissionScan()
    scan.walk(terms)
    if scan.offender is not None:
        rendered, lineno = scan.offender
        return Admission(
            admitted=False,
            reason=(
                f"non-uniform affine term `{rendered}` at line "
                f"{lineno} (coefficients beyond ±1 leave the "
                f"certificate fragment)"
            ),
        )
    period = 1
    for modulus in scan.moduli:
        if modulus > 1:
            period = math.lcm(period, modulus)
    threshold = MIN_SIZE + 2 * (scan.max_const + 2)
    window_hi = max(
        DEFAULT_WINDOW_HI, threshold + (1 + VERIFY_PERIODS) * period
    )
    if window_hi > max_window:
        return Admission(
            admitted=False,
            reason=(
                f"certificate window [2, {window_hi}) exceeds the "
                f"{max_window}-size cap (constant offsets up to "
                f"{scan.max_const}, modulus lcm {period})"
            ),
            max_const=scan.max_const,
            modulus_lcm=period,
            threshold=threshold,
            window_hi=window_hi,
        )
    return Admission(
        admitted=True,
        max_const=scan.max_const,
        modulus_lcm=period,
        threshold=threshold,
        window_hi=window_hi,
    )


# ----------------------------------------------------------------------
# Channel enumeration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _Site:
    """A static send/recv/collective site in the term tree."""

    index: int
    op: SymOp
    role: str

    @property
    def kind_label(self) -> str:
        if is_send_kind(self.op.kind):
            return "send"
        if is_recv_kind(self.op.kind):
            return "recv"
        if is_collective_kind(self.op.kind):
            return "collective"
        return "completion"


class _WindowEnumerator:
    """Concrete walk of one term tree at one ``(rank, size)``.

    Mirrors the control-flow evaluation of the instantiator but
    records only the matching envelope per site — ``(src, dst, tag)``
    instance counts for point-to-point, per-rank occurrence/root lists
    for collectives — which is all the endpoint equations need.
    """

    def __init__(
        self, sites: Dict[int, _Site], rank: int, size: int,
        budget: List[int],
    ) -> None:
        self.sites = sites
        self.rank = rank
        self.size = size
        self.budget = budget
        self.bindings: Dict[str, int] = {}
        #: site index -> list of (peer, tag) instances at this rank.
        self.p2p: Dict[int, List[Tuple[int, int]]] = {}
        #: site index -> list of root values (None for unrooted).
        self.collectives: Dict[int, List[Optional[int]]] = {}
        #: collective occurrence list in program order:
        #: (kind, root, site index).
        self.collective_order: List[
            Tuple[OpKind, Optional[int], int]
        ] = []

    def _spend(self) -> None:
        self.budget[0] -= 1
        if self.budget[0] <= 0:
            raise ChannelBudgetExceeded(
                "channel enumeration exceeded its evaluation budget"
            )

    def walk(self, terms: Sequence[Term], site_ids: Dict[int, int]) -> None:
        for term in terms:
            if isinstance(term, SymOp):
                self._record(term, site_ids[id(term)])
            elif isinstance(term, Repeat):
                self._repeat(term, site_ids)
            else:
                taken = term.cond.evaluate(
                    self.rank, self.size, self.bindings
                )
                self.walk(
                    term.then if taken else term.orelse, site_ids
                )

    def _repeat(self, term: Repeat, site_ids: Dict[int, int]) -> None:
        count = term.count.evaluate(self.rank, self.size, self.bindings)
        if term.var is None or term.start is None:
            for _ in range(max(0, count)):
                self.walk(term.body, site_ids)
            return
        start = term.start.evaluate(self.rank, self.size, self.bindings)
        for iteration in range(max(0, count)):
            self.bindings[term.var] = start + iteration * term.step
            self.walk(term.body, site_ids)
        self.bindings.pop(term.var, None)

    def _record(self, op: SymOp, site_index: int) -> None:
        self._spend()
        kind = op.kind
        if is_send_kind(kind) or is_recv_kind(kind):
            assert op.peer is not None
            peer = op.peer.evaluate(self.rank, self.size, self.bindings)
            if peer == PROC_NULL:
                return
            tag = op.tag.evaluate(self.rank, self.size, self.bindings)
            self.p2p.setdefault(site_index, []).append((peer, tag))
        elif is_collective_kind(kind):
            root = (
                op.root.evaluate(self.rank, self.size, self.bindings)
                if op.root is not None else None
            )
            self.collectives.setdefault(site_index, []).append(root)
            self.collective_order.append((kind, root, site_index))
        # Completions (wait/waitall) carry no matching envelope.


def _collect_sites(terms: Sequence[Term]) -> Tuple[
    Dict[int, _Site], Dict[int, int]
]:
    """Index every matching-relevant SymOp, with its role context."""
    sites: Dict[int, _Site] = {}
    site_ids: Dict[int, int] = {}

    def visit(terms: Sequence[Term], role: List[str]) -> None:
        for term in terms:
            if isinstance(term, SymOp):
                if (
                    is_send_kind(term.kind)
                    or is_recv_kind(term.kind)
                    or is_collective_kind(term.kind)
                ):
                    index = len(sites)
                    label = term.describe()
                    if role:
                        label += f"  [{' and '.join(role)}]"
                    sites[index] = _Site(index, term, label)
                    site_ids[id(term)] = index
                else:
                    site_ids[id(term)] = -1
            elif isinstance(term, Repeat):
                visit(term.body, role)
            else:
                rendered = term.cond.render()
                visit(term.then, role + [rendered])
                visit(
                    term.orelse,
                    role + [term.cond.negate().render()],
                )

    visit(list(terms), [])
    return sites, site_ids


def _unmatched_sites_at(
    terms: Sequence[Term],
    sites: Dict[int, _Site],
    site_ids: Dict[int, int],
    size: int,
    budget: List[int],
) -> Tuple[Set[int], Set[int]]:
    """``(live, unmatched)`` site indices at one concrete size.

    Point-to-point matching solves the endpoint equations by counting:
    for every ``(src, dst)`` pair the send tags must be coverable by
    the recv tags (``ANY_TAG`` receives cover any leftover). A site is
    *unmatched* when it contributes instances to a bucket with a
    deficit — a send nobody receives, a receive nobody sends to, or a
    collective the other ranks do not join symmetrically.
    """
    walkers = []
    for rank in range(size):
        walker = _WindowEnumerator(sites, rank, size, budget)
        walker.walk(terms, site_ids)
        walkers.append(walker)

    live: Set[int] = set()
    unmatched: Set[int] = set()

    # -- point-to-point: bucket instances by (src, dst) ----------------
    # bucket -> tag -> count and contributing sites. ANY_TAG receives
    # are wildcard slots within their bucket.
    sends: Dict[Tuple[int, int], Dict[int, int]] = {}
    recvs: Dict[Tuple[int, int], Dict[int, int]] = {}
    send_sites: Dict[Tuple[int, int], Set[int]] = {}
    recv_sites: Dict[Tuple[int, int], Set[int]] = {}
    for walker in walkers:
        for site_index, instances in walker.p2p.items():
            site = sites[site_index]
            live.add(site_index)
            for peer, tag in instances:
                if is_send_kind(site.op.kind):
                    if not 0 <= peer < size:
                        unmatched.add(site_index)
                        continue
                    bucket = (walker.rank, peer)
                    sends.setdefault(bucket, {})
                    sends[bucket][tag] = sends[bucket].get(tag, 0) + 1
                    send_sites.setdefault(bucket, set()).add(site_index)
                else:
                    src = peer if peer != ANY_SOURCE else ANY_SOURCE
                    if src != ANY_SOURCE and not 0 <= src < size:
                        unmatched.add(site_index)
                        continue
                    bucket = (src, walker.rank)
                    recvs.setdefault(bucket, {})
                    recvs[bucket][tag] = recvs[bucket].get(tag, 0) + 1
                    recv_sites.setdefault(bucket, set()).add(site_index)

    for bucket in set(sends) | set(recvs):
        send_tags = dict(sends.get(bucket, {}))
        recv_tags = dict(recvs.get(bucket, {}))
        wildcard = recv_tags.pop(ANY_TAG, 0)
        send_deficit = 0
        recv_deficit = 0
        for tag, count in send_tags.items():
            take = min(count, recv_tags.get(tag, 0))
            recv_tags[tag] = recv_tags.get(tag, 0) - take
            remaining = count - take
            absorb = min(remaining, wildcard)
            wildcard -= absorb
            send_deficit += remaining - absorb
        recv_deficit = sum(recv_tags.values()) + wildcard
        if send_deficit:
            unmatched.update(send_sites.get(bucket, set()))
        if recv_deficit:
            unmatched.update(recv_sites.get(bucket, set()))

    # -- collectives: the per-rank occurrence streams must agree ------
    streams = [walker.collective_order for walker in walkers]
    for walker in walkers:
        for site_index in walker.collectives:
            live.add(site_index)
    reference = streams[0]
    symmetric = all(
        len(stream) == len(reference)
        and all(
            a[0] is b[0] and a[1] == b[1]
            for a, b in zip(stream, reference)
        )
        for stream in streams[1:]
    )
    if not symmetric:
        for stream in streams:
            for _, _, site_index in stream:
                unmatched.add(site_index)

    return live, unmatched


def analyze_channels(
    terms: Sequence[Term], admission: Admission
) -> ChannelAnalysis:
    """Classify every channel site over the certificate window.

    Raises :class:`~repro.analysis.symbolic.solver.PeriodicityError`
    when a site's matching behavior does not extrapolate and
    :class:`ChannelBudgetExceeded` when enumeration outgrows its
    budget — the prover maps both to UNKNOWN.
    """
    sites, site_ids = _collect_sites(terms)
    analysis = ChannelAnalysis()
    if not sites:
        return analysis

    budget = [_EVAL_BUDGET]
    live_at: Dict[int, Set[int]] = {}
    unmatched_at: Dict[int, Set[int]] = {}
    for size in admission.sizes:
        live, unmatched = _unmatched_sites_at(
            terms, sites, site_ids, size, budget
        )
        live_at[size] = live
        unmatched_at[size] = unmatched

    for index in sorted(sites):
        site = sites[index]
        live_set = SizeSet.from_predicate(
            lambda s, i=index: i in live_at[s],
            admission.threshold,
            admission.modulus_lcm,
        )
        unmatched_set = SizeSet.from_predicate(
            lambda s, i=index: i in unmatched_at[s],
            admission.threshold,
            admission.modulus_lcm,
        )
        if unmatched_set.is_empty():
            classification = ALWAYS_MATCHED
        elif unmatched_set.semantically_equal(live_set):
            classification = NEVER_MATCHED
        else:
            classification = P_DEPENDENT
        analysis.channels.append(
            ChannelVerdict(
                site=site.role,
                lineno=site.op.lineno,
                kind=site.kind_label,
                classification=classification,
                live=live_set,
                unmatched=unmatched_set,
            )
        )
    return analysis
