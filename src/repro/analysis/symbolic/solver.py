"""Affine constraint solving over ``rank``/``size`` congruence classes.

The parameterized prover needs three decision services over systems of
affine conditions (:class:`~repro.analysis.symbolic.sexpr.Cond`) in the
two distinguished variables ``rank`` and ``size``: satisfiability
(is there a process count and a rank that meet the system?),
implication (does the system force another condition at every size?),
and projection (for *which* process counts does some rank satisfy it?).
No external SMT solver is available, and none is needed: the symbolic
domain only produces *uniform affine* expressions — unit coefficients
on ``rank``/``size``/loop variables, bounded constant offsets, and
constant moduli — and for that class every derived predicate of the
process count is **eventually periodic**:

    there exist a threshold ``T`` and a period ``Λ`` (the lcm of the
    moduli involved) such that for all ``s >= T``,
    ``P(s) == P(s + Λ)``.

Intuitively, once ``size`` exceeds twice the largest constant offset,
``(rank + c) % size`` wrap-around happens for exactly the same ranks
relative to the ends of the interval, and residue splits like
``rank % 2`` repeat with the lcm of their moduli. The solver therefore
decides by *bounded evaluation with verified extrapolation*: evaluate
the predicate on every size below ``T``, read one period
``[T, T + Λ)`` off the tail, and **check** the claimed periodicity on
further periods — refusing (:class:`PeriodicityError`) rather than
extrapolating when the check fails. The result is an exact
:class:`SizeSet`: finitely many explicit sizes plus residue classes
modulo the period.

This calculus is sound by construction for REFUTED answers (every
member of a :class:`SizeSet` was either evaluated directly or lies in
a verified residue class) and is complete for the uniform-affine
fragment admitted by :mod:`repro.analysis.symbolic.paramatch`; see
DESIGN section 15 for the cutoff argument.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.symbolic.sexpr import Affine, Cond

#: MPI programs run on at least two processes; every size domain
#: starts here.
MIN_SIZE = 2

#: Extra periods re-evaluated beyond the first to confirm the
#: eventually-periodic extrapolation before a SizeSet is built.
VERIFY_PERIODS = 2


class PeriodicityError(Exception):
    """A size predicate failed the periodicity verification window.

    Raised instead of silently extrapolating; callers fall back to an
    UNKNOWN verdict (never to an unsound PROVED/REFUTED one).
    """

    def __init__(self, message: str, size: int) -> None:
        super().__init__(message)
        self.message = message
        #: The size at which the predicate diverged from its claimed
        #: period.
        self.size = size


@dataclass(frozen=True)
class SizeSet:
    """An eventually-periodic set of process counts ``>= MIN_SIZE``.

    Members below ``threshold`` are listed explicitly; members at or
    above it are exactly the sizes whose residue modulo ``period`` is
    in ``residues``. All set algebra re-aligns operands to a common
    ``(max threshold, lcm period)`` representation, so the class is
    closed under union/intersection/difference/complement.
    """

    threshold: int
    period: int
    explicit: frozenset[int]
    residues: frozenset[int]

    def __post_init__(self) -> None:
        if self.threshold < MIN_SIZE:
            raise ValueError("threshold must be >= MIN_SIZE")
        if self.period < 1:
            raise ValueError("period must be >= 1")

    # -- construction --------------------------------------------------

    @classmethod
    def empty(cls) -> "SizeSet":
        return cls(MIN_SIZE, 1, frozenset(), frozenset())

    @classmethod
    def all_sizes(cls) -> "SizeSet":
        return cls(MIN_SIZE, 1, frozenset(), frozenset({0}))

    @classmethod
    def from_predicate(
        cls,
        pred: Callable[[int], bool],
        threshold: int,
        period: int,
        verify_periods: int = VERIFY_PERIODS,
    ) -> "SizeSet":
        """Build the exact set ``{s >= MIN_SIZE : pred(s)}``.

        ``pred`` is evaluated on ``[MIN_SIZE, threshold)`` for the
        explicit part and on ``[threshold, threshold + period)`` for
        the residue classes; the classes are then *verified* against
        ``verify_periods`` further periods and a
        :class:`PeriodicityError` is raised on any mismatch.
        """
        threshold = max(threshold, MIN_SIZE)
        period = max(period, 1)
        explicit = frozenset(
            s for s in range(MIN_SIZE, threshold) if pred(s)
        )
        residues = frozenset(
            s % period
            for s in range(threshold, threshold + period)
            if pred(s)
        )
        verify_hi = threshold + (1 + verify_periods) * period
        for s in range(threshold + period, verify_hi):
            if pred(s) != (s % period in residues):
                raise PeriodicityError(
                    f"predicate is not periodic with period {period} "
                    f"above {threshold} (diverges at size {s})",
                    s,
                )
        return cls(threshold, period, explicit, residues)

    # -- membership ----------------------------------------------------

    def contains(self, size: int) -> bool:
        if size < MIN_SIZE:
            return False
        if size < self.threshold:
            return size in self.explicit
        return size % self.period in self.residues

    def __contains__(self, size: int) -> bool:
        return self.contains(size)

    def is_empty(self) -> bool:
        return not self.explicit and not self.residues

    def is_all(self) -> bool:
        return (
            len(self.explicit) == self.threshold - MIN_SIZE
            and len(self.residues) == self.period
        )

    def min_value(self) -> Optional[int]:
        """The smallest member, or ``None`` for the empty set."""
        if self.explicit:
            return min(self.explicit)
        if not self.residues:
            return None
        return min(
            self.threshold + ((r - self.threshold) % self.period)
            for r in self.residues
        )

    def iter_values(self) -> Iterator[int]:
        """Members in ascending order (infinite when residues exist)."""
        for s in sorted(self.explicit):
            yield s
        if not self.residues:
            return
        s = self.threshold
        while True:
            if s % self.period in self.residues:
                yield s
            s += 1

    def sample(self, k: int) -> List[int]:
        """The first ``k`` members in ascending order."""
        out: List[int] = []
        for s in self.iter_values():
            out.append(s)
            if len(out) >= k:
                break
        return out

    # -- set algebra ---------------------------------------------------

    def _realign(self, threshold: int, period: int) -> "SizeSet":
        """An equal set re-expressed over ``(threshold, period)``."""
        if threshold < self.threshold or period % self.period != 0:
            raise ValueError("can only realign to a coarser frame")
        explicit = frozenset(
            s for s in range(MIN_SIZE, threshold) if self.contains(s)
        )
        residues = frozenset(
            s % period
            for s in range(threshold, threshold + period)
            if self.contains(s)
        )
        return SizeSet(threshold, period, explicit, residues)

    def _align(self, other: "SizeSet") -> Tuple["SizeSet", "SizeSet"]:
        threshold = max(self.threshold, other.threshold)
        period = math.lcm(self.period, other.period)
        return (
            self._realign(threshold, period),
            other._realign(threshold, period),
        )

    def union(self, other: "SizeSet") -> "SizeSet":
        a, b = self._align(other)
        return SizeSet(
            a.threshold, a.period,
            a.explicit | b.explicit, a.residues | b.residues,
        )

    def intersect(self, other: "SizeSet") -> "SizeSet":
        a, b = self._align(other)
        return SizeSet(
            a.threshold, a.period,
            a.explicit & b.explicit, a.residues & b.residues,
        )

    def difference(self, other: "SizeSet") -> "SizeSet":
        a, b = self._align(other)
        return SizeSet(
            a.threshold, a.period,
            a.explicit - b.explicit, a.residues - b.residues,
        )

    def complement(self) -> "SizeSet":
        return SizeSet(
            self.threshold,
            self.period,
            frozenset(range(MIN_SIZE, self.threshold)) - self.explicit,
            frozenset(range(self.period)) - self.residues,
        )

    def semantically_equal(self, other: "SizeSet") -> bool:
        """Equality as sets (representations may differ)."""
        a, b = self._align(other)
        return a.explicit == b.explicit and a.residues == b.residues

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        if self.is_empty():
            return "no p"
        if self.is_all():
            return f"all p >= {MIN_SIZE}"
        parts: List[str] = []
        if self.explicit:
            listed = ", ".join(str(s) for s in sorted(self.explicit))
            parts.append(f"p in {{{listed}}}")
        if self.residues:
            if len(self.residues) == self.period:
                parts.append(f"all p >= {self.threshold}")
            else:
                classes = ", ".join(
                    str(r) for r in sorted(self.residues)
                )
                if self.period == 1:
                    parts.append(f"all p >= {self.threshold}")
                else:
                    parts.append(
                        f"p % {self.period} in {{{classes}}} "
                        f"for p >= {self.threshold}"
                    )
        return " or ".join(parts)


# ----------------------------------------------------------------------
# Constraint systems
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class System:
    """A conjunction of affine conditions over ``rank`` and ``size``.

    ``rank`` implicitly ranges over ``[0, size)`` and ``size`` over
    ``[MIN_SIZE, ∞)``; decision procedures quantify accordingly. All
    three services decide by bounded evaluation over a caller-supplied
    ``(threshold, period)`` frame (see :func:`suggest_bounds`) with
    verified periodic extrapolation.
    """

    conds: Tuple[Cond, ...]

    def holds(
        self,
        rank: int,
        size: int,
        bindings: Optional[Mapping[str, int]] = None,
    ) -> bool:
        return all(
            cond.evaluate(rank, size, bindings) for cond in self.conds
        )

    def project_sizes(self, threshold: int, period: int) -> SizeSet:
        """``{s : ∃ rank in [0, s) satisfying the system}``."""
        return SizeSet.from_predicate(
            lambda s: any(self.holds(r, s) for r in range(s)),
            threshold,
            period,
        )

    def satisfiable(self, threshold: int, period: int) -> bool:
        """``∃ size >= MIN_SIZE, ∃ rank in [0, size)``."""
        return not self.project_sizes(threshold, period).is_empty()

    def implies(
        self, other: Cond, threshold: int, period: int
    ) -> bool:
        """``∀ size >= MIN_SIZE, ∀ rank in [0, size): system ⇒ other``."""
        def entailed(size: int) -> bool:
            return all(
                (not self.holds(r, size)) or other.evaluate(r, size)
                for r in range(size)
            )

        return SizeSet.from_predicate(
            entailed, threshold, period
        ).is_all()


def suggest_bounds(
    affines: Sequence[Affine],
    moduli: Sequence[int] = (),
) -> Tuple[int, int]:
    """A sound ``(threshold, period)`` frame for uniform-affine input.

    ``threshold`` clears twice the largest constant offset (so every
    ``% size`` wrap-around pattern has stabilized) and ``period`` is
    the lcm of the explicit moduli (``rank % k`` splits). Callers are
    still protected by the verification window in
    :meth:`SizeSet.from_predicate` — these bounds only choose where it
    sits.
    """
    magnitude = 0
    for affine in affines:
        magnitude = max(magnitude, abs(affine.c0))
    for modulus in moduli:
        magnitude = max(magnitude, abs(modulus))
    period = 1
    for modulus in moduli:
        if modulus > 1:
            period = math.lcm(period, modulus)
    threshold = MIN_SIZE + 2 * (magnitude + 2)
    return threshold, period
