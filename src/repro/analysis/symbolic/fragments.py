"""Decidable-fragment classification and O(n) fragment verdicts.

The sequential-model results this labeling follows (arXiv:0709.3689,
arXiv:0709.3692) carve MPI programs into fragments by how much of the
matching is pinned statically:

* ``SEQ-DETERMINISTIC`` — wildcard-free and loop-free (every loop
  unrolled to a constant trip count): the per-rank sequences are
  concrete modulo ``rank``/``size`` and matching is unique.
* ``SEQ-WILDCARD-FREE-LOOPS`` — wildcard-free but containing
  symbolic ``repeat(k)`` terms (size-dependent trip counts): still
  unique matching once a concrete ``size`` fixes every ``k``.
* ``UNDECIDABLE`` — wildcards, runtime-steered completions
  (``test``/``waitany``-style), truncated extraction, or constructs
  outside the symbolic domain; only the match-set explorer (or the
  runtime itself) can answer.

For the first two fragments the matching-order theorem (0709.3692)
makes one interleaving authoritative, so
:func:`~repro.analysis.symbolic.linmatch.match_linear` decides
deadlock in linear time; :func:`decide_extraction` packages that as an
:class:`~repro.analysis.explore.ExploreResult` so ``repro verify`` can
take the fast path without touching the state graph.

Two classification entry points exist because two pipelines feed it:
the **AST path** (:func:`classify_source`) labels rank programs from
their symbolic term trees, with role-split/loop provenance for
``repro lint`` and ``repro classify``; the **extraction path**
(:func:`classify_extraction`) labels concrete extracted sequences and
gates the verify fast path.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.analysis.symbolic.prove import ProveResult

from repro.analysis.explore import ExploreResult, ExploreStats, Verdict
from repro.analysis.extract import Extraction
from repro.analysis.symbolic.linmatch import (
    _SUPPORTED_KINDS,
    LinearMatchUnsupported,
    match_linear,
)
from repro.analysis.symbolic.symexec import (
    Branch,
    ProgramSummary,
    Repeat,
    SymOp,
    Term,
    render_terms,
    summarize_module,
)
from repro.mpi.communicator import CommRegistry
from repro.mpi.constants import (
    ANY_SOURCE,
    OpKind,
    is_collective_kind,
    is_recv_kind,
)
from repro.mpi.ops import Operation

#: Operation kinds whose extraction is steered by runtime results —
#: their presence already forces ``Extraction.exact = False``, listed
#: here so sequence classification can name the offender.
_INEXACT_KINDS = frozenset(
    {
        OpKind.IPROBE,
        OpKind.TEST,
        OpKind.TESTALL,
        OpKind.TESTANY,
        OpKind.TESTSOME,
        OpKind.WAITANY,
        OpKind.WAITSOME,
    }
)


class Fragment(Enum):
    """Decidability label of one program / program set."""

    SEQ_DETERMINISTIC = "SEQ-DETERMINISTIC"
    SEQ_WILDCARD_FREE_LOOPS = "SEQ-WILDCARD-FREE-LOOPS"
    UNDECIDABLE = "UNDECIDABLE"

    @property
    def decidable(self) -> bool:
        return self is not Fragment.UNDECIDABLE


@dataclass
class ProgramClassification:
    """AST-path label of one rank program, with provenance."""

    name: str
    filename: str
    fragment: Fragment
    reason: str = ""
    reason_line: Optional[int] = None
    #: ``(rendered condition, line)`` of each rank-dependent branch.
    role_splits: List[Tuple[str, int]] = field(default_factory=list)
    #: ``(rendered trip count, line)`` of each symbolic loop term.
    loops: List[Tuple[str, int]] = field(default_factory=list)
    #: Human-readable term tree (empty when extraction failed).
    rendering: List[str] = field(default_factory=list)
    summary: Optional[ProgramSummary] = None
    #: Attached by the parameterized prover (``repro prove``): the
    #: all-p verdict, when one was computed for this program.
    proof: Optional["ProveResult"] = None

    @property
    def location(self) -> str:
        if self.reason_line is None:
            return self.filename
        return f"{self.filename}:{self.reason_line}"

    @property
    def proved_all_p(self) -> bool:
        """True when an attached proof certifies all ``p >= 2``."""
        return self.proof is not None and self.proof.is_proved


@dataclass
class SequenceClassification:
    """Extraction-path label of one concrete program set."""

    fragment: Fragment
    reason: str = ""

    @property
    def decidable(self) -> bool:
        return self.fragment.decidable


# ----------------------------------------------------------------------
# AST path
# ----------------------------------------------------------------------

def _scan_terms(
    terms: Sequence[Term],
    classification: ProgramClassification,
) -> Optional[Tuple[str, int]]:
    """Collect provenance; return (reason, line) on a wildcard."""
    wildcard: Optional[Tuple[str, int]] = None
    for term in terms:
        if isinstance(term, SymOp):
            if (
                term.peer is not None
                and term.peer.is_const
                and term.peer.c0 == ANY_SOURCE
                and (is_recv_kind(term.kind) or term.kind is OpKind.PROBE)
            ):
                found = (
                    f"{term.method} uses MPI_ANY_SOURCE",
                    term.lineno,
                )
                if wildcard is None:
                    wildcard = found
        elif isinstance(term, Repeat):
            classification.loops.append(
                (term.count.render(), term.lineno)
            )
            inner = _scan_terms(term.body, classification)
            if wildcard is None:
                wildcard = inner
        else:
            if term.cond.depends_on_rank():
                classification.role_splits.append(
                    (term.cond.render(), term.lineno)
                )
            for arm in (term.then, term.orelse):
                inner = _scan_terms(arm, classification)
                if wildcard is None:
                    wildcard = inner
    return wildcard


def classify_summary(summary: ProgramSummary) -> ProgramClassification:
    """Label one symbolic extraction result."""
    classification = ProgramClassification(
        name=summary.name,
        filename=summary.filename,
        fragment=Fragment.UNDECIDABLE,
        summary=summary,
    )
    if not summary.supported:
        classification.reason = summary.reason
        classification.reason_line = summary.reason_line
        return classification
    wildcard = _scan_terms(summary.terms, classification)
    classification.rendering = render_terms(summary.terms)
    if wildcard is not None:
        classification.reason, classification.reason_line = wildcard
        return classification
    if classification.loops:
        classification.fragment = Fragment.SEQ_WILDCARD_FREE_LOOPS
    else:
        classification.fragment = Fragment.SEQ_DETERMINISTIC
    return classification


def classify_module(
    tree: ast.Module, filename: str
) -> List[ProgramClassification]:
    """Classify every rank program found in a parsed module."""
    return [
        classify_summary(summary)
        for summary in summarize_module(tree, filename)
    ]


def classify_source(
    source: str, filename: str
) -> List[ProgramClassification]:
    """Classify every rank program in ``source``."""
    return classify_module(
        ast.parse(source, filename=filename), filename
    )


# ----------------------------------------------------------------------
# Extraction path (the verify fast-path gate)
# ----------------------------------------------------------------------

def classify_sequences(
    sequences: Sequence[Sequence[Operation]],
    *,
    exact: bool = True,
    wildcard_exact: bool = True,
    truncated: bool = False,
) -> SequenceClassification:
    """Label concrete per-rank sequences for the linear fast path.

    Extracted sequences have every loop already unrolled, so a
    decidable set is always ``SEQ-DETERMINISTIC`` here; the
    loop-bearing fragment only appears on the AST path.
    """
    if truncated:
        return SequenceClassification(
            Fragment.UNDECIDABLE,
            "extraction truncated: sequences are a prefix",
        )
    for seq in sequences:
        for op in seq:
            if (
                is_recv_kind(op.kind) or op.is_probe()
            ) and op.peer == ANY_SOURCE:
                return SequenceClassification(
                    Fragment.UNDECIDABLE,
                    f"wildcard receive at {op.describe()}"
                    f" (rank {op.rank}, t={op.ts})",
                )
            if op.kind in _INEXACT_KINDS:
                return SequenceClassification(
                    Fragment.UNDECIDABLE,
                    f"{op.kind.value} completion is runtime-steered",
                )
            if (
                op.kind not in _SUPPORTED_KINDS
                and not is_collective_kind(op.kind)
            ):
                return SequenceClassification(
                    Fragment.UNDECIDABLE,
                    f"{op.kind.value} is outside the linear fragment",
                )
    # ANY_TAG on a *directed* receive only fabricates the status tag;
    # the non-overtaking rule still pins the matching uniquely, so
    # wildcard-exact sequences stay in the fragment. Inexact beyond
    # that (probe/test results steering control flow) does not.
    if not (exact or wildcard_exact):
        return SequenceClassification(
            Fragment.UNDECIDABLE,
            "extracted sequences are inexact beyond wildcard statuses",
        )
    return SequenceClassification(Fragment.SEQ_DETERMINISTIC)


def classify_extraction(extraction: Extraction) -> SequenceClassification:
    if not extraction.usable_for_matching:
        reason = (
            "extraction truncated: sequences are a prefix"
            if extraction.truncated
            else "extracted sequences are inexact beyond wildcard statuses"
        )
        return SequenceClassification(Fragment.UNDECIDABLE, reason)
    return classify_sequences(extraction.sequences)


def decide_sequences(
    sequences: Sequence[Sequence[Operation]],
    comms: CommRegistry,
    *,
    classification: Optional[SequenceClassification] = None,
    label: str = "",
) -> Optional[ExploreResult]:
    """Linear-time fragment verdict, or ``None`` outside the fragment.

    The returned result is shaped exactly like an explorer result —
    same verdict enum, wait-for conditions, detection report, and
    replayable witness — but ``stats.states_explored`` is 0: no state
    graph was built. ``fragment`` records the label that justified the
    fast path.
    """
    if classification is None:
        classification = classify_sequences(sequences)
    if not classification.decidable:
        return None
    try:
        lin = match_linear(sequences, comms, label=label)
    except LinearMatchUnsupported:
        return None
    verdict = (
        Verdict.DEADLOCK_POSSIBLE
        if lin.has_deadlock
        else Verdict.DEADLOCK_FREE
    )
    return ExploreResult(
        verdict=verdict,
        stats=ExploreStats(transitions=lin.ops_processed),
        witness=lin.witness,
        deadlocked=lin.deadlocked,
        witness_cycle=lin.witness_cycle,
        blocked_ops=lin.blocked_ops,
        conditions=lin.conditions,
        graph=lin.graph,
        detection=lin.detection,
        reason=(
            f"decided by linear wildcard-free matching "
            f"({classification.fragment.value})"
        ),
        fragment=classification.fragment.value,
    )


def decide_extraction(
    extraction: Extraction, *, label: str = ""
) -> Optional[ExploreResult]:
    """Fast-path verdict for an extraction, or ``None``."""
    return decide_sequences(
        extraction.sequences,
        extraction.comms,
        classification=classify_extraction(extraction),
        label=label,
    )
