"""Interprocedural symbolic execution of rank programs.

The generator-driven extractor (:mod:`repro.analysis.extract`) obtains
per-rank sequences by *running* the program once per rank. This module
instead interprets the program **AST once**, symbolically, producing a
rank-parametric *term tree*:

* :class:`SymOp` — one MPI call whose envelope fields are affine
  expressions over ``rank``/``size`` (:mod:`.sexpr`);
* :class:`Repeat` — a loop summarized as its body repeated an affine
  number of times (constant-bound loops below the unroll limit are
  expanded instead, with the loop variable substituted);
* :class:`Branch` — an ``if`` whose condition is a decidable affine
  relation (``rank == 0``-style role splits).

Helper generators driven by ``yield from`` are inlined at their call
sites when the call graph (:mod:`.cfg`) proves them non-recursive;
``rank.sendrecv`` decomposes into its Isend+Irecv+Waitall expansion
exactly as the runtime does.

The tree instantiates to the exact per-rank
:class:`~repro.mpi.ops.Operation` sequences (mirroring the extractor's
timestamp/request numbering) via :func:`instantiate`, and is the input
the fragment classifier (:mod:`.fragments`) labels per the decidable
fragments of arXiv:0709.3689 / arXiv:0709.3692.

Programs stepping outside the symbolic domain raise
:class:`SymbolicUnsupported`; the classifier turns that into an
``UNDECIDABLE`` label (with a ``loop-unsupported`` lint finding when a
loop was the obstacle) rather than guessing.
"""
from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.astlint import RankProgram, find_rank_programs
from repro.analysis.symbolic import sexpr
from repro.analysis.symbolic.cfg import CallGraph, build_call_graph
from repro.analysis.symbolic.sexpr import (
    RANK,
    SIZE,
    UNKNOWN,
    Affine,
    Cond,
    Relop,
    RequestTuple,
    RequestVal,
    _UnknownType,
    const,
)
from repro.checks.findings import CheckFinding, Severity
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    OpKind,
    is_recv_kind,
    is_send_kind,
)
from repro.mpi.ops import Operation

#: Constant-bound loops up to this trip count are unrolled with the
#: loop variable substituted; larger/symbolic bounds go through body
#: summarization into a :class:`Repeat` term.
UNROLL_LIMIT = 64
_MAX_FIXPOINT = 8
_MAX_INLINE_DEPTH = 32

_CHECK_UNSUPPORTED = "symbolic-unsupported"
_CHECK_LOOP = "loop-unsupported"


class SymbolicUnsupported(Exception):
    """The program left the symbolically-decidable fragment."""

    def __init__(
        self, message: str, lineno: int, check: str = _CHECK_UNSUPPORTED
    ) -> None:
        super().__init__(message)
        self.message = message
        self.lineno = lineno
        self.check = check


class InstantiationError(Exception):
    """A term tree could not be instantiated for a concrete rank."""


class _ReturnSignal(Exception):
    def __init__(self, value: "Value") -> None:
        super().__init__("return")
        self.value = value


class _Handle:
    """Sentinel environment value for the Rank handle parameter."""

    def __repr__(self) -> str:
        return "HANDLE"


HANDLE = _Handle()

Value = Union[Affine, RequestVal, RequestTuple, _UnknownType, _Handle]
Env = Dict[str, Value]


# ----------------------------------------------------------------------
# Term tree
# ----------------------------------------------------------------------

@dataclass
class SymOp:
    """One MPI call with affine envelope fields."""

    kind: OpKind
    method: str
    lineno: int
    peer: Optional[Affine] = None
    tag: Affine = field(default_factory=lambda: const(0))
    root: Optional[Affine] = None
    nbytes: int = 8
    #: Symbolic request ids a completion waits on.
    requests: Tuple[int, ...] = ()
    #: Symbolic request id this op creates (isend/irecv).
    makes_request: Optional[int] = None
    #: Symbolic sendrecv-group id shared by one decomposition.
    group: Optional[int] = None
    #: True on the first op of a decomposition (allocates the group).
    opens_group: bool = False

    def describe(self) -> str:
        parts: List[str] = []
        if self.peer is not None:
            label = "to" if is_send_kind(self.kind) else "from"
            if self.peer == const(ANY_SOURCE) and is_recv_kind(self.kind):
                parts.append(f"{label}=ANY")
            else:
                parts.append(f"{label}={self.peer.render()}")
            if self.tag != const(ANY_TAG) and self.tag != const(0):
                parts.append(f"tag={self.tag.render()}")
        if self.root is not None:
            parts.append(f"root={self.root.render()}")
        return f"{self.method}({', '.join(parts)})"


@dataclass
class Repeat:
    """A summarized loop: ``body`` repeated ``count`` times.

    When the body references the loop index, ``var`` names the bound
    variable (kept symbolic in the body's affine terms) and
    instantiation supplies ``start + k*step`` per iteration ``k``.
    """

    count: Affine
    body: List["Term"]
    lineno: int
    var: Optional[str] = None
    start: Optional[Affine] = None
    step: int = 1


@dataclass
class Branch:
    """A branch on a decidable affine condition."""

    cond: Cond
    then: List["Term"]
    orelse: List["Term"]
    lineno: int


Term = Union[SymOp, Repeat, Branch]


def render_terms(terms: Sequence[Term], indent: int = 0) -> List[str]:
    """Human-readable rendering of a term tree (classify output)."""
    pad = "  " * indent
    lines: List[str] = []
    for term in terms:
        if isinstance(term, SymOp):
            lines.append(f"{pad}{term.describe()}  [line {term.lineno}]")
        elif isinstance(term, Repeat):
            if term.var is not None and term.start is not None:
                display = term.var.split("#", 1)[0]
                step = f", step {term.step}" if term.step != 1 else ""
                lines.append(
                    f"{pad}repeat {term.count.render()} times "
                    f"({display} from {term.start.render()}{step}):"
                )
            else:
                lines.append(f"{pad}repeat {term.count.render()} times:")
            lines.extend(render_terms(term.body, indent + 1))
        else:
            lines.append(f"{pad}if {term.cond.render()}:")
            lines.extend(render_terms(term.then, indent + 1))
            if term.orelse:
                lines.append(f"{pad}else:")
                lines.extend(render_terms(term.orelse, indent + 1))
    return lines


@dataclass
class ProgramSummary:
    """The symbolic extraction result for one rank program."""

    name: str
    filename: str
    terms: List[Term]
    supported: bool
    reason: str = ""
    reason_line: Optional[int] = None
    reason_check: str = ""
    notes: List[CheckFinding] = field(default_factory=list)


# ----------------------------------------------------------------------
# Method tables
# ----------------------------------------------------------------------

_BLOCKING_SENDS = {
    "send": OpKind.SEND,
    "ssend": OpKind.SSEND,
    "bsend": OpKind.BSEND,
    "rsend": OpKind.RSEND,
}
_NONBLOCKING_SENDS = {
    "isend": OpKind.ISEND,
    "issend": OpKind.ISSEND,
    "ibsend": OpKind.IBSEND,
    "irsend": OpKind.IRSEND,
}
_ROOTED_COLLECTIVES = {
    "bcast": OpKind.BCAST,
    "reduce": OpKind.REDUCE,
    "gather": OpKind.GATHER,
    "scatter": OpKind.SCATTER,
}
_PLAIN_COLLECTIVES = {
    "barrier": OpKind.BARRIER,
    "allreduce": OpKind.ALLREDUCE,
    "allgather": OpKind.ALLGATHER,
    "alltoall": OpKind.ALLTOALL,
    "scan": OpKind.SCAN,
    "reduce_scatter": OpKind.REDUCE_SCATTER,
}
#: Methods whose semantics (runtime-steered results, persistent request
#: state machines, derived communicators) are outside the v1 fragment.
_UNSUPPORTED_METHODS = frozenset(
    {
        "iprobe", "test", "testall", "testany", "testsome",
        "waitany", "waitsome",
        "send_init", "recv_init", "start", "startall", "request_free",
        "comm_dup", "comm_split", "comm_create", "comm_free",
    }
)

_ANY_SOURCE_NAMES = frozenset({"ANY_SOURCE", "MPI_ANY_SOURCE"})
_ANY_TAG_NAMES = frozenset({"ANY_TAG", "MPI_ANY_TAG"})
_PROC_NULL_NAMES = frozenset({"PROC_NULL", "MPI_PROC_NULL"})

_RELOPS = {
    ast.Eq: Relop.EQ,
    ast.NotEq: Relop.NE,
    ast.Lt: Relop.LT,
    ast.LtE: Relop.LE,
    ast.Gt: Relop.GT,
    ast.GtE: Relop.GE,
}


def _argument(node: ast.Call, index: int, keyword: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    if index < len(node.args):
        return node.args[index]
    return None


# ----------------------------------------------------------------------
# The interpreter
# ----------------------------------------------------------------------

class _SymbolicInterpreter:
    def __init__(self, graph: CallGraph, filename: str) -> None:
        self.graph = graph
        self.filename = filename
        self.recursive = graph.recursive_functions()
        self._next_request = 0
        self._next_group = 0
        self._next_loop_var = 0

    # -- entry ----------------------------------------------------------

    def run(self, program: RankProgram) -> List[Term]:
        env: Env = {}
        self._bind_defaults(program.node, env)
        env[program.handle] = HANDLE
        out: List[Term] = []
        try:
            self._exec_block(program.node.body, env, out, 0)
        except _ReturnSignal:
            pass
        return out

    def _bind_defaults(self, fn: ast.FunctionDef, env: Env) -> None:
        args = fn.args
        defaults = args.defaults
        for arg, default in zip(args.args[len(args.args) - len(defaults):],
                                defaults):
            env[arg.arg] = self._eval(default, {})
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                env[arg.arg] = self._eval(kw_default, {})

    # -- statements -----------------------------------------------------

    def _exec_block(
        self, stmts: Sequence[ast.stmt], env: Env, out: List[Term],
        depth: int,
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, out, depth)

    def _exec_stmt(
        self, stmt: ast.stmt, env: Env, out: List[Term], depth: int
    ) -> None:
        if isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt, env, out, depth)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env, out, depth)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = self._value_of(
                    stmt.value, env, out, depth
                )
        elif isinstance(stmt, ast.AugAssign):
            self._exec_augassign(stmt, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env, out, depth)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, env, out, depth)
        elif isinstance(stmt, ast.While):
            raise SymbolicUnsupported(
                "while loops are outside the decidable fragment "
                "(no affine trip count)",
                stmt.lineno, check=_CHECK_LOOP,
            )
        elif isinstance(stmt, ast.Return):
            value: Value = UNKNOWN
            if stmt.value is not None:
                value = self._value_of(stmt.value, env, out, depth)
            raise _ReturnSignal(value)
        elif isinstance(stmt, (ast.Pass, ast.Assert, ast.Global,
                               ast.Nonlocal, ast.Import, ast.ImportFrom)):
            pass
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            raise SymbolicUnsupported(
                "break/continue defeat loop summarization",
                stmt.lineno, check=_CHECK_LOOP,
            )
        else:
            raise SymbolicUnsupported(
                f"unsupported statement {type(stmt).__name__}",
                stmt.lineno,
            )

    def _exec_expr_stmt(
        self, stmt: ast.Expr, env: Env, out: List[Term], depth: int
    ) -> None:
        value = stmt.value
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            self._value_of(value, env, out, depth)
            return
        if isinstance(value, ast.Constant):
            return  # docstring
        if isinstance(value, ast.Call):
            func = value.func
            # A method call on a tracked value (list.append & co) mutates
            # it behind the interpreter's back: drop to UNKNOWN so a
            # later waitall cannot use a stale request tuple.
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in env
                and not isinstance(env[func.value.id], _Handle)
            ):
                env[func.value.id] = UNKNOWN
                return
            if isinstance(func, ast.Attribute) and isinstance(
                env.get(func.value.id) if isinstance(func.value, ast.Name)
                else None, _Handle
            ):
                # Handle call built but never yielded — astlint reports
                # it (unyielded-call); nothing to extract.
                return
            return  # other bare calls have no effect in the domain

    def _exec_assign(
        self, stmt: ast.Assign, env: Env, out: List[Term], depth: int
    ) -> None:
        value = self._value_of(stmt.value, env, out, depth)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env[target.id] = value
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        env[element.id] = UNKNOWN
            else:
                raise SymbolicUnsupported(
                    "unsupported assignment target", stmt.lineno
                )

    def _exec_augassign(self, stmt: ast.AugAssign, env: Env) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise SymbolicUnsupported(
                "unsupported augmented-assignment target", stmt.lineno
            )
        old = env.get(stmt.target.id, UNKNOWN)
        rhs = self._eval(stmt.value, env)
        env[stmt.target.id] = self._binop(stmt.op, old, rhs)

    # -- branches -------------------------------------------------------

    def _exec_if(
        self, stmt: ast.If, env: Env, out: List[Term], depth: int
    ) -> None:
        cond = self._eval_cond(stmt.test, env)
        if isinstance(cond, bool):
            self._exec_block(
                stmt.body if cond else stmt.orelse, env, out, depth
            )
            return
        then_env = dict(env)
        else_env = dict(env)
        then_out: List[Term] = []
        else_out: List[Term] = []
        try:
            self._exec_block(stmt.body, then_env, then_out, depth)
            self._exec_block(stmt.orelse, else_env, else_out, depth)
        except _ReturnSignal:
            raise SymbolicUnsupported(
                "return under a symbolic branch (divergent control flow)",
                stmt.lineno,
            ) from None
        if cond is None and (then_out or else_out):
            raise SymbolicUnsupported(
                "branch on a value outside the symbolic domain "
                "issues MPI calls",
                stmt.lineno,
            )
        if isinstance(cond, Cond) and (then_out or else_out):
            out.append(Branch(cond, then_out, else_out, stmt.lineno))
        merged: Env = {}
        for name in set(then_env) | set(else_env):
            a = then_env.get(name, UNKNOWN)
            b = else_env.get(name, UNKNOWN)
            merged[name] = a if a == b else UNKNOWN
        env.clear()
        env.update(merged)

    # -- loops ----------------------------------------------------------

    def _exec_for(
        self, stmt: ast.For, env: Env, out: List[Term], depth: int
    ) -> None:
        if not isinstance(stmt.target, ast.Name):
            raise SymbolicUnsupported(
                "loop target must be a single variable",
                stmt.lineno, check=_CHECK_LOOP,
            )
        if stmt.orelse:
            raise SymbolicUnsupported(
                "for/else is not summarizable",
                stmt.lineno, check=_CHECK_LOOP,
            )
        iter_node = stmt.iter
        if not (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
            and not iter_node.keywords
            and 1 <= len(iter_node.args) <= 3
        ):
            raise SymbolicUnsupported(
                "only range() iteration is summarizable",
                stmt.lineno, check=_CHECK_LOOP,
            )
        bounds = [self._eval(arg, env) for arg in iter_node.args]
        for bound in bounds:
            if not isinstance(bound, Affine):
                raise SymbolicUnsupported(
                    "range bound is not an affine rank/size expression",
                    stmt.lineno, check=_CHECK_LOOP,
                )
        start = const(0) if len(bounds) == 1 else bounds[0]
        stop = bounds[0] if len(bounds) == 1 else bounds[1]
        step = bounds[2] if len(bounds) == 3 else const(1)
        assert isinstance(start, Affine)
        assert isinstance(stop, Affine)
        assert isinstance(step, Affine)
        if not step.is_const or step.c0 == 0:
            raise SymbolicUnsupported(
                "range step must be a nonzero constant",
                stmt.lineno, check=_CHECK_LOOP,
            )
        var = stmt.target.id
        count: Affine
        if start.is_const and stop.is_const:
            values = list(range(start.c0, stop.c0, step.c0))
            if len(values) <= UNROLL_LIMIT:
                for v in values:
                    env[var] = const(v)
                    self._exec_block(stmt.body, env, out, depth)
                return
            count = const(len(values))
        else:
            if step.c0 != 1:
                raise SymbolicUnsupported(
                    "non-unit step with symbolic range bounds",
                    stmt.lineno, check=_CHECK_LOOP,
                )
            diff = sexpr.sub(stop, start)
            if not isinstance(diff, Affine):
                raise SymbolicUnsupported(
                    "symbolic trip count is not affine",
                    stmt.lineno, check=_CHECK_LOOP,
                )
            count = diff
        # Keep the loop index symbolic in the body: a unique internal
        # name avoids capture by same-named outer loops.
        uniq = f"{var}#{stmt.lineno}.{self._next_loop_var}"
        self._next_loop_var += 1
        body_terms, final_env = self._summarize_body(stmt, env, depth, uniq)
        out.append(Repeat(count, body_terms, stmt.lineno,
                          var=uniq, start=start, step=step.c0))
        env.clear()
        env.update(final_env)

    def _summarize_body(
        self, stmt: ast.For, env: Env, depth: int, uniq: str
    ) -> Tuple[List[Term], Env]:
        """Find an iteration-*generic* rendering of the loop body.

        The loop index stays symbolic (an affine variable term bound at
        instantiation); every other loop-carried variable is widened to
        UNKNOWN until the post-body environment matches the pre-body
        one (height-2 lattice: at most a few rounds). The final
        evaluation's terms are then valid for every iteration.
        """
        assert isinstance(stmt.target, ast.Name)
        loop_var = stmt.target.id
        index = sexpr.var(uniq)
        widened: Set[str] = set()
        for _ in range(_MAX_FIXPOINT):
            trial: Env = dict(env)
            trial[loop_var] = UNKNOWN if loop_var in widened else index
            for name in widened:
                trial[name] = UNKNOWN
            before = dict(trial)
            body_out: List[Term] = []
            request_base = self._next_request
            try:
                self._exec_block(stmt.body, trial, body_out, depth)
            except _ReturnSignal:
                raise SymbolicUnsupported(
                    "return inside a summarized loop",
                    stmt.lineno, check=_CHECK_LOOP,
                ) from None
            except SymbolicUnsupported as exc:
                raise SymbolicUnsupported(
                    f"loop body not summarizable: {exc.message}",
                    exc.lineno or stmt.lineno, check=_CHECK_LOOP,
                ) from None
            changed = {
                name for name in trial
                if name not in before or trial[name] != before[name]
            }
            if changed <= widened:
                created = set(range(request_base, self._next_request))
                if created - _completed_requests(body_out):
                    raise SymbolicUnsupported(
                        "a nonblocking request escapes the loop body "
                        "without a completion",
                        stmt.lineno, check=_CHECK_LOOP,
                    )
                final_env = dict(trial)
                final_env[loop_var] = UNKNOWN
                for name in widened:
                    final_env[name] = UNKNOWN
                for name, value in final_env.items():
                    # The index dies with the loop: values still
                    # referencing it are meaningless afterwards.
                    if isinstance(value, Affine) and uniq in value.free_vars():
                        final_env[name] = UNKNOWN
                return body_out, final_env
            widened |= changed
        raise SymbolicUnsupported(
            "loop dataflow did not converge",
            stmt.lineno, check=_CHECK_LOOP,
        )

    # -- yields ---------------------------------------------------------

    def _value_of(
        self, expr: ast.expr, env: Env, out: List[Term], depth: int
    ) -> Value:
        if isinstance(expr, ast.Yield):
            if expr.value is None:
                raise SymbolicUnsupported("bare yield", expr.lineno)
            return self._do_yield(expr.value, env, out)
        if isinstance(expr, ast.YieldFrom):
            return self._do_yield_from(expr.value, env, out, depth)
        return self._eval(expr, env)

    def _handle_method(self, node: ast.expr, env: Env) -> Optional[str]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and isinstance(env.get(node.func.value.id), _Handle)
        ):
            return node.func.attr
        return None

    def _do_yield(
        self, call: ast.expr, env: Env, out: List[Term]
    ) -> Value:
        method = self._handle_method(call, env)
        if method is None:
            raise SymbolicUnsupported(
                "yield of a value that is not an MPI call", call.lineno
            )
        assert isinstance(call, ast.Call)
        return self._emit_call(call, method, env, out)

    def _do_yield_from(
        self, call: ast.expr, env: Env, out: List[Term], depth: int
    ) -> Value:
        method = self._handle_method(call, env)
        if method == "sendrecv":
            assert isinstance(call, ast.Call)
            return self._emit_sendrecv(call, env, out)
        if method is not None:
            raise SymbolicUnsupported(
                f"yield from {method}() is outside the symbolic fragment",
                call.lineno,
            )
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id in self.graph.functions
        ):
            return self._inline(call, call.func.id, env, out, depth)
        raise SymbolicUnsupported(
            "yield from an unknown generator", call.lineno
        )

    def _inline(
        self, call: ast.Call, name: str, env: Env, out: List[Term],
        depth: int,
    ) -> Value:
        if name in self.recursive:
            raise SymbolicUnsupported(
                f"helper {name}() is recursive and cannot be inlined",
                call.lineno,
            )
        if depth >= _MAX_INLINE_DEPTH:
            raise SymbolicUnsupported(
                "helper inlining exceeded the depth limit", call.lineno
            )
        fn = self.graph.functions[name]
        callee_env = self._bind_call(fn, call, env)
        try:
            self._exec_block(fn.body, callee_env, out, depth + 1)
        except _ReturnSignal as signal:
            return signal.value
        return UNKNOWN

    def _bind_call(
        self, fn: ast.FunctionDef, call: ast.Call, env: Env
    ) -> Env:
        args = fn.args
        if args.vararg or args.kwarg or args.posonlyargs:
            raise SymbolicUnsupported(
                f"helper {fn.name}() has *args/**kwargs", call.lineno
            )
        params = [a.arg for a in args.args]
        if len(call.args) > len(params):
            raise SymbolicUnsupported(
                f"too many arguments for helper {fn.name}()", call.lineno
            )
        callee_env: Env = {}
        self._bind_defaults(fn, callee_env)
        for param, arg in zip(params, call.args):
            callee_env[param] = self._eval(arg, env)
        kwonly = {a.arg for a in args.kwonlyargs}
        for kw in call.keywords:
            if kw.arg is None or (
                kw.arg not in params and kw.arg not in kwonly
            ):
                raise SymbolicUnsupported(
                    f"bad keyword argument for helper {fn.name}()",
                    call.lineno,
                )
            callee_env[kw.arg] = self._eval(kw.value, env)
        for param in params + sorted(kwonly):
            if param not in callee_env:
                raise SymbolicUnsupported(
                    f"helper {fn.name}() parameter {param!r} has no "
                    "value at the inlined call site",
                    call.lineno,
                )
        return callee_env

    # -- call emission --------------------------------------------------

    def _emit_call(
        self, call: ast.Call, method: str, env: Env, out: List[Term]
    ) -> Value:
        if method in _UNSUPPORTED_METHODS:
            raise SymbolicUnsupported(
                f"{method}() is outside the symbolic fragment "
                "(runtime-steered result or persistent/communicator "
                "state)",
                call.lineno,
            )
        self._reject_comm_kwarg(call, method)
        nbytes = self._nbytes_of(call)
        if method in _BLOCKING_SENDS or method in _NONBLOCKING_SENDS:
            peer = self._field(call, 0, "dest", env, method)
            tag = self._field_default(call, 1, "tag", env, method, const(0))
            op = SymOp(
                kind=(_BLOCKING_SENDS.get(method)
                      or _NONBLOCKING_SENDS[method]),
                method=method, lineno=call.lineno,
                peer=peer, tag=tag, nbytes=nbytes,
            )
            result: Value = UNKNOWN
            if method in _NONBLOCKING_SENDS:
                op.makes_request = self._fresh_request()
                result = RequestVal(op.makes_request)
            out.append(op)
            return result
        if method in ("recv", "irecv", "probe"):
            peer = self._field_default(
                call, 0, "source", env, method, const(ANY_SOURCE)
            )
            tag = self._field_default(
                call, 1, "tag", env, method, const(ANY_TAG)
            )
            kind = {
                "recv": OpKind.RECV,
                "irecv": OpKind.IRECV,
                "probe": OpKind.PROBE,
            }[method]
            op = SymOp(kind=kind, method=method, lineno=call.lineno,
                       peer=peer, tag=tag,
                       nbytes=0 if method == "probe" else nbytes)
            if method == "irecv":
                op.makes_request = self._fresh_request()
                out.append(op)
                return RequestVal(op.makes_request)
            out.append(op)
            return UNKNOWN
        if method == "wait":
            request = self._eval_argument(call, 0, "request", env)
            if not isinstance(request, RequestVal):
                raise SymbolicUnsupported(
                    "wait() on a request outside the symbolic domain",
                    call.lineno,
                )
            out.append(SymOp(
                kind=OpKind.WAIT, method=method, lineno=call.lineno,
                requests=(request.sym_id,),
            ))
            return UNKNOWN
        if method == "waitall":
            requests = self._eval_argument(call, 0, "requests", env)
            if not (
                isinstance(requests, RequestTuple) and requests.items
            ):
                raise SymbolicUnsupported(
                    "waitall() on requests outside the symbolic domain",
                    call.lineno,
                )
            out.append(SymOp(
                kind=OpKind.WAITALL, method=method, lineno=call.lineno,
                requests=tuple(r.sym_id for r in requests.items),
            ))
            return UNKNOWN
        if method in _ROOTED_COLLECTIVES:
            root = self._field(call, 0, "root", env, method)
            out.append(SymOp(
                kind=_ROOTED_COLLECTIVES[method], method=method,
                lineno=call.lineno, root=root, nbytes=nbytes,
            ))
            return UNKNOWN
        if method in _PLAIN_COLLECTIVES:
            out.append(SymOp(
                kind=_PLAIN_COLLECTIVES[method], method=method,
                lineno=call.lineno, nbytes=nbytes,
            ))
            return UNKNOWN
        if method == "finalize":
            out.append(SymOp(
                kind=OpKind.FINALIZE, method=method, lineno=call.lineno,
                nbytes=0,
            ))
            return UNKNOWN
        raise SymbolicUnsupported(
            f"cannot extract {method}() symbolically", call.lineno
        )

    def _emit_sendrecv(
        self, call: ast.Call, env: Env, out: List[Term]
    ) -> Value:
        self._reject_comm_kwarg(call, "sendrecv")
        nbytes = self._nbytes_of(call)
        dest = self._field(call, 0, "dest", env, "sendrecv")
        source = self._field(call, 1, "source", env, "sendrecv")
        sendtag = self._field_default(
            call, 2, "sendtag", env, "sendrecv", const(0)
        )
        recvtag = self._field_default(
            call, 3, "recvtag", env, "sendrecv", const(ANY_TAG)
        )
        group = self._next_group
        self._next_group += 1
        send_req = self._fresh_request()
        recv_req = self._fresh_request()
        out.append(SymOp(
            kind=OpKind.ISEND, method="sendrecv", lineno=call.lineno,
            peer=dest, tag=sendtag, nbytes=nbytes,
            makes_request=send_req, group=group, opens_group=True,
        ))
        out.append(SymOp(
            kind=OpKind.IRECV, method="sendrecv", lineno=call.lineno,
            peer=source, tag=recvtag, nbytes=nbytes,
            makes_request=recv_req, group=group,
        ))
        out.append(SymOp(
            kind=OpKind.WAITALL, method="sendrecv", lineno=call.lineno,
            requests=(send_req, recv_req), group=group,
        ))
        return UNKNOWN

    def _fresh_request(self) -> int:
        sym_id = self._next_request
        self._next_request += 1
        return sym_id

    def _reject_comm_kwarg(self, call: ast.Call, method: str) -> None:
        for kw in call.keywords:
            if kw.arg == "comm" and not (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is None
            ):
                raise SymbolicUnsupported(
                    f"{method}(comm=...) uses a derived communicator — "
                    "outside the symbolic fragment",
                    call.lineno,
                )

    def _nbytes_of(self, call: ast.Call) -> int:
        for kw in call.keywords:
            if kw.arg == "nbytes":
                value = self._eval(kw.value, {})
                if isinstance(value, Affine) and value.is_const:
                    return value.c0
                raise SymbolicUnsupported(
                    "nbytes must be a constant", call.lineno
                )
        return 8

    def _eval_argument(
        self, call: ast.Call, index: int, keyword: str, env: Env
    ) -> Value:
        node = _argument(call, index, keyword)
        if node is None:
            raise SymbolicUnsupported(
                f"missing required argument {keyword!r}", call.lineno
            )
        return self._eval(node, env)

    def _field(
        self, call: ast.Call, index: int, keyword: str, env: Env,
        method: str,
    ) -> Affine:
        value = self._eval_argument(call, index, keyword, env)
        if not isinstance(value, Affine):
            raise SymbolicUnsupported(
                f"{method}() argument {keyword!r} is not an affine "
                "rank/size expression",
                call.lineno,
            )
        return value

    def _field_default(
        self, call: ast.Call, index: int, keyword: str, env: Env,
        method: str, default: Affine,
    ) -> Affine:
        node = _argument(call, index, keyword)
        if node is None:
            return default
        value = self._eval(node, env)
        if not isinstance(value, Affine):
            raise SymbolicUnsupported(
                f"{method}() argument {keyword!r} is not an affine "
                "rank/size expression",
                call.lineno,
            )
        return value

    # -- pure expression evaluation -------------------------------------

    def _eval(self, expr: ast.expr, env: Env) -> Value:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, int
            ):
                return UNKNOWN
            return const(expr.value)
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            value = self._named_constant(expr.id)
            if value is UNKNOWN and expr.id in self.graph.constants:
                return const(self.graph.constants[expr.id])
            return value
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and isinstance(env.get(expr.value.id), _Handle)
            ):
                if expr.attr == "rank":
                    return RANK
                if expr.attr == "size":
                    return SIZE
                return UNKNOWN
            return self._named_constant(expr.attr)
        if isinstance(expr, ast.BinOp):
            return self._binop(
                expr.op, self._eval(expr.left, env),
                self._eval(expr.right, env),
            )
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.USub):
                return sexpr.neg(self._as_sym(self._eval(expr.operand, env)))
            return UNKNOWN
        if isinstance(expr, (ast.List, ast.Tuple)):
            items = [self._eval(e, env) for e in expr.elts]
            if all(isinstance(i, RequestVal) for i in items):
                return RequestTuple(
                    tuple(i for i in items if isinstance(i, RequestVal))
                )
            return UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self._eval(expr.value, env)
            index = self._eval(expr.slice, env)
            if (
                isinstance(base, RequestTuple)
                and isinstance(index, Affine) and index.is_const
                and -len(base.items) <= index.c0 < len(base.items)
            ):
                return base.items[index.c0]
            return UNKNOWN
        if isinstance(expr, ast.IfExp):
            cond = self._eval_cond(expr.test, env)
            if isinstance(cond, bool):
                return self._eval(expr.body if cond else expr.orelse, env)
            then_value = self._eval(expr.body, env)
            else_value = self._eval(expr.orelse, env)
            joined = then_value if then_value == else_value else UNKNOWN
            return joined
        return UNKNOWN

    @staticmethod
    def _as_sym(value: Value) -> "sexpr.SymValue":
        if isinstance(value, _Handle):
            return UNKNOWN
        return value

    def _binop(self, op: ast.operator, left: Value, right: Value) -> Value:
        a = self._as_sym(left)
        b = self._as_sym(right)
        if isinstance(op, ast.Add):
            return sexpr.add(a, b)
        if isinstance(op, ast.Sub):
            return sexpr.sub(a, b)
        if isinstance(op, ast.Mult):
            return sexpr.mul(a, b)
        if isinstance(op, ast.Mod):
            return sexpr.mod(a, b)
        if isinstance(op, ast.FloorDiv):
            return sexpr.floordiv(a, b)
        return UNKNOWN

    @staticmethod
    def _named_constant(name: str) -> Value:
        if name in _ANY_SOURCE_NAMES:
            return const(ANY_SOURCE)
        if name in _ANY_TAG_NAMES:
            return const(ANY_TAG)
        if name in _PROC_NULL_NAMES:
            return const(PROC_NULL)
        return UNKNOWN

    # -- conditions -----------------------------------------------------

    def _eval_cond(
        self, expr: ast.expr, env: Env
    ) -> Union[bool, Cond, None]:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (bool, int)):
                return bool(expr.value)
            return None
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            inner = self._eval_cond(expr.operand, env)
            if isinstance(inner, bool):
                return not inner
            if isinstance(inner, Cond):
                return inner.negate()
            return None
        if isinstance(expr, ast.Compare):
            return self._eval_compare(expr, env)
        if isinstance(expr, ast.BoolOp):
            return self._eval_boolop(expr, env)
        value = self._eval(expr, env)
        if isinstance(value, Affine) and value.is_const:
            return bool(value.c0)
        return None

    def _eval_compare(
        self, expr: ast.Compare, env: Env
    ) -> Union[bool, Cond, None]:
        if len(expr.ops) != 1 or len(expr.comparators) != 1:
            return None
        relop = _RELOPS.get(type(expr.ops[0]))
        if relop is None:
            return None
        lhs, lhs_mod = self._cond_side(expr.left, env)
        if lhs is None:
            return None
        rhs_value = self._eval(expr.comparators[0], env)
        if not isinstance(rhs_value, Affine):
            return None
        cond = Cond(lhs, relop, rhs_value, lhs_mod)
        if not self._cond_has_deps(cond):
            return cond.evaluate(0, 1)
        return cond

    def _cond_side(
        self, node: ast.expr, env: Env
    ) -> Tuple[Optional[Affine], Optional[int]]:
        """An affine side, recognizing the ``affine % const`` pattern."""
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            if (
                isinstance(left, Affine) and not left.mod_size
                and isinstance(right, Affine) and right.is_const
                and right.c0 > 0 and right != SIZE
            ):
                return left, right.c0
        value = self._eval(node, env)
        if isinstance(value, Affine):
            return value, None
        return None, None

    @staticmethod
    def _cond_has_deps(cond: Cond) -> bool:
        for side in (cond.lhs, cond.rhs):
            if side.c_rank or side.c_size or side.mod_size or side.c_vars:
                return True
        return False

    def _eval_boolop(
        self, expr: ast.BoolOp, env: Env
    ) -> Union[bool, Cond, None]:
        is_and = isinstance(expr.op, ast.And)
        residual: List[Union[Cond, None]] = []
        for value_node in expr.values:
            part = self._eval_cond(value_node, env)
            if isinstance(part, bool):
                if is_and and not part:
                    return False
                if not is_and and part:
                    return True
                continue  # neutral element
            residual.append(part)
        if not residual:
            return is_and
        if len(residual) == 1 and isinstance(residual[0], Cond):
            return residual[0]
        return None


# ----------------------------------------------------------------------
# Request closure scan (loop summarization invariant)
# ----------------------------------------------------------------------

def _completed_requests(terms: Sequence[Term]) -> Set[int]:
    done: Set[int] = set()
    for term in terms:
        if isinstance(term, SymOp):
            if term.kind in (OpKind.WAIT, OpKind.WAITALL):
                done |= set(term.requests)
        elif isinstance(term, Repeat):
            done |= _completed_requests(term.body)
        else:
            done |= (
                _completed_requests(term.then)
                & _completed_requests(term.orelse)
            )
    return done


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def summarize_program(
    program: RankProgram, graph: CallGraph, filename: str
) -> ProgramSummary:
    """Symbolically extract one rank program into a term tree."""
    interpreter = _SymbolicInterpreter(graph, filename)
    try:
        terms = interpreter.run(program)
    except SymbolicUnsupported as exc:
        severity = (
            Severity.WARNING if exc.check == _CHECK_LOOP else Severity.INFO
        )
        finding = CheckFinding(
            check=exc.check,
            severity=severity,
            rank=None,
            message=(
                f"program {program.name!r}: {exc.message}; symbolic "
                "extraction unavailable (fragment UNDECIDABLE)"
            ),
            location=f"{filename}:{exc.lineno}",
        )
        return ProgramSummary(
            name=program.name,
            filename=filename,
            terms=[],
            supported=False,
            reason=exc.message,
            reason_line=exc.lineno,
            reason_check=exc.check,
            notes=[finding],
        )
    return ProgramSummary(
        name=program.name,
        filename=filename,
        terms=terms,
        supported=True,
    )


def summarize_module(
    tree: ast.Module, filename: str
) -> List[ProgramSummary]:
    """Symbolic extraction for every rank program in a parsed module."""
    graph = build_call_graph(tree)
    return [
        summarize_program(program, graph, filename)
        for program in find_rank_programs(tree)
    ]


def summarize_source(source: str, filename: str) -> List[ProgramSummary]:
    """Parse ``source`` and symbolically extract its rank programs."""
    return summarize_module(
        ast.parse(source, filename=filename), filename
    )


# ----------------------------------------------------------------------
# Instantiation
# ----------------------------------------------------------------------

class _Instantiator:
    def __init__(
        self, rank: int, size: int, comm_id: int, max_ops: int,
        filename: str,
    ) -> None:
        self.rank = rank
        self.size = size
        self.comm_id = comm_id
        self.max_ops = max_ops
        self.filename = filename
        self.ops: List[Operation] = []
        self._requests: Dict[int, int] = {}
        self._groups: Dict[int, int] = {}
        self._next_request = 0
        self._next_group = 0
        self._bindings: Dict[str, int] = {}

    def walk(self, terms: Sequence[Term]) -> None:
        for term in terms:
            if isinstance(term, SymOp):
                self._emit(term)
            elif isinstance(term, Repeat):
                self._repeat(term)
            else:
                taken = term.cond.evaluate(
                    self.rank, self.size, self._bindings
                )
                self.walk(term.then if taken else term.orelse)

    def _repeat(self, term: Repeat) -> None:
        count = term.count.evaluate(self.rank, self.size, self._bindings)
        if term.var is None or term.start is None:
            for _ in range(max(0, count)):
                self.walk(term.body)
            return
        start = term.start.evaluate(self.rank, self.size, self._bindings)
        for iteration in range(max(0, count)):
            self._bindings[term.var] = start + iteration * term.step
            self.walk(term.body)
        self._bindings.pop(term.var, None)

    def _emit(self, term: SymOp) -> None:
        if len(self.ops) >= self.max_ops:
            raise InstantiationError(
                f"instantiation exceeded {self.max_ops} operations "
                f"for rank {self.rank}"
            )
        peer: Optional[int] = None
        if term.peer is not None:
            peer = term.peer.evaluate(self.rank, self.size, self._bindings)
            if peer not in (ANY_SOURCE, PROC_NULL) and not (
                0 <= peer < self.size
            ):
                raise InstantiationError(
                    f"{term.method}() at {self.filename}:{term.lineno} "
                    f"computes peer {peer} outside the communicator "
                    f"(size {self.size}) for rank {self.rank}"
                )
        request: Optional[int] = None
        if term.makes_request is not None:
            request = self._next_request
            self._requests[term.makes_request] = request
            self._next_request += 1
        try:
            requests = tuple(
                self._requests[sym] for sym in term.requests
            )
        except KeyError as exc:
            raise InstantiationError(
                f"completion at {self.filename}:{term.lineno} references "
                f"an uninstantiated request (symbolic id {exc.args[0]})"
            ) from None
        group: Optional[int] = None
        if term.group is not None:
            if term.opens_group:
                self._groups[term.group] = self._next_group
                self._next_group += 1
            group = self._groups[term.group]
        try:
            op = Operation(
                kind=term.kind,
                rank=self.rank,
                ts=len(self.ops),
                comm_id=self.comm_id,
                peer=peer,
                tag=term.tag.evaluate(self.rank, self.size, self._bindings),
                root=(
                    term.root.evaluate(self.rank, self.size, self._bindings)
                    if term.root is not None else None
                ),
                request=request,
                requests=requests,
                nbytes=term.nbytes,
                sendrecv_group=group,
                location=f"{self.filename}:{term.lineno}",
            )
        except ValueError as exc:
            raise InstantiationError(
                f"{term.method}() at {self.filename}:{term.lineno} "
                f"instantiates to an invalid operation for rank "
                f"{self.rank}: {exc}"
            ) from None
        self.ops.append(op)


def instantiate(
    terms: Sequence[Term],
    rank: int,
    size: int,
    *,
    comm_id: int = 0,
    max_ops: int = 50_000,
    filename: str = "",
) -> List[Operation]:
    """Concrete per-rank operation sequence of a term tree.

    Numbering mirrors :func:`repro.analysis.extract.extract_programs`:
    ``ts`` is the position in the sequence and request ids count
    request-creating operations in execution order.
    """
    walker = _Instantiator(rank, size, comm_id, max_ops, filename)
    walker.walk(terms)
    return walker.ops
