"""Static analysis of rank programs and recorded traces.

This package is the pre-execution counterpart of the runtime detector:
``repro lint`` runs it over Python rank-program files (AST lint +
static sequence extraction + deterministic sequential matching) and
over recorded ``.json`` traces, producing
:class:`~repro.checks.findings.CheckFinding` records without ever
starting the engine.
"""
from repro.analysis.astlint import find_rank_programs, lint_source
from repro.analysis.driver import DEFAULT_RANKS, LintReport, lint_path
from repro.analysis.extract import Extraction, extract_programs
from repro.analysis.seqmatch import StaticMatchResult, match_sequences
from repro.analysis.typestate import (
    check_collective_consistency,
    check_request_typestate,
)

__all__ = [
    "DEFAULT_RANKS",
    "Extraction",
    "LintReport",
    "StaticMatchResult",
    "check_collective_consistency",
    "check_request_typestate",
    "extract_programs",
    "find_rank_programs",
    "lint_path",
    "lint_source",
    "match_sequences",
]
