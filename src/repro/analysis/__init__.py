"""Static analysis of rank programs and recorded traces.

This package is the pre-execution counterpart of the runtime detector:
``repro lint`` runs it over Python rank-program files (AST lint +
static sequence extraction + deterministic sequential matching) and
over recorded ``.json`` traces, producing
:class:`~repro.checks.findings.CheckFinding` records without ever
starting the engine. ``repro verify`` goes further for wildcard
programs: it explores the full match-set state graph
(:mod:`repro.analysis.explore`) and backs every `deadlock-possible`
verdict with a replayable witness schedule
(:mod:`repro.analysis.witness`). The interprocedural symbolic
extractor and decidable-fragment classifier
(:mod:`repro.analysis.symbolic`) sit on top: wildcard-free programs
are labeled ``SEQ-DETERMINISTIC`` / ``SEQ-WILDCARD-FREE-LOOPS`` and
decided by an O(n) linear matching instead of state-graph search
(``repro classify``, and the ``repro verify`` fast path).
"""
from repro.analysis.astlint import find_rank_programs, lint_source
from repro.analysis.driver import (
    DEFAULT_RANKS,
    LintReport,
    ProgramVerification,
    VerifyReport,
    lint_path,
    verify_path,
)
from repro.analysis.explore import (
    ExplorationUnsupported,
    ExploreResult,
    ExploreStats,
    Verdict,
    explore_extraction,
    explore_sequences,
)
from repro.analysis.extract import Extraction, extract_programs
from repro.analysis.seqmatch import StaticMatchResult, match_sequences
from repro.analysis.symbolic import (
    Fragment,
    LinearMatchResult,
    LinearMatchUnsupported,
    ProgramClassification,
    SequenceClassification,
    classify_extraction,
    classify_source,
    decide_extraction,
    match_linear,
)
from repro.analysis.typestate import (
    check_collective_consistency,
    check_request_typestate,
)
from repro.analysis.witness import (
    ReplayOutcome,
    WitnessSchedule,
    replay_witness,
)

__all__ = [
    "DEFAULT_RANKS",
    "ExplorationUnsupported",
    "ExploreResult",
    "ExploreStats",
    "Extraction",
    "Fragment",
    "LinearMatchResult",
    "LinearMatchUnsupported",
    "LintReport",
    "ProgramClassification",
    "ProgramVerification",
    "ReplayOutcome",
    "SequenceClassification",
    "StaticMatchResult",
    "Verdict",
    "VerifyReport",
    "WitnessSchedule",
    "check_collective_consistency",
    "check_request_typestate",
    "classify_extraction",
    "classify_source",
    "decide_extraction",
    "match_linear",
    "explore_extraction",
    "explore_sequences",
    "extract_programs",
    "find_rank_programs",
    "lint_path",
    "lint_source",
    "match_sequences",
    "replay_witness",
    "verify_path",
]
