"""The ``repro lint`` entry point: orchestrate the static passes.

For a Python file the pipeline is

1. parse + AST lint (:mod:`repro.analysis.astlint`);
2. import the module and instantiate every discovered rank program
   over ``LINT_RANKS`` virtual ranks (or an explicit ``LINT_PROGRAMS``
   list when the module provides one);
3. statically extract the per-rank operation sequences
   (:mod:`repro.analysis.extract`);
4. run the request typestate FSM and the collective consistency
   checker (:mod:`repro.analysis.typestate`);
5. when the extraction is exact and wildcard-free, replay the
   sequences under the deterministic sequential model
   (:mod:`repro.analysis.seqmatch`) and report any deadlock with its
   witness cycle.

For a recorded ``.json`` trace, steps 4–5 run on the recorded
sequences, with wildcard receives pinned to their observed matches.
"""
from __future__ import annotations

import ast
import importlib.util
import os
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.astlint import lint_source
from repro.analysis.explore import (
    ExplorationUnsupported,
    ExploreResult,
    Verdict,
    explore_extraction,
)
from repro.analysis.extract import Extraction, extract_programs
from repro.analysis.seqmatch import StaticMatchResult, match_sequences
from repro.analysis.symbolic.fragments import (
    ProgramClassification,
    classify_extraction,
    classify_source,
    decide_extraction,
)
from repro.analysis.typestate import (
    check_collective_consistency,
    check_request_typestate,
)
from repro.analysis.witness import ReplayOutcome, WitnessSchedule, replay_witness
from repro.checks.findings import (
    CHECK_STATIC_DEADLOCK,
    CHECK_VERIFY_BOUND,
    CHECK_VERIFY_DEADLOCK,
    CHECK_WILDCARD_UNSUPPORTED,
    CheckFinding,
    Severity,
)
from repro.mpi.serialize import load_trace
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ReproError

#: Default virtual world size for statically analyzed programs.
DEFAULT_RANKS = 4


@dataclass
class LintReport:
    """Everything ``repro lint`` learned about one path."""

    path: str
    findings: List[CheckFinding] = field(default_factory=list)
    #: Program sets that were extracted and analyzed.
    programs_analyzed: int = 0
    #: Diagnostics about the analysis itself (import failures etc.).
    notes: List[str] = field(default_factory=list)
    #: Per-program decidable-fragment labels from the symbolic pass.
    classifications: List[ProgramClassification] = field(
        default_factory=list
    )

    def errors(self) -> List[CheckFinding]:
        return [
            f for f in self.findings if f.severity is Severity.ERROR
        ]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors())


def lint_path(path: str, *, ranks: int = DEFAULT_RANKS) -> LintReport:
    """Statically analyze a rank-program file or recorded trace."""
    if path.endswith(".json"):
        return _lint_trace(path)
    return _lint_python(path, ranks)


# ----------------------------------------------------------------------
# Python source files
# ----------------------------------------------------------------------

def _lint_python(path: str, ranks: int) -> LintReport:
    report = LintReport(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        findings, programs = lint_source(source, path)
    except SyntaxError as exc:
        report.findings.append(
            CheckFinding(
                check="syntax-error",
                severity=Severity.ERROR,
                rank=None,
                message=f"source does not parse: {exc.msg}",
                location=f"{path}:{exc.lineno or 1}",
            )
        )
        return report
    report.findings.extend(findings)
    _classify_for_lint(source, path, report)
    if not programs and not _has_explicit_programs(source):
        report.notes.append(
            "no module-level rank programs found; AST lint only"
        )
        return report

    module = _import_module(path, report)
    if module is None:
        return report

    program_sets = _program_sets(module, programs, ranks, report)
    for label, program_set in program_sets:
        _analyze_program_set(label, program_set, report)
    return report


def _classify_for_lint(
    source: str, path: str, report: LintReport
) -> None:
    """Run the symbolic pass and fold its provenance into the lint
    findings: ``loop-unsupported`` / ``symbolic-unsupported`` notes
    with file:line, and one ``role-split`` INFO per rank-dependent
    branch so role-parametric programs are visible in lint output."""
    try:
        classifications = classify_source(source, path)
    except SyntaxError:
        return  # already reported by the AST lint
    except RecursionError:  # pathological nesting; lint stays usable
        report.notes.append("symbolic classification overflowed; skipped")
        return
    report.classifications.extend(classifications)
    for cl in classifications:
        if cl.summary is not None:
            report.findings.extend(cl.summary.notes)
        for cond, lineno in cl.role_splits:
            report.findings.append(
                CheckFinding(
                    check="role-split",
                    severity=Severity.INFO,
                    rank=None,
                    message=(
                        f"{cl.name}: role split on `{cond}` — per-role "
                        "sequences extracted for both arms"
                    ),
                    location=f"{path}:{lineno}",
                )
            )
        report.notes.append(
            f"{cl.name}: fragment {cl.fragment.value}"
            + (f" ({cl.reason})" if cl.reason else "")
        )
        _prove_for_lint(cl, path, report)


def _prove_for_lint(
    cl: ProgramClassification, path: str, report: LintReport
) -> None:
    """Run the parameterized prover on decidable classifications.

    A certified program earns an INFO finding ("certified for all
    p"); a refuted one earns a WARNING carrying the minimal failing
    process count. Neither changes lint's exit code (only ERROR
    findings do) — the runtime-facing checks keep that authority.
    """
    if not cl.fragment.decidable or cl.summary is None:
        return
    from repro.analysis.symbolic.prove import ProveVerdict, prove_summary

    proof = prove_summary(cl.summary)
    if proof.verdict is ProveVerdict.PROVED_ALL_P:
        cert = proof.certificate
        assert cert is not None
        report.findings.append(
            CheckFinding(
                check="proved-all-p",
                severity=Severity.INFO,
                rank=None,
                message=(
                    f"{cl.name}: certified deadlock-free for all "
                    f"p >= 2 (sizes [2, {cert.window_hi}) confirmed, "
                    f"channel behavior verified periodic)"
                ),
                location=path,
            )
        )
    elif proof.verdict is ProveVerdict.REFUTED:
        ranks = ", ".join(str(r) for r in proof.deadlocked)
        report.findings.append(
            CheckFinding(
                check="prove-refuted",
                severity=Severity.WARNING,
                rank=None,
                message=(
                    f"{cl.name}: parameterized falsification found a "
                    f"deadlock at p={proof.min_p} (minimal failing "
                    f"process count; ranks {{{ranks}}})"
                ),
                location=path,
            )
        )


def _has_explicit_programs(source: str) -> bool:
    """Whether the module assigns a top-level ``LINT_PROGRAMS`` list
    (checked on the AST so program-less files are never imported)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return False
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "LINT_PROGRAMS":
                return True
    return False


def _import_module(path: str, report: LintReport):
    """Import the linted file under a throwaway module name."""
    name = "_repro_lint_target"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        report.notes.append("cannot import module; AST lint only")
        return None
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except SystemExit:
        # Scripts guarded by __main__ blocks should not run, but be
        # robust against modules calling sys.exit at import time.
        report.notes.append(
            "module exited during import; AST lint only"
        )
        return None
    except Exception as exc:
        report.notes.append(
            f"import failed ({exc!r}); AST lint only"
        )
        return None
    finally:
        sys.modules.pop(name, None)
    return module


def _program_sets(module, programs, ranks: int, report: LintReport):
    """The program sets to extract: explicit LINT_PROGRAMS or one set
    of ``n`` copies per discovered rank program."""
    explicit = getattr(module, "LINT_PROGRAMS", None)
    if explicit is not None:
        return [("LINT_PROGRAMS", list(explicit))]
    n = getattr(module, "LINT_RANKS", ranks)
    sets = []
    for program in programs:
        fn = getattr(module, program.name, None)
        if fn is None or not callable(fn):
            report.notes.append(
                f"{program.name}: not importable; skipped"
            )
            continue
        sets.append((program.name, [fn] * n))
    return sets


def _analyze_program_set(
    label: str, program_set: Sequence, report: LintReport
) -> None:
    if not program_set:
        return
    try:
        extraction = extract_programs(program_set)
    except ReproError as exc:
        report.notes.append(f"{label}: extraction failed ({exc})")
        return
    report.programs_analyzed += 1
    report.findings.extend(extraction.notes)
    report.findings.extend(
        check_request_typestate(extraction.sequences)
    )
    report.findings.extend(
        check_collective_consistency(
            extraction.sequences,
            extraction.comms,
            hung_ranks=extraction.truncated,
        )
    )
    if not extraction.exact and not (
        extraction.wildcard_exact and not extraction.truncated
    ):
        report.notes.append(
            f"{label}: control flow may depend on runtime outcomes; "
            "sequential deadlock matching skipped"
        )
        return
    # Wildcard-exact sequences reach the matcher so its refusal
    # becomes a structured `wildcard-unsupported` finding pointing at
    # `repro verify` (instead of an opaque note).
    result = match_sequences(extraction.sequences, extraction.comms)
    _report_match(label, result, extraction, report)


def _report_match(
    label: str,
    result: StaticMatchResult,
    extraction: Optional[Extraction],
    report: LintReport,
) -> None:
    if not result.applicable:
        if result.skipped_check == CHECK_WILDCARD_UNSUPPORTED:
            report.findings.append(
                CheckFinding(
                    check=CHECK_WILDCARD_UNSUPPORTED,
                    severity=Severity.INFO,
                    rank=None,
                    message=f"{label}: {result.reason_skipped}",
                )
            )
        else:
            report.notes.append(
                f"{label}: {result.reason_skipped}"
            )
        return
    if not result.has_deadlock:
        return
    cycle = ""
    if result.witness_cycle:
        chain = " -> ".join(str(r) for r in result.witness_cycle)
        cycle = f"; dependency cycle {chain} -> {result.witness_cycle[0]}"
    for rank in result.deadlocked:
        op = result.blocked_ops.get(rank)
        report.findings.append(
            CheckFinding(
                check=CHECK_STATIC_DEADLOCK,
                severity=Severity.ERROR,
                rank=rank,
                message=(
                    f"{label}: rank {rank} blocks forever at "
                    f"{op.describe() if op else 'its final operation'}"
                    f"{cycle}"
                ),
                op=op.ref if op else None,
                location=op.location if op else "",
            )
        )


# ----------------------------------------------------------------------
# Bounded verification (``repro verify``)
# ----------------------------------------------------------------------

@dataclass
class ProgramVerification:
    """Verdict of the match-set explorer for one program set."""

    label: str
    result: Optional[ExploreResult] = None
    witness: Optional[WitnessSchedule] = None
    replay: Optional[ReplayOutcome] = None
    findings: List[CheckFinding] = field(default_factory=list)
    #: Why exploration did not run (checker errors, inexact sequences).
    skipped_reason: str = ""

    @property
    def verdict_name(self) -> str:
        """The verdict string, or ``"inconclusive"`` when skipped."""
        if self.result is None:
            return "inconclusive"
        return self.result.verdict.value


@dataclass
class VerifyReport:
    """Everything ``repro verify`` learned about one path."""

    path: str
    programs: List[ProgramVerification] = field(default_factory=list)
    findings: List[CheckFinding] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def errors(self) -> List[CheckFinding]:
        all_findings = list(self.findings)
        for prog in self.programs:
            all_findings.extend(prog.findings)
        return [f for f in all_findings if f.severity is Severity.ERROR]

    @property
    def has_deadlock(self) -> bool:
        return any(
            p.result is not None and p.result.has_deadlock
            for p in self.programs
        )

    @property
    def inconclusive(self) -> bool:
        """Any program set without a definite verdict (skipped or
        bound-exceeded)."""
        return any(
            p.result is None
            or p.result.verdict is Verdict.BOUND_EXCEEDED
            for p in self.programs
        )


def verify_path(
    path: str,
    *,
    ranks: int = DEFAULT_RANKS,
    max_states: int = 200_000,
    max_depth: int = 1_000_000,
    por: bool = True,
    replay: bool = False,
    fastpath: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> VerifyReport:
    """Bounded wildcard-aware verification of a rank-program file.

    Extracts every discovered program set, runs the consistency
    checkers, and — when the sequences are exact up to wildcard
    statuses — explores the full match-set state graph. Wildcard-free
    exact sequences skip the state graph entirely: the fragment
    classifier routes them through the O(n) linear matcher
    (``fastpath=False`` forces exploration; ``verify.fastpath.*``
    counters record the routing). A
    `deadlock-possible` verdict carries a witness schedule;
    ``replay=True`` additionally feeds it back through the runtime
    engine to confirm the deadlock dynamically.
    """
    if path.endswith(".json"):
        raise ReproError(
            "verify needs rank programs to explore (and replay); "
            "recorded traces are analyzed by `repro lint` / "
            "`repro analyze`"
        )
    report = VerifyReport(path=path)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        _, programs = lint_source(source, path)
    except SyntaxError as exc:
        raise ReproError(
            f"source does not parse: {exc.msg} "
            f"({path}:{exc.lineno or 1})"
        ) from exc
    if not programs and not _has_explicit_programs(source):
        report.notes.append("no module-level rank programs found")
        return report
    module = _import_module(path, report)
    if module is None:
        raise ReproError(f"cannot import {path}: {report.notes[-1]}")

    lint_shim = LintReport(path=path)
    program_sets = _program_sets(module, programs, ranks, lint_shim)
    report.notes.extend(lint_shim.notes)
    for label, program_set in program_sets:
        report.programs.append(
            _verify_program_set(
                label,
                program_set,
                max_states=max_states,
                max_depth=max_depth,
                por=por,
                replay=replay,
                fastpath=fastpath,
                metrics=metrics,
            )
        )
    return report


def _verify_program_set(
    label: str,
    program_set: Sequence,
    *,
    max_states: int,
    max_depth: int,
    por: bool,
    replay: bool,
    fastpath: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> ProgramVerification:
    prog = ProgramVerification(label=label)
    try:
        extraction = extract_programs(program_set)
    except ReproError as exc:
        prog.skipped_reason = f"extraction failed ({exc})"
        return prog
    prog.findings.extend(extraction.notes)
    prog.findings.extend(check_request_typestate(extraction.sequences))
    prog.findings.extend(
        check_collective_consistency(
            extraction.sequences,
            extraction.comms,
            hung_ranks=extraction.truncated,
        )
    )
    if any(f.severity is Severity.ERROR for f in prog.findings):
        # The engine would reject these programs (usage errors); an
        # exploration verdict would be meaningless.
        prog.skipped_reason = (
            "consistency checks reported errors; fix those first"
        )
        return prog
    # Decidable-fragment fast path: wildcard-free exact sequences have
    # a unique matching (arXiv:0709.3692), so a single linear replay
    # decides deadlock without building the state graph.
    if fastpath:
        classification = classify_extraction(extraction)
        if metrics is not None:
            metrics.inc(
                f"verify.fragment.{classification.fragment.value}"
            )
        fast = None
        if classification.decidable:
            fast = decide_extraction(extraction, label=label)
        if fast is not None:
            if metrics is not None:
                metrics.inc("verify.fastpath.hits")
                metrics.inc(
                    "verify.fastpath.linear_ops",
                    fast.stats.transitions,
                )
                if fast.has_deadlock:
                    metrics.inc("verify.fastpath.deadlocks_found")
            prog.result = fast
        else:
            if metrics is not None:
                metrics.inc("verify.fastpath.misses")
    if prog.result is None:
        try:
            prog.result = explore_extraction(
                extraction,
                max_states=max_states,
                max_depth=max_depth,
                por=por,
                metrics=metrics,
                label=label,
            )
        except ExplorationUnsupported as exc:
            prog.skipped_reason = str(exc)
            return prog
    result = prog.result
    if result.verdict is Verdict.BOUND_EXCEEDED:
        prog.findings.append(
            CheckFinding(
                check=CHECK_VERIFY_BOUND,
                severity=Severity.WARNING,
                rank=None,
                message=(
                    f"{label}: exploration stopped early ({result.reason}) "
                    f"after {result.stats.states_explored} states; "
                    "NOT a deadlock-freedom proof — raise --max-states/"
                    "--max-depth for a verdict"
                ),
            )
        )
        return prog
    if not result.has_deadlock:
        return prog
    prog.witness = result.witness
    cycle = ""
    if result.witness_cycle:
        chain = " -> ".join(str(r) for r in result.witness_cycle)
        cycle = f"; dependency cycle {chain} -> {result.witness_cycle[0]}"
    for rank in result.deadlocked:
        ref = result.blocked_ops.get(rank)
        cond = result.conditions.get(rank)
        prog.findings.append(
            CheckFinding(
                check=CHECK_VERIFY_DEADLOCK,
                severity=Severity.ERROR,
                rank=rank,
                message=(
                    f"{label}: a feasible schedule deadlocks rank {rank} "
                    f"at {cond.op_description if cond else 'its op'}"
                    f"{cycle}"
                ),
                op=ref,
            )
        )
    if replay and prog.witness is not None:
        prog.replay = replay_witness(list(program_set), prog.witness)
    return prog


# ----------------------------------------------------------------------
# Recorded traces
# ----------------------------------------------------------------------

def _lint_trace(path: str) -> LintReport:
    report = LintReport(path=path)
    matched = load_trace(path)
    sequences = [
        list(matched.trace.sequence(r))
        for r in range(matched.trace.num_processes)
    ]
    report.programs_analyzed = 1
    report.findings.extend(check_request_typestate(sequences))
    report.findings.extend(
        check_collective_consistency(sequences, matched.comms)
    )
    result = match_sequences(
        sequences, matched.comms, resolve_observed=True
    )
    _report_match(os.path.basename(path), result, None, report)
    return report
